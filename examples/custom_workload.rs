//! Building your own workload against the simulator's primitive set and
//! inspecting every stage of the pipeline: trace → windows → solver.
//!
//! ```sh
//! cargo run --example custom_workload
//! ```
//!
//! The workload wires three of the paper's trickier idioms together: a
//! dataflow block (Fig. 3.A), a `GetOrAdd` delegate (Fig. 3.C), and a task
//! continuation (Fig. 3.D). SherLock identifies the happens-before inducing
//! operations of each without being told anything about their semantics.

use sherlock_core::{Role, SherLock, SherLockConfig, TestCase};
use sherlock_sim::prims::{ConcurrentMap, DataflowBlock, Task, TracedVar};
use sherlock_trace::OpRef;

fn main() {
    let tests = vec![
        TestCase::new("dataflow_pipeline", || {
            let parsed = TracedVar::new("Pipeline", "parsedEvents", 0u32);
            let checksum = TracedVar::new("Pipeline", "checksum", 0u32);
            let (p, c) = (parsed.clone(), checksum.clone());
            let block = DataflowBlock::new("Pipeline", "Decode", move |x: u32| {
                p.update(|n| n + 1);
                c.update(|s| s ^ x);
                x
            });
            for i in [3u32, 5, 9] {
                block.post(i);
            }
            for _ in 0..3 {
                block.receive();
            }
            for _ in 0..4 {
                assert_eq!(parsed.get(), 3);
                assert_eq!(checksum.get(), 3 ^ 5 ^ 9);
            }
        }),
        TestCase::new("lazy_cache_then_continuation", || {
            let cache: ConcurrentMap<u32, u32> = ConcurrentMap::new();
            let hits = TracedVar::new("Pipeline", "cacheHits", 0u32);
            let warmed = TracedVar::new("Pipeline", "warmedKeys", 0u32);
            let total = TracedVar::new("Pipeline", "grandTotal", 0u32);
            let (cache2, hits2, warmed2) = (cache.clone(), hits.clone(), warmed.clone());
            let t1 = Task::run("Pipeline", "WarmCache", move || {
                cache2.get_or_add(7, "Pipeline", "<Warm>d0", || {
                    hits2.set(1);
                    49
                });
                warmed2.set(1);
            });
            let (hits3, warmed3, total3) = (hits.clone(), warmed.clone(), total.clone());
            let t2 = t1.continue_with("Pipeline", "Aggregate", move || {
                let mut h = 0;
                for _ in 0..3 {
                    h = hits3.get();
                    assert_eq!(warmed3.get(), 1);
                }
                total3.set(h + 41);
            });
            t2.wait();
            assert_eq!(total.get(), 42);
        }),
    ];

    let mut sherlock = SherLock::new(SherLockConfig::default());
    let report = sherlock.run_rounds(&tests, 3).expect("solver failed");

    println!("{}", report.render());

    // Inspect what the Observer accumulated underneath the inference.
    let obs = sherlock.observations();
    println!(
        "distinct window shapes: {}, runs observed: {}, racy pairs: {}",
        obs.windows().len(),
        obs.runs(),
        obs.racy_pairs().len()
    );
    for stats in sherlock.stats() {
        println!(
            "round: {} events, {} windows, {} delay confirmations, {} exclusions",
            stats.events, stats.windows_extracted, stats.confirmations, stats.exclusions
        );
    }

    // The continuation ordering of Fig. 3.D: WarmCache's exit releases,
    // Aggregate's entry acquires.
    let a1_end = OpRef::app_end("Pipeline", "WarmCache").intern();
    let a2_begin = OpRef::app_begin("Pipeline", "Aggregate").intern();
    println!(
        "\nP(WarmCache-End is a release)  = {:.2}",
        report.probability(a1_end, Role::Release)
    );
    println!(
        "P(Aggregate-Begin is an acquire) = {:.2}",
        report.probability(a2_begin, Role::Acquire)
    );
    assert!(
        report.contains(a1_end, Role::Release) && report.contains(a2_begin, Role::Acquire),
        "the Fig. 3.D continuation pair should be inferred"
    );
    println!("OK: the continuation ordering of Fig. 3.D was inferred.");
}
