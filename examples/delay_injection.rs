//! The Perturber at work (paper §3): feedback-driven delay injection
//! refining acquire/release windows across rounds.
//!
//! ```sh
//! cargo run --example delay_injection
//! ```
//!
//! The workload plants a *decoy*: a logging method that runs right after
//! the real release, so it appears in every release window. If the Solver
//! hedges toward the decoy, the Perturber injects a 100 ms delay before it —
//! and because the event is already set by then, the consumer proceeds
//! during the delay: the delay fails to propagate (Fig. 2b), the decoy is
//! excluded for this window pair, and the real release wins. (A decoy
//! *before* the release would be unfalsifiable: delaying it delays the real
//! release too, so the delay always propagates.)

use sherlock_core::{Role, SherLock, SherLockConfig, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{EventWaitHandle, SimThread, TracedVar};
use sherlock_trace::{OpRef, Time};

fn main() {
    let tests = vec![TestCase::new("decoy_next_to_release", || {
        let payload = TracedVar::new("Decoyed", "payload", 0u32);
        let footer = TracedVar::new("Decoyed", "footer", 0u32);
        let handoff = EventWaitHandle::new(false);
        let (p, f, h) = (payload.clone(), footer.clone(), handoff.clone());
        let producer = SimThread::start("Decoyed", "Producer", move || {
            p.set(11);
            f.set(22);
            h.set();
            // The decoy: unrelated logging right after the real release.
            api::app_method("Decoyed", "LogProgress", 0, || {
                api::sleep(Time::from_micros(20));
            });
        });
        handoff.wait_one();
        api::sleep(Time::from_micros(400)); // deserialize before reading
        for _ in 0..3 {
            assert_eq!(payload.get(), 11);
            assert_eq!(footer.get(), 22);
        }
        producer.join();
    })];

    let mut sherlock = SherLock::new(SherLockConfig::default());
    let set_op = OpRef::lib_begin("System.Threading.EventWaitHandle", "Set").intern();
    let decoy_end = OpRef::app_end("Decoyed", "LogProgress").intern();

    for round in 1..=3 {
        let report = sherlock.run_rounds(&tests, 1).expect("solver failed");
        let stats = sherlock.stats().last().expect("round ran").clone();
        println!(
            "round {round}: P(Set releases) = {:.2}, P(decoy releases) = {:.2} \
             ({} confirmations, {} exclusions this round)",
            report.probability(set_op, Role::Release),
            report.probability(decoy_end, Role::Release),
            stats.confirmations,
            stats.exclusions,
        );
    }

    let report = sherlock.report();
    assert!(report.contains(set_op, Role::Release));
    assert!(!report.contains(decoy_end, Role::Release));
    println!("\nOK: EventWaitHandle::Set holds the release; the decoy does not.");
    println!("{}", report.render());
}
