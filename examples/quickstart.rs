//! Quickstart: infer the synchronizations of a small two-thread program
//! with zero annotations.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The workload is the paper's Figure 3.B in miniature: one thread fills a
//! buffer and raises an `endOfFile` flag; another spin-waits on the flag and
//! then consumes the buffer. SherLock watches the unit test run three times
//! (with feedback-driven delay injection in rounds 2–3) and reports that the
//! flag's write is a release and its read an acquire.

use sherlock_core::{SherLock, SherLockConfig, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{SimThread, TracedVar};
use sherlock_trace::{OpRef, Time};

fn main() {
    // 1. Describe the unit test. The body runs under the deterministic
    //    simulator; every TracedVar access and SimThread operation is traced
    //    exactly like the paper's binary instrumentation would record it.
    let tests = vec![TestCase::new("producer_consumer_flag", || {
        let buffer = TracedVar::new("Demo.Buffer", "contents", 0u32);
        let ready = TracedVar::new("Demo.Buffer", "endOfFile", false);
        let (b, r) = (buffer.clone(), ready.clone());

        let producer = SimThread::start("Demo.Buffer", "FillAsync", move || {
            b.set(42);
            api::sleep(Time::from_millis(2));
            r.set(true);
        });

        ready.spin_until(Time::from_millis(1), |v| v);
        assert_eq!(buffer.get(), 42);
        producer.join();
    })];

    // 2. Run SherLock for the paper's default three rounds.
    let mut sherlock = SherLock::new(SherLockConfig::default());
    let report = sherlock.run_rounds(&tests, 3).expect("solver failed");

    // 3. Read the inference off in the artifact's output format.
    println!("{}", report.render());
    println!(
        "windows observed: {}, candidate variables: {}, racy pairs pruned: {}",
        report.num_windows, report.num_variables, report.racy_pairs
    );

    let w = OpRef::field_write("Demo.Buffer", "endOfFile").intern();
    let r = OpRef::field_read("Demo.Buffer", "endOfFile").intern();
    assert!(
        report.contains(w, sherlock_core::Role::Release),
        "the flag write should be inferred as a release"
    );
    assert!(
        report.contains(r, sherlock_core::Role::Acquire),
        "the flag read should be inferred as an acquire"
    );
    println!("\nOK: endOfFile write/read inferred as the release/acquire pair.");
}
