//! Feeding inferred synchronizations into a race detector (paper §5.4).
//!
//! ```sh
//! cargo run --example race_detection
//! ```
//!
//! One of the benchmark applications (App-7, the statsd clone) is analyzed
//! twice with the FastTrack reimplementation: once under the manually
//! annotated classic-API spec (`Manual_dr`) and once under the spec SherLock
//! inferred (`SherLock_dr`). The manual spec misses the task-parallel
//! library, so its first reports are false races on task-ordered data —
//! masking the real, seeded races that `SherLock_dr` pinpoints.

use sherlock_apps::app_by_id;
use sherlock_core::{SherLock, SherLockConfig};
use sherlock_racer::{first_race, SyncSpec};
use sherlock_sim::SimConfig;

fn main() {
    // Seeded races intentionally fail assertions on some interleavings;
    // silence the default panic printer (the simulator catches them).
    sherlock_sim::install_sim_panic_hook();

    let app = app_by_id("App-7").expect("App-7 exists");

    // Infer this application's synchronizations (3 rounds, paper default).
    let mut sherlock = SherLock::new(SherLockConfig::default());
    sherlock.run_rounds(&app.tests, 3).expect("solver failed");
    let inferred = SyncSpec::from_report(sherlock.report());
    let manual = app.truth.manual_spec();
    println!(
        "Manual_dr knows {} ops; SherLock_dr inferred {} ops\n",
        manual.len(),
        inferred.len()
    );

    for (i, test) in app.tests.iter().enumerate() {
        let run = test.run(SimConfig::with_seed(0xACE + i as u64));
        println!("test {}:", test.name());
        for (name, spec) in [("Manual_dr  ", &manual), ("SherLock_dr", &inferred)] {
            match first_race(&run.trace, spec) {
                Some(race) => {
                    let truth = if app.truth.is_true_race(&race.location) {
                        "TRUE race"
                    } else {
                        "false alarm"
                    };
                    println!("  {name}: {truth:11} {:?} at {}", race.kind, race.location);
                }
                None => println!("  {name}: no race reported"),
            }
        }
    }
}
