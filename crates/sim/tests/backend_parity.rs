//! Differential oracle for the kernel's two thread transports.
//!
//! The fiber backend must be invisible to everything downstream: same RNG
//! consumption, same virtual clock, same trace bytes. These tests run the
//! same workloads under `SimBackend::Fibers` and `SimBackend::OsThreads`
//! across seeds and scheduling strategies and require the full JSON
//! rendering of the traces (timestamps included) to match exactly.

use std::sync::Arc;

use sherlock_sim::prims::{EventWaitHandle, Monitor, TracedVar};
use sherlock_sim::{api, Sim, SimBackend, SimConfig, StrategyKind};
use sherlock_trace::json::to_json;
use sherlock_trace::Time;

fn run_both(seed: u64, strategy: StrategyKind, workload: Arc<dyn Fn() + Send + Sync>) {
    if !cfg!(all(target_arch = "x86_64", unix)) {
        // Fiber transport unavailable: nothing to differentiate.
        return;
    }
    let mut base = SimConfig::with_seed(seed);
    base.strategy = strategy;

    let mut fib_cfg = base.clone();
    fib_cfg.backend = SimBackend::Fibers;
    let w = Arc::clone(&workload);
    let fib = Sim::new(fib_cfg).run(move || w());

    let mut os_cfg = base;
    os_cfg.backend = SimBackend::OsThreads;
    let w = Arc::clone(&workload);
    let os = Sim::new(os_cfg).run(move || w());

    assert_eq!(fib.outcome, os.outcome, "outcome @ seed {seed}");
    assert_eq!(fib.steps, os.steps, "steps @ seed {seed}");
    assert_eq!(fib.end_time, os.end_time, "end_time @ seed {seed}");
    assert_eq!(fib.thread_names, os.thread_names, "threads @ seed {seed}");
    assert_eq!(
        fib.panics.len(),
        os.panics.len(),
        "panic count @ seed {seed}"
    );
    assert_eq!(
        to_json(&fib.trace),
        to_json(&os.trace),
        "trace bytes @ seed {seed} ({strategy:?})"
    );
}

fn racy_workload() -> Arc<dyn Fn() + Send + Sync> {
    Arc::new(|| {
        let v = TracedVar::new("Parity", "x", 0u32);
        let m = Monitor::new();
        let v2 = v.clone();
        let m2 = m.clone();
        let a = api::spawn("writer", move || {
            m2.enter();
            v2.set(1);
            m2.exit();
        });
        let v3 = v.clone();
        let b = api::spawn("reader", move || {
            let _ = v3.get();
            v3.set(2);
        });
        v.set(3);
        a.join();
        b.join();
    })
}

#[test]
fn traces_are_byte_identical_across_backends() {
    for seed in [0u64, 1, 7, 42, 1337] {
        run_both(seed, StrategyKind::RandomWalk, racy_workload());
    }
}

#[test]
fn parity_holds_for_every_strategy() {
    for strategy in [
        StrategyKind::RandomWalk,
        StrategyKind::Pct { depth: 3 },
        StrategyKind::RoundRobin { quantum: 2 },
    ] {
        for seed in [5u64, 99] {
            run_both(seed, strategy, racy_workload());
        }
    }
}

#[test]
fn parity_holds_for_sleep_and_blocking() {
    let workload: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
        let ev = EventWaitHandle::new(false);
        let ev2 = ev.clone();
        let h = api::spawn("waiter", move || {
            ev2.wait_one();
        });
        api::sleep(Time::from_micros(50));
        ev.set();
        h.join();
    });
    for seed in [3u64, 17] {
        run_both(seed, StrategyKind::RandomWalk, Arc::clone(&workload));
    }
}

#[test]
fn parity_holds_for_deadlocked_runs() {
    let workload: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
        let ev = EventWaitHandle::new(false);
        ev.wait_one();
    });
    if !cfg!(all(target_arch = "x86_64", unix)) {
        return;
    }
    let mut base = SimConfig::with_seed(11);
    base.idle_timeout = Time::from_millis(1);
    let mut fib_cfg = base.clone();
    fib_cfg.backend = SimBackend::Fibers;
    let w = Arc::clone(&workload);
    let fib = Sim::new(fib_cfg).run(move || w());
    let mut os_cfg = base;
    os_cfg.backend = SimBackend::OsThreads;
    let w = Arc::clone(&workload);
    let os = Sim::new(os_cfg).run(move || w());
    assert!(matches!(fib.outcome, sherlock_sim::Outcome::Deadlock(_)));
    assert_eq!(fib.outcome, os.outcome);
    assert_eq!(to_json(&fib.trace), to_json(&os.trace));
}

#[test]
fn parity_holds_for_panicking_threads() {
    let workload: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
        let v = TracedVar::new("Parity", "boom", 0u32);
        let v2 = v.clone();
        let h = api::spawn("asserter", move || {
            v2.set(1);
            assert_eq!(v2.get(), 99, "seeded failure");
        });
        v.set(2);
        h.join();
    });
    sherlock_sim::install_sim_panic_hook();
    for seed in [2u64, 8] {
        run_both(seed, StrategyKind::RandomWalk, Arc::clone(&workload));
    }
}
