//! Property tests for the simulator: determinism, clock monotonicity, and
//! trace well-formedness over randomized workload shapes. Driven by the
//! in-tree `testutil` shim (no registry access for `proptest`), so they run
//! under plain `cargo test`.

use sherlock_sim::prims::{Monitor, TracedVar};
use sherlock_sim::testutil::{check, Config, Gen};
use sherlock_sim::{api, Outcome, Sim, SimConfig};
use sherlock_trace::{Time, Trace};

/// A randomized workload shape: `threads` workers each perform `ops`
/// lock-or-plain accesses over `fields` shared fields, at scheduling `seed`.
#[derive(Clone, Copy, Debug)]
struct Shape {
    threads: u32,
    ops: u32,
    fields: u32,
    locked: bool,
    seed: u64,
}

fn gen_shape(g: &mut Gen) -> Shape {
    Shape {
        threads: g.u64_in(1, 4) as u32,
        ops: g.u64_in(1, 8) as u32,
        fields: g.u64_in(1, 4) as u32,
        locked: g.bool(0.5),
        seed: g.u64_in(0, 1000),
    }
}

/// Shrinks every dimension independently toward its minimum.
fn shrink_shape(s: &Shape) -> Vec<Shape> {
    let mut out = Vec::new();
    if s.threads > 1 {
        out.push(Shape {
            threads: s.threads - 1,
            ..*s
        });
    }
    if s.ops > 1 {
        out.push(Shape {
            ops: s.ops - 1,
            ..*s
        });
    }
    if s.fields > 1 {
        out.push(Shape {
            fields: s.fields - 1,
            ..*s
        });
    }
    if s.locked {
        out.push(Shape {
            locked: false,
            ..*s
        });
    }
    if s.seed > 0 {
        out.push(Shape { seed: 0, ..*s });
    }
    out
}

fn run(shape: Shape) -> (Trace, Outcome) {
    let report = Sim::new(SimConfig::with_seed(shape.seed)).run(move || {
        let m = Monitor::new();
        let vars: Vec<_> = (0..shape.fields)
            .map(|i| TracedVar::new("PS", format!("v{i}"), 0u32))
            .collect();
        let mut handles = Vec::new();
        for t in 0..shape.threads {
            let (m2, vars2) = (m.clone(), vars.clone());
            handles.push(api::spawn(&format!("w{t}"), move || {
                for k in 0..shape.ops {
                    let v = &vars2[(k % shape.fields) as usize];
                    if shape.locked {
                        m2.with_lock(|| {
                            v.update(|x| x + 1);
                        });
                    } else {
                        v.update(|x| x + 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join();
        }
    });
    (report.trace, report.outcome)
}

/// Identical (workload, seed) pairs produce byte-identical traces.
#[test]
fn runs_are_deterministic() {
    check(&Config::default(), gen_shape, shrink_shape, |&s| {
        let (a, oa) = run(s);
        let (b, ob) = run(s);
        if oa != Outcome::Completed || ob != Outcome::Completed {
            return Err(format!("did not complete: {oa:?} / {ob:?}"));
        }
        if a.events().len() != b.events().len() {
            return Err(format!(
                "event counts differ: {} vs {}",
                a.events().len(),
                b.events().len()
            ));
        }
        for (x, y) in a.events().iter().zip(b.events()) {
            if x != y {
                return Err(format!("events differ: {x:?} vs {y:?}"));
            }
        }
        if a.stable_hash() != b.stable_hash() {
            return Err("stable hashes differ for identical runs".to_string());
        }
        Ok(())
    });
}

/// Event timestamps are strictly increasing and delays are well-formed.
#[test]
fn traces_are_well_formed() {
    check(&Config::default(), gen_shape, shrink_shape, |&s| {
        let (trace, outcome) = run(s);
        if outcome != Outcome::Completed {
            return Err(format!("did not complete: {outcome:?}"));
        }
        let times: Vec<Time> = trace.events().iter().map(|e| e.time).collect();
        if !times.windows(2).all(|w| w[0] < w[1]) {
            return Err("timestamps not strictly increasing".to_string());
        }
        for d in trace.delays() {
            if d.start >= d.end {
                return Err(format!("malformed delay: {d:?}"));
            }
        }
        // Every event's thread id is within the spawned range
        // (root + workers).
        if !trace.events().iter().all(|e| e.thread.0 <= s.threads) {
            return Err("event from an unspawned thread".to_string());
        }
        Ok(())
    });
}

/// Lock-protected counters never lose updates, for every interleaving the
/// seed picks.
#[test]
fn locked_updates_are_not_lost() {
    check(
        &Config::default(),
        |g| {
            (
                g.u64_in(1, 4) as u32,
                g.u64_in(1, 6) as u32,
                g.u64_in(0, 500),
            )
        },
        |&(threads, ops, seed)| {
            let mut out = Vec::new();
            if threads > 1 {
                out.push((threads - 1, ops, seed));
            }
            if ops > 1 {
                out.push((threads, ops - 1, seed));
            }
            if seed > 0 {
                out.push((threads, ops, 0));
            }
            out
        },
        |&(threads, ops, seed)| {
            let total = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
            let t2 = std::sync::Arc::clone(&total);
            let report = Sim::new(SimConfig::with_seed(seed)).run(move || {
                let m = Monitor::new();
                let v = TracedVar::new("PS2", "sum", 0u32);
                let mut handles = Vec::new();
                for t in 0..threads {
                    let (m2, v2) = (m.clone(), v.clone());
                    handles.push(api::spawn(&format!("w{t}"), move || {
                        for _ in 0..ops {
                            m2.with_lock(|| {
                                v2.update(|x| x + 1);
                            });
                        }
                    }));
                }
                for h in handles {
                    h.join();
                }
                t2.store(v.get(), std::sync::atomic::Ordering::SeqCst);
            });
            if !report.is_clean() {
                return Err(format!("unclean run: {:?}", report.outcome));
            }
            let got = total.load(std::sync::atomic::Ordering::SeqCst);
            if got != threads * ops {
                return Err(format!("lost updates: {got} != {}", threads * ops));
            }
            Ok(())
        },
    );
}

/// Schedules explored under PCT and round-robin stay deterministic and
/// complete — strategies change the interleaving, never the semantics.
#[test]
fn strategies_preserve_workload_semantics() {
    use sherlock_sim::StrategyKind;
    check(
        &Config {
            cases: 24,
            ..Config::default()
        },
        |g| {
            let shape = gen_shape(g);
            let strategy = match g.u64_in(0, 3) {
                0 => StrategyKind::RandomWalk,
                1 => StrategyKind::Pct {
                    depth: g.u64_in(1, 5) as u32,
                },
                _ => StrategyKind::RoundRobin {
                    quantum: g.u64_in(1, 6),
                },
            };
            (shape, strategy)
        },
        |&(s, k)| shrink_shape(&s).into_iter().map(|s| (s, k)).collect(),
        |&(s, k)| {
            let run_with = || {
                let mut cfg = SimConfig::with_seed(s.seed);
                cfg.strategy = k;
                Sim::new(cfg).run(move || {
                    let v = TracedVar::new("PS3", "n", 0u32);
                    let mut handles = Vec::new();
                    for t in 0..s.threads {
                        let v2 = v.clone();
                        handles.push(api::spawn(&format!("w{t}"), move || {
                            for _ in 0..s.ops {
                                v2.update(|x| x + 1);
                            }
                        }));
                    }
                    for h in handles {
                        h.join();
                    }
                })
            };
            let a = run_with();
            let b = run_with();
            if a.outcome != Outcome::Completed {
                return Err(format!("did not complete under {k:?}: {:?}", a.outcome));
            }
            if a.trace.stable_hash() != b.trace.stable_hash() {
                return Err(format!("strategy {k:?} is not deterministic"));
            }
            Ok(())
        },
    );
}
