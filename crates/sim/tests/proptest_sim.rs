//! Property tests for the simulator: determinism, clock monotonicity, and
//! trace well-formedness over randomized workload shapes.

use proptest::prelude::*;
use sherlock_sim::prims::{Monitor, TracedVar};
use sherlock_sim::{api, Outcome, Sim, SimConfig};
use sherlock_trace::{Time, Trace};

/// A randomized workload shape: `threads` workers each perform `ops`
/// lock-or-plain accesses over `fields` shared fields.
#[derive(Clone, Copy, Debug)]
struct Shape {
    threads: u32,
    ops: u32,
    fields: u32,
    locked: bool,
}

fn shape() -> impl Strategy<Value = Shape> {
    (1u32..4, 1u32..8, 1u32..4, any::<bool>()).prop_map(|(threads, ops, fields, locked)| Shape {
        threads,
        ops,
        fields,
        locked,
    })
}

fn run(shape: Shape, seed: u64) -> (Trace, Outcome) {
    let report = Sim::new(SimConfig::with_seed(seed)).run(move || {
        let m = Monitor::new();
        let vars: Vec<_> = (0..shape.fields)
            .map(|i| TracedVar::new("PS", format!("v{i}"), 0u32))
            .collect();
        let mut handles = Vec::new();
        for t in 0..shape.threads {
            let (m2, vars2) = (m.clone(), vars.clone());
            handles.push(api::spawn(&format!("w{t}"), move || {
                for k in 0..shape.ops {
                    let v = &vars2[(k % shape.fields) as usize];
                    if shape.locked {
                        m2.with_lock(|| {
                            v.update(|x| x + 1);
                        });
                    } else {
                        v.update(|x| x + 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join();
        }
    });
    (report.trace, report.outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical (workload, seed) pairs produce byte-identical traces.
    #[test]
    fn runs_are_deterministic(s in shape(), seed in 0u64..1000) {
        let (a, oa) = run(s, seed);
        let (b, ob) = run(s, seed);
        prop_assert_eq!(oa, Outcome::Completed);
        prop_assert_eq!(ob, Outcome::Completed);
        prop_assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            prop_assert_eq!(x, y);
        }
    }

    /// Event timestamps are strictly increasing and delays are well-formed.
    #[test]
    fn traces_are_well_formed(s in shape(), seed in 0u64..1000) {
        let (trace, outcome) = run(s, seed);
        prop_assert_eq!(outcome, Outcome::Completed);
        let times: Vec<Time> = trace.events().iter().map(|e| e.time).collect();
        prop_assert!(times.windows(2).all(|w| w[0] < w[1]), "timestamps not strict");
        for d in trace.delays() {
            prop_assert!(d.start < d.end);
        }
        // Every event's thread id is within the spawned range (root + workers).
        prop_assert!(trace
            .events()
            .iter()
            .all(|e| e.thread.0 <= s.threads));
    }

    /// Lock-protected counters never lose updates, for every interleaving
    /// the seed picks.
    #[test]
    fn locked_updates_are_not_lost(threads in 1u32..4, ops in 1u32..6, seed in 0u64..500) {
        let total = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let t2 = std::sync::Arc::clone(&total);
        let report = Sim::new(SimConfig::with_seed(seed)).run(move || {
            let m = Monitor::new();
            let v = TracedVar::new("PS2", "sum", 0u32);
            let mut handles = Vec::new();
            for t in 0..threads {
                let (m2, v2) = (m.clone(), v.clone());
                handles.push(api::spawn(&format!("w{t}"), move || {
                    for _ in 0..ops {
                        m2.with_lock(|| {
                            v2.update(|x| x + 1);
                        });
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            t2.store(v.get(), std::sync::atomic::Ordering::SeqCst);
        });
        prop_assert!(report.is_clean());
        prop_assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), threads * ops);
    }
}
