//! Behavioural tests for the simulator kernel and every traced primitive.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use sherlock_sim::prims::{
    testfx, Barrier, BlockingCollection, ConcurrentMap, CountdownEvent, DataflowBlock,
    EventWaitHandle, GcHeap, ImplicitMonitor, Interlocked, Monitor, Phaser, RwLock, Semaphore,
    SimThread, StaticCtor, Task, ThreadPool, TracedVar, UnsafeList,
};
use sherlock_sim::{api, DelayPlan, Outcome, Sim, SimConfig};
use sherlock_trace::{OpRef, Time, Trace};

fn run_seeded(seed: u64, f: impl FnOnce() + Send + 'static) -> sherlock_sim::RunReport {
    Sim::new(SimConfig::with_seed(seed)).run(f)
}

fn op_count(trace: &Trace, op: &OpRef) -> usize {
    let id = op.intern();
    trace.events().iter().filter(|e| e.op == id).count()
}

// --- kernel ---------------------------------------------------------------

#[test]
fn empty_root_completes() {
    let r = run_seeded(0, || {});
    assert!(r.is_clean());
    assert!(r.trace.is_empty());
}

#[test]
fn identical_seeds_give_identical_traces() {
    fn workload() {
        let v = TracedVar::new("Det", "x", 0u32);
        let v2 = v.clone();
        let h = api::spawn("w", move || {
            for i in 0..10 {
                v2.set(i);
            }
        });
        for _ in 0..10 {
            v.get();
        }
        h.join();
    }
    let a = run_seeded(42, workload);
    let b = run_seeded(42, workload);
    assert_eq!(a.trace.events().len(), b.trace.events().len());
    for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_usually_interleave_differently() {
    fn workload() {
        let v = TracedVar::new("Seed", "y", 0u32);
        let v2 = v.clone();
        let h = api::spawn("w", move || {
            for i in 0..20 {
                v2.set(i);
            }
        });
        for _ in 0..20 {
            v.get();
        }
        h.join();
    }
    let a = run_seeded(1, workload);
    let b = run_seeded(2, workload);
    let order = |t: &Trace| t.events().iter().map(|e| e.thread.0).collect::<Vec<_>>();
    assert_ne!(order(&a.trace), order(&b.trace), "seeds 1 and 2 coincided");
}

#[test]
fn virtual_clock_is_strictly_monotonic_per_event() {
    let r = run_seeded(3, || {
        let v = TracedVar::new("Clock", "z", 0u32);
        for i in 0..50 {
            v.set(i);
        }
    });
    let times: Vec<_> = r.trace.events().iter().map(|e| e.time).collect();
    assert!(times.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn sleep_advances_virtual_time() {
    let r = run_seeded(4, || {
        api::sleep(Time::from_secs(5));
    });
    assert!(r.end_time >= Time::from_secs(5));
}

#[test]
fn panic_in_workload_is_reported_not_propagated() {
    let r = run_seeded(5, || {
        let h = api::spawn("boom", || panic!("seeded failure"));
        h.join();
    });
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.panics.len(), 1);
    assert!(r.panics[0].message.contains("seeded failure"));
}

#[test]
fn deadlock_is_detected() {
    let r = run_seeded(6, || {
        let ev = EventWaitHandle::new(false);
        ev.wait_one(); // nobody ever sets it
    });
    assert!(matches!(r.outcome, Outcome::Deadlock(_)));
    let msg = r.deadlock_message().expect("deadlocked run has a message");
    assert!(
        msg.contains("1 non-daemon thread(s)") && msg.contains("\"root\" (tid 0)"),
        "message should name the blocked root thread: {msg}"
    );
}

#[test]
fn deadlock_report_names_every_blocked_thread() {
    let r = run_seeded(6, || {
        let ev = EventWaitHandle::new(false);
        for name in ["consumer-a", "consumer-b"] {
            let e2 = ev.clone();
            api::spawn(name, move || e2.wait_one());
        }
        // The root also waits, so all three non-daemon threads deadlock.
        ev.wait_one();
    });
    assert!(matches!(r.outcome, Outcome::Deadlock(_)));
    let msg = r.deadlock_message().expect("deadlocked run has a message");
    for needle in [
        "3 non-daemon thread(s)",
        "\"root\"",
        "\"consumer-a\"",
        "\"consumer-b\"",
    ] {
        assert!(msg.contains(needle), "missing {needle:?} in: {msg}");
    }
    // Daemons are exempt: they are allowed to be blocked at exit and must
    // not appear in the report.
    let r = run_seeded(6, || {
        let ev = EventWaitHandle::new(false);
        let e2 = ev.clone();
        api::spawn_daemon("idle-daemon", move || e2.wait_one());
        ev.wait_one();
    });
    let msg = r.deadlock_message().expect("deadlocked run has a message");
    assert!(
        msg.contains("1 non-daemon thread(s)") && !msg.contains("idle-daemon"),
        "daemons must not be reported: {msg}"
    );
}

#[test]
fn daemons_do_not_keep_the_run_alive() {
    let r = run_seeded(7, || {
        api::spawn_daemon("spinner", || loop {
            api::sleep(Time::from_millis(10));
        });
    });
    assert_eq!(r.outcome, Outcome::Completed);
}

#[test]
fn join_handle_reports_finished() {
    let r = run_seeded(8, || {
        let h = api::spawn("quick", api::yield_now);
        h.join();
        assert!(h.is_finished());
    });
    assert!(r.is_clean());
}

#[test]
fn delay_plan_injects_and_records_delays() {
    let op = OpRef::field_write("Delayed", "f").intern();
    let mut cfg = SimConfig::with_seed(9);
    cfg.delay_plan = DelayPlan::before_all([op], Time::from_millis(100));
    let r = Sim::new(cfg).run(|| {
        let v = TracedVar::new("Delayed", "f", 0u32);
        v.set(1);
        v.set(2);
    });
    assert_eq!(r.trace.delays().len(), 2);
    for d in r.trace.delays() {
        assert!(d.end.saturating_sub(d.start) >= Time::from_millis(100));
    }
    assert!(r.end_time >= Time::from_millis(200));
}

#[test]
fn instrument_filter_hides_methods_from_trace() {
    let r = run_seeded(10, || {
        api::app_method("Hidden", "<Run>b__hidden0", 1, || {});
        api::app_method("Visible", "Run", 1, || {});
    });
    assert_eq!(
        op_count(&r.trace, &OpRef::app_begin("Hidden", "<Run>b__hidden0")),
        0
    );
    assert_eq!(op_count(&r.trace, &OpRef::app_begin("Visible", "Run")), 1);
    assert_eq!(op_count(&r.trace, &OpRef::app_end("Visible", "Run")), 1);
}

// --- TracedVar ------------------------------------------------------------

#[test]
fn traced_var_reads_writes_and_traces() {
    let r = run_seeded(11, || {
        let v = TracedVar::new("Var", "count", 5u64);
        assert_eq!(v.get(), 5);
        v.set(7);
        assert_eq!(v.get(), 7);
        assert_eq!(v.update(|x| x + 1), 8);
    });
    assert!(r.is_clean());
    assert_eq!(op_count(&r.trace, &OpRef::field_read("Var", "count")), 3);
    assert_eq!(op_count(&r.trace, &OpRef::field_write("Var", "count")), 2);
}

#[test]
fn spin_until_sees_other_threads_write() {
    let r = run_seeded(12, || {
        let flag = TracedVar::new("Spin", "done", false);
        let f2 = flag.clone();
        let h = api::spawn("setter", move || {
            api::sleep(Time::from_millis(3));
            f2.set(true);
        });
        let v = flag.spin_until(Time::from_micros(200), |v| v);
        assert!(v);
        h.join();
    });
    assert!(r.is_clean());
    assert!(op_count(&r.trace, &OpRef::field_read("Spin", "done")) >= 2);
}

// --- Monitor ----------------------------------------------------------------

#[test]
fn monitor_provides_mutual_exclusion() {
    let r = run_seeded(13, || {
        let m = Monitor::new();
        let hits = Arc::new(AtomicU32::new(0));
        let in_cs = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for i in 0..4 {
            let m = m.clone();
            let hits = Arc::clone(&hits);
            let in_cs = Arc::clone(&in_cs);
            handles.push(api::spawn(&format!("locker{i}"), move || {
                for _ in 0..5 {
                    m.with_lock(|| {
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                        api::yield_now();
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 20);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_begin("System.Threading.Monitor", "Enter")
        ),
        20
    );
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_end("System.Threading.Monitor", "Exit")
        ),
        20
    );
}

#[test]
fn monitor_is_reentrant() {
    let r = run_seeded(14, || {
        let m = Monitor::new();
        m.enter();
        m.enter();
        m.exit();
        m.exit();
    });
    assert!(r.is_clean());
}

// --- SimThread / Task / ThreadPool ----------------------------------------

#[test]
fn sim_thread_traces_start_join_and_delegate() {
    let r = run_seeded(15, || {
        let t = SimThread::start("Worker", "Run", api::yield_now);
        t.join();
        assert!(t.is_finished());
    });
    assert!(r.is_clean());
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_begin("System.Threading.Thread", "Start")
        ),
        1
    );
    assert_eq!(
        op_count(&r.trace, &OpRef::lib_end("System.Threading.Thread", "Join")),
        1
    );
    assert_eq!(op_count(&r.trace, &OpRef::app_begin("Worker", "Run")), 1);
    assert_eq!(op_count(&r.trace, &OpRef::app_end("Worker", "Run")), 1);
}

#[test]
fn task_wait_blocks_until_delegate_finishes() {
    let r = run_seeded(16, || {
        let done = Arc::new(AtomicU32::new(0));
        let d = Arc::clone(&done);
        let t = Task::run("Jobs", "Produce", move || {
            api::sleep(Time::from_millis(2));
            d.store(1, Ordering::SeqCst);
        });
        t.wait();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert!(t.is_done());
    });
    assert!(r.is_clean());
}

#[test]
fn continuation_runs_after_antecedent() {
    let r = run_seeded(17, || {
        let order = Arc::new(AtomicUsize::new(0));
        let o1 = Arc::clone(&order);
        let t1 = Task::run("Cont", "A1", move || {
            o1.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .unwrap();
        });
        let o2 = Arc::clone(&order);
        let t2 = t1.continue_with("Cont", "A2", move || {
            o2.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst)
                .unwrap();
        });
        t2.wait();
        assert_eq!(order.load(Ordering::SeqCst), 2);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
    // A1's end must precede A2's begin in the trace.
    let end_a1 = OpRef::app_end("Cont", "A1").intern();
    let begin_a2 = OpRef::app_begin("Cont", "A2").intern();
    let pos = |op| r.trace.events().iter().position(|e| e.op == op).unwrap();
    assert!(pos(end_a1) < pos(begin_a2));
}

#[test]
fn thread_pool_work_items_run() {
    let r = run_seeded(18, || {
        let n = Arc::new(AtomicU32::new(0));
        let mut items = Vec::new();
        for _ in 0..3 {
            let n = Arc::clone(&n);
            items.push(ThreadPool::queue_user_work_item(
                "Pool",
                "Work",
                move || {
                    n.fetch_add(1, Ordering::SeqCst);
                },
            ));
        }
        for t in &items {
            t.wait();
        }
        assert_eq!(n.load(Ordering::SeqCst), 3);
    });
    assert!(r.is_clean());
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_begin("System.Threading.ThreadPool", "QueueUserWorkItem")
        ),
        3
    );
}

// --- events, semaphores, rwlock --------------------------------------------

#[test]
fn event_wait_handle_orders_threads() {
    let r = run_seeded(19, || {
        let ev = EventWaitHandle::new(false);
        let flag = Arc::new(AtomicU32::new(0));
        let (e2, f2) = (ev.clone(), Arc::clone(&flag));
        let h = api::spawn("waiter", move || {
            e2.wait_one();
            assert_eq!(f2.load(Ordering::SeqCst), 1);
        });
        api::sleep(Time::from_millis(1));
        flag.store(1, Ordering::SeqCst);
        ev.set();
        h.join();
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn auto_reset_event_admits_one_waiter_per_set() {
    let r = run_seeded(20, || {
        let ev = EventWaitHandle::new(true);
        ev.set();
        ev.wait_one();
        assert!(!ev.is_set());
    });
    assert!(r.is_clean());
}

#[test]
fn wait_all_needs_every_handle() {
    let r = run_seeded(21, || {
        let a = EventWaitHandle::new(false);
        let b = EventWaitHandle::new(false);
        let (a2, b2) = (a.clone(), b.clone());
        let waiter = api::spawn("w", move || {
            EventWaitHandle::wait_all(&[&a2, &b2]);
        });
        a.set();
        api::sleep(Time::from_millis(1));
        assert!(!waiter.is_finished());
        b.set();
        waiter.join();
    });
    assert!(r.is_clean());
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_begin("System.Threading.WaitHandle", "WaitAll")
        ),
        1
    );
}

#[test]
fn semaphore_counts_permits() {
    let r = run_seeded(22, || {
        let s = Semaphore::new(0);
        let s2 = s.clone();
        let h = api::spawn("consumer", move || {
            s2.wait_one();
            s2.wait_one();
        });
        s.release(2);
        h.join();
    });
    assert!(r.is_clean());
}

#[test]
fn rwlock_allows_concurrent_readers_blocks_writer() {
    let r = run_seeded(23, || {
        let rw = RwLock::new();
        rw.acquire_reader_lock();
        let rw2 = rw.clone();
        let writer = api::spawn("writer", move || {
            rw2.acquire_writer_lock();
            rw2.release_writer_lock();
        });
        api::sleep(Time::from_millis(1));
        assert!(!writer.is_finished(), "writer got in past a reader");
        rw.release_reader_lock();
        writer.join();
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn rwlock_upgrade_is_one_traced_call() {
    let r = run_seeded(24, || {
        let rw = RwLock::new();
        rw.acquire_reader_lock();
        rw.upgrade_to_writer_lock();
        rw.release_writer_lock();
    });
    assert!(r.is_clean());
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_begin("System.Threading.ReaderWriterLock", "UpgradeToWriterLock")
        ),
        1
    );
}

// --- dataflow, lazy, gc, collections ---------------------------------------

#[test]
fn dataflow_post_receive_round_trip() {
    let r = run_seeded(25, || {
        let block = DataflowBlock::new("Parser", "MessageHandler", |x: u32| x * 2);
        block.post(21);
        assert_eq!(block.receive(), 42);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
    let post = OpRef::lib_begin("System.Threading.Tasks.Dataflow.DataflowBlock", "Post").intern();
    let handler = OpRef::app_begin("Parser", "MessageHandler").intern();
    let pos = |op| r.trace.events().iter().position(|e| e.op == op).unwrap();
    assert!(pos(post) < pos(handler), "Post must precede the handler");
}

#[test]
fn static_ctor_runs_once_and_blocks_racers() {
    let r = run_seeded(26, || {
        let runs = Arc::new(AtomicU32::new(0));
        let cctor = StaticCtor::new("ClassFactory");
        let mut handles = Vec::new();
        for i in 0..4 {
            let c = cctor.clone();
            let runs = Arc::clone(&runs);
            handles.push(api::spawn(&format!("user{i}"), move || {
                c.ensure(|| {
                    api::sleep(Time::from_millis(1));
                    runs.fetch_add(1, Ordering::SeqCst);
                });
                assert_eq!(runs.load(Ordering::SeqCst), 1);
            }));
        }
        for h in handles {
            h.join();
        }
        assert!(cctor.is_initialized());
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
    assert_eq!(
        op_count(&r.trace, &OpRef::app_begin("ClassFactory", ".cctor")),
        1
    );
    assert_eq!(
        op_count(&r.trace, &OpRef::app_end("ClassFactory", ".cctor")),
        1
    );
}

#[test]
fn gc_runs_finalizer_after_drop_last_ref() {
    let r = run_seeded(27, || {
        let heap = GcHeap::new();
        let finalized = Arc::new(AtomicU32::new(0));
        let f = Arc::clone(&finalized);
        let obj = api::alloc_object();
        let reg = heap.register("Entity", "Finalize", obj, move || {
            f.store(1, Ordering::SeqCst);
        });
        heap.drop_last_ref(reg, Time::from_millis(5));
        // Wait (in virtual time) for the GC to run it.
        while finalized.load(Ordering::SeqCst) == 0 {
            api::sleep(Time::from_millis(2));
        }
    });
    assert!(r.is_clean(), "outcome: {:?}", r.outcome);
    assert_eq!(
        op_count(&r.trace, &OpRef::app_begin("Entity", "Finalize")),
        1
    );
}

#[test]
fn get_or_add_runs_delegate_once_per_key_atomically() {
    let r = run_seeded(28, || {
        let map: ConcurrentMap<u32, u32> = ConcurrentMap::new();
        let calls = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for i in 0..3 {
            let map = map.clone();
            let calls = Arc::clone(&calls);
            handles.push(api::spawn(&format!("adder{i}"), move || {
                let v = map.get_or_add(2020, "DayCache", "<GetOrAdd>d1", move || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    api::yield_now();
                    99
                });
                assert_eq!(v, 99);
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "delegate ran more than once"
        );
        assert_eq!(map.peek(&2020), Some(99));
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn unsafe_list_calls_are_classified() {
    let r = run_seeded(29, || {
        let list: UnsafeList<u32> = UnsafeList::new();
        list.add(1);
        assert_eq!(list.get(0), Some(1));
        assert_eq!(list.len(), 1);
        list.clear();
        assert!(list.is_empty());
    });
    assert!(r.is_clean());
    use sherlock_trace::AccessClass;
    let add = OpRef::lib_begin("System.Collections.Generic.List", "Add").intern();
    let ev = r.trace.events().iter().find(|e| e.op == add).unwrap();
    assert_eq!(ev.access, AccessClass::Write);
}

#[test]
fn unsafe_api_classification_can_be_disabled() {
    let mut cfg = SimConfig::with_seed(30);
    cfg.instrument.classify_unsafe_apis = false;
    let r = Sim::new(cfg).run(|| {
        let list: UnsafeList<u32> = UnsafeList::new();
        list.add(1);
    });
    use sherlock_trace::AccessClass;
    let add = OpRef::lib_begin("System.Collections.Generic.List", "Add").intern();
    let ev = r.trace.events().iter().find(|e| e.op == add).unwrap();
    assert_eq!(ev.access, AccessClass::None);
}

// --- test framework shim ----------------------------------------------------

#[test]
fn fixture_runs_init_before_every_test() {
    let r = run_seeded(31, || {
        let ready = Arc::new(AtomicU32::new(0));
        let r1 = Arc::clone(&ready);
        let r2 = Arc::clone(&ready);
        let r3 = Arc::clone(&ready);
        let handles = testfx::run_fixture(
            "TelemetryTests",
            "TestInitialize",
            move || {
                api::sleep(Time::from_millis(1));
                r1.store(1, Ordering::SeqCst);
            },
            vec![
                (
                    "BasicStartOperation".to_string(),
                    Box::new(move || assert_eq!(r2.load(Ordering::SeqCst), 1)),
                ),
                (
                    "SecondOperation".to_string(),
                    Box::new(move || assert_eq!(r3.load(Ordering::SeqCst), 1)),
                ),
            ],
        );
        for h in handles {
            h.join();
        }
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
    let init_end = OpRef::app_end("TelemetryTests", "TestInitialize").intern();
    let t1 = OpRef::app_begin("TelemetryTests", "BasicStartOperation").intern();
    let pos = |op| r.trace.events().iter().position(|e| e.op == op).unwrap();
    assert!(pos(init_end) < pos(t1));
}

#[test]
fn assert_helpers_trace_and_fail() {
    let r = run_seeded(32, || {
        testfx::Assert::is_true(true, "fine");
        testfx::Assert::is_false(false, "fine");
        testfx::Assert::are_equal(3, 3, "fine");
    });
    assert!(r.is_clean());
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_begin(
                "Microsoft.VisualStudio.TestTools.UnitTesting.Assert",
                "IsTrue"
            )
        ),
        1
    );

    let r = run_seeded(33, || {
        testfx::Assert::is_true(false, "seeded assertion failure");
    });
    assert_eq!(r.panics.len(), 1);
    assert!(r.panics[0].message.contains("seeded assertion failure"));
}

// --- condition variables, barriers, countdowns, blocking collections -------

#[test]
fn monitor_wait_pulse_round_trip() {
    let r = run_seeded(40, || {
        let m = Monitor::new();
        let queue = Arc::new(AtomicU32::new(0));
        let (m2, q2) = (m.clone(), Arc::clone(&queue));
        let consumer = api::spawn("consumer", move || {
            m2.enter();
            while q2.load(Ordering::SeqCst) == 0 {
                m2.wait();
            }
            q2.store(99, Ordering::SeqCst);
            m2.exit();
        });
        api::sleep(Time::from_millis(1));
        m.enter();
        queue.store(7, Ordering::SeqCst);
        m.pulse();
        m.exit();
        consumer.join();
        assert_eq!(queue.load(Ordering::SeqCst), 99);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_begin("System.Threading.Monitor", "Wait")
        ),
        1
    );
    assert_eq!(
        op_count(
            &r.trace,
            &OpRef::lib_begin("System.Threading.Monitor", "Pulse")
        ),
        1
    );
}

#[test]
fn monitor_pulse_all_wakes_every_sleeper() {
    let r = run_seeded(41, || {
        let m = Monitor::new();
        let go = Arc::new(AtomicU32::new(0));
        let mut hs = Vec::new();
        for i in 0..3 {
            let (m2, g2) = (m.clone(), Arc::clone(&go));
            hs.push(api::spawn(&format!("sleeper{i}"), move || {
                m2.enter();
                while g2.load(Ordering::SeqCst) == 0 {
                    m2.wait();
                }
                m2.exit();
            }));
        }
        api::sleep(Time::from_millis(2));
        m.enter();
        go.store(1, Ordering::SeqCst);
        m.pulse_all();
        m.exit();
        for h in hs {
            h.join();
        }
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn barrier_synchronizes_phases() {
    let r = run_seeded(42, || {
        let barrier = Barrier::new(3);
        let arrived = Arc::new(AtomicU32::new(0));
        let mut hs = Vec::new();
        for i in 0..3u64 {
            let (b2, a2) = (barrier.clone(), Arc::clone(&arrived));
            hs.push(api::spawn(&format!("p{i}"), move || {
                api::sleep(Time::from_micros(200 * (i + 1)));
                a2.fetch_add(1, Ordering::SeqCst);
                let phase = b2.signal_and_wait();
                assert_eq!(phase, 0);
                // Everyone arrived before anyone proceeds.
                assert_eq!(a2.load(Ordering::SeqCst), 3);
                let phase = b2.signal_and_wait();
                assert_eq!(phase, 1);
            }));
        }
        for h in hs {
            h.join();
        }
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn phaser_split_arrive_await_orders_phases() {
    let r = run_seeded(45, || {
        let phaser = Phaser::new(2);
        let produced = Arc::new(AtomicU32::new(0));
        let mut hs = Vec::new();
        for i in 0..2u64 {
            let (p2, d2) = (phaser.clone(), Arc::clone(&produced));
            hs.push(api::spawn(&format!("p{i}"), move || {
                for phase in 0..3u64 {
                    api::sleep(Time::from_micros(100 * (i + 1)));
                    d2.fetch_add(1, Ordering::SeqCst);
                    let arrived_in = p2.arrive();
                    assert_eq!(arrived_in, phase);
                    // An arrival is per-call, not per-party: wait for the
                    // phase to complete before arriving again.
                    p2.await_advance(arrived_in);
                }
            }));
        }
        for phase in 0..3u64 {
            phaser.await_advance(phase);
            // Both parties arrived in this phase before the await returned.
            assert!(produced.load(Ordering::SeqCst) >= 2 * (phase as u32 + 1));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(phaser.phase_untraced(), 3);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn phaser_arrive_and_await_is_a_barrier() {
    let r = run_seeded(46, || {
        let phaser = Phaser::new(3);
        let arrived = Arc::new(AtomicU32::new(0));
        let mut hs = Vec::new();
        for i in 0..3u64 {
            let (p2, a2) = (phaser.clone(), Arc::clone(&arrived));
            hs.push(api::spawn(&format!("b{i}"), move || {
                api::sleep(Time::from_micros(150 * (i + 1)));
                a2.fetch_add(1, Ordering::SeqCst);
                let phase = p2.arrive_and_await_advance();
                assert_eq!(phase, 0);
                assert_eq!(a2.load(Ordering::SeqCst), 3);
            }));
        }
        for h in hs {
            h.join();
        }
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn phaser_register_adds_a_party() {
    let r = run_seeded(47, || {
        let phaser = Phaser::new(1);
        assert_eq!(phaser.register(), 0);
        let p2 = phaser.clone();
        let h = api::spawn("late", move || {
            api::sleep(Time::from_micros(300));
            p2.arrive();
        });
        phaser.arrive();
        phaser.await_advance(0); // needs BOTH parties, not just the original
        assert_eq!(phaser.phase_untraced(), 1);
        h.join();
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn implicit_monitor_handoff_alternates() {
    let r = run_seeded(48, || {
        let m = ImplicitMonitor::new(0);
        let seen = Arc::new(AtomicU32::new(0));
        let m2 = m.clone();
        let producer = api::spawn("producer", move || {
            for i in 1..=4u64 {
                // Wait for the cell to be empty, then fill it.
                m2.with_when(|v| v == 0, |mon| mon.set_value(i));
            }
        });
        let (m3, s3) = (m.clone(), Arc::clone(&seen));
        let consumer = api::spawn("consumer", move || {
            for i in 1..=4u64 {
                m3.with_when(
                    |v| v != 0,
                    |mon| {
                        assert_eq!(mon.value(), i); // strict alternation
                        s3.fetch_add(1, Ordering::SeqCst);
                        mon.set_value(0);
                    },
                );
            }
        });
        producer.join();
        consumer.join();
        assert_eq!(seen.load(Ordering::SeqCst), 4);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn implicit_monitor_exit_broadcasts_to_all_predicates() {
    let r = run_seeded(49, || {
        let m = ImplicitMonitor::new(0);
        let mut hs = Vec::new();
        // Two waiters with different predicates; one Exit wakes both and
        // each re-evaluates its own.
        for want in [7u64, 9u64] {
            let m2 = m.clone();
            hs.push(api::spawn(&format!("w{want}"), move || {
                m2.with_when(move |v| v == want, |mon| mon.set_value(want + 1));
                // Chain: 7 -> 8 is nobody's predicate; set 9 below.
            }));
        }
        api::sleep(Time::from_micros(500));
        m.with_when(|_| true, |mon| mon.set_value(7));
        // w7 runs, leaves 8; bump to 9 so w9 can proceed.
        m.with_when(|v| v == 8, |mon| mon.set_value(9));
        for h in hs {
            h.join();
        }
        m.enter_when(|v| v == 10);
        m.exit();
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn countdown_event_joins_n_signals() {
    let r = run_seeded(43, || {
        let cd = CountdownEvent::new(3);
        let done = Arc::new(AtomicU32::new(0));
        for i in 0..3 {
            let (c2, d2) = (cd.clone(), Arc::clone(&done));
            api::spawn(&format!("s{i}"), move || {
                api::sleep(Time::from_micros(100 * (i + 1)));
                d2.fetch_add(1, Ordering::SeqCst);
                c2.signal();
            });
        }
        cd.wait();
        assert_eq!(done.load(Ordering::SeqCst), 3);
        assert_eq!(cd.count_untraced(), 0);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn blocking_collection_bounds_and_drains() {
    let r = run_seeded(44, || {
        let q: BlockingCollection<u32> = BlockingCollection::with_capacity(2);
        let total = Arc::new(AtomicU32::new(0));
        let (q2, t2) = (q.clone(), Arc::clone(&total));
        let consumer = api::spawn("consumer", move || {
            while let Some(v) = q2.take() {
                t2.fetch_add(v, Ordering::SeqCst);
                api::sleep(Time::from_micros(300));
            }
        });
        for i in 1..=5 {
            q.add(i); // blocks when 2 items are pending
        }
        q.complete_adding();
        consumer.join();
        assert_eq!(total.load(Ordering::SeqCst), 15);
        assert_eq!(q.len_untraced(), 0);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
}

#[test]
fn take_returns_none_after_completion() {
    let r = run_seeded(45, || {
        let q: BlockingCollection<u32> = BlockingCollection::with_capacity(4);
        q.add(1);
        q.complete_adding();
        assert_eq!(q.take(), Some(1));
        assert_eq!(q.take(), None);
        assert_eq!(q.take(), None);
    });
    assert!(r.is_clean());
}

#[test]
fn interlocked_is_atomic_but_not_blocking() {
    let r = run_seeded(46, || {
        let counter = Interlocked::new(0);
        let mut hs = Vec::new();
        for i in 0..3 {
            let c2 = counter.clone();
            hs.push(api::spawn(&format!("inc{i}"), move || {
                for _ in 0..4 {
                    c2.increment();
                }
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(counter.read(), 12);
        assert_eq!(counter.exchange(0), 12);
    });
    assert!(r.is_clean(), "panics: {:?}", r.panics);
    use sherlock_trace::AccessClass;
    let inc = OpRef::lib_begin("System.Threading.Interlocked", "Increment").intern();
    let ev = r.trace.events().iter().find(|e| e.op == inc).unwrap();
    assert_eq!(ev.access, AccessClass::Write);
}
