use std::sync::{Arc, Mutex};

use crate::api;
use crate::kernel;

const CLASS: &str = "System.Threading.Monitor";

/// The C# `lock` primitive: `Monitor.Enter` / `Monitor.Exit`, reentrant.
///
/// `Enter` blocks until the monitor is free; the paper infers `Enter` as an
/// acquire and the exit of `Exit` as the matching release (Table 8), guided
/// by the Mostly-Paired hypothesis — both live in class
/// `System.Threading.Monitor`.
#[derive(Clone)]
pub struct Monitor {
    inner: Arc<MonitorInner>,
}

struct MonitorInner {
    object: u64,
    state: Mutex<MonState>,
}

#[derive(Default)]
struct MonState {
    owner: Option<u32>,
    depth: u32,
    waiters: Vec<u32>,
    /// Threads parked in `Monitor.Wait`, pending a pulse.
    sleepers: Vec<u32>,
    /// Sleepers moved back to contention by a pulse.
    pulsed: Vec<u32>,
}

impl Monitor {
    /// Creates a monitor on a fresh object. Must be called from inside a
    /// simulated thread.
    pub fn new() -> Self {
        Monitor {
            inner: Arc::new(MonitorInner {
                object: api::alloc_object(),
                state: Mutex::new(MonState::default()),
            }),
        }
    }

    /// Acquires the monitor, blocking while another thread holds it.
    pub fn enter(&self) {
        api::lib_call(CLASS, "Enter", self.inner.object, || {
            let me = api::current_thread();
            loop {
                let acquired = {
                    let mut s = self.inner.state.lock().expect("monitor poisoned");
                    match s.owner {
                        None => {
                            s.owner = Some(me);
                            s.depth = 1;
                            true
                        }
                        Some(o) if o == me => {
                            s.depth += 1;
                            true
                        }
                        Some(_) => {
                            s.waiters.push(me);
                            false
                        }
                    }
                };
                if acquired {
                    return;
                }
                kernel::kernel_block_current();
            }
        });
    }

    /// Releases the monitor.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold the monitor.
    pub fn exit(&self) {
        api::lib_call(CLASS, "Exit", self.inner.object, || {
            let me = api::current_thread();
            let to_wake = {
                let mut s = self.inner.state.lock().expect("monitor poisoned");
                assert_eq!(s.owner, Some(me), "Monitor.Exit by non-owner");
                s.depth -= 1;
                if s.depth == 0 {
                    s.owner = None;
                    std::mem::take(&mut s.waiters)
                } else {
                    Vec::new()
                }
            };
            for t in to_wake {
                kernel::kernel_wake(t);
            }
        });
    }

    /// Releases the monitor, blocks until another thread pulses it, then
    /// reacquires (`Monitor.Wait` — the classic condition-variable wait).
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold the monitor.
    pub fn wait(&self) {
        api::lib_call(CLASS, "Wait", self.inner.object, || {
            let me = api::current_thread();
            let (depth, to_wake) = {
                let mut s = self.inner.state.lock().expect("monitor poisoned");
                assert_eq!(s.owner, Some(me), "Monitor.Wait by non-owner");
                let depth = s.depth;
                s.owner = None;
                s.depth = 0;
                s.sleepers.push(me);
                (depth, std::mem::take(&mut s.waiters))
            };
            for t in to_wake {
                kernel::kernel_wake(t);
            }
            // Park until pulsed.
            loop {
                kernel::kernel_block_current();
                let mut st = self.inner.state.lock().expect("monitor poisoned");
                if let Some(pos) = st.pulsed.iter().position(|&t| t == me) {
                    st.pulsed.swap_remove(pos);
                    break;
                }
                // Spurious wake while still a sleeper: keep waiting.
            }
            // Reacquire at the original depth.
            loop {
                let acquired = {
                    let mut s = self.inner.state.lock().expect("monitor poisoned");
                    if s.owner.is_none() {
                        s.owner = Some(me);
                        s.depth = depth;
                        true
                    } else {
                        s.waiters.push(me);
                        false
                    }
                };
                if acquired {
                    return;
                }
                kernel::kernel_block_current();
            }
        });
    }

    /// Wakes one `Monitor.Wait` sleeper (`Monitor.Pulse`).
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold the monitor.
    pub fn pulse(&self) {
        api::lib_call(CLASS, "Pulse", self.inner.object, || {
            let woken = {
                let mut s = self.inner.state.lock().expect("monitor poisoned");
                assert_eq!(
                    s.owner,
                    Some(api::current_thread()),
                    "Monitor.Pulse by non-owner"
                );
                if s.sleepers.is_empty() {
                    None
                } else {
                    let t = s.sleepers.remove(0);
                    s.pulsed.push(t);
                    Some(t)
                }
            };
            if let Some(t) = woken {
                kernel::kernel_wake(t);
            }
        });
    }

    /// Wakes every `Monitor.Wait` sleeper (`Monitor.PulseAll`).
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold the monitor.
    pub fn pulse_all(&self) {
        api::lib_call(CLASS, "PulseAll", self.inner.object, || {
            let woken = {
                let mut s = self.inner.state.lock().expect("monitor poisoned");
                assert_eq!(
                    s.owner,
                    Some(api::current_thread()),
                    "Monitor.PulseAll by non-owner"
                );
                let all = std::mem::take(&mut s.sleepers);
                s.pulsed.extend(all.iter().copied());
                all
            };
            for t in woken {
                kernel::kernel_wake(t);
            }
        });
    }

    /// Runs `body` under the monitor (the C# `lock (obj) { ... }` statement).
    pub fn with_lock<R>(&self, body: impl FnOnce() -> R) -> R {
        self.enter();
        let r = body();
        self.exit();
        r
    }

    /// The object identity of this monitor.
    pub fn object(&self) -> u64 {
        self.inner.object
    }
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}
