use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use sherlock_trace::Time;

use crate::api;
use crate::kernel;

type Finalizer = Box<dyn FnOnce() + Send>;

/// A simulated garbage collector with finalizer semantics.
///
/// C# guarantees that an object's finalizer runs only after the object is
/// unreachable, so "the instruction that removes the last reference of an
/// object happens before the beginning of the object's finalizer"
/// (paper §5.3.3). [`GcHeap::drop_last_ref`] marks an object collectable;
/// a daemon GC thread runs its registered finalizer as a traced application
/// method `Class::Finalize` after the per-drop delay elapses.
///
/// A long `gc_delay` pushes the finalizer outside the `Near` window — the
/// exact failure mode behind the paper's Dispose false positives ("SherLock's
/// delay injection does not control the garbage collection", §5.5).
#[derive(Clone)]
pub struct GcHeap {
    inner: Arc<GcInner>,
}

struct GcInner {
    state: Mutex<GcState>,
}

struct GcState {
    registered: Vec<Option<(String, String, u64, Finalizer)>>,
    ready: VecDeque<(usize, Time)>,
    gc_waiting: Option<u32>,
}

impl Default for GcHeap {
    fn default() -> Self {
        GcHeap::new()
    }
}

impl GcHeap {
    /// Creates a heap with its GC daemon thread.
    pub fn new() -> Self {
        let inner = Arc::new(GcInner {
            state: Mutex::new(GcState {
                registered: Vec::new(),
                ready: VecDeque::new(),
                gc_waiting: None,
            }),
        });
        let gc = Arc::clone(&inner);
        api::spawn_daemon("gc", move || loop {
            let me = api::current_thread();
            let due = {
                let mut s = gc.state.lock().expect("gc heap poisoned");
                let now = api::now();
                let pos = s.ready.iter().position(|&(_, at)| at <= now);
                match pos {
                    Some(p) => {
                        let (idx, _) = s.ready.remove(p).expect("position valid");
                        s.registered[idx].take()
                    }
                    None => {
                        let next = s.ready.iter().map(|&(_, at)| at).min();
                        match next {
                            Some(at) => {
                                drop(s);
                                api::sleep(at.saturating_sub(now).max(Time::from_micros(10)));
                                continue;
                            }
                            None => {
                                s.gc_waiting = Some(me);
                                drop(s);
                                kernel::kernel_block_current();
                                continue;
                            }
                        }
                    }
                }
            };
            if let Some((class, method, object, f)) = due {
                api::app_method(&class, &method, object, f);
            }
        });
        GcHeap { inner }
    }

    /// Registers an object's finalizer (`Class::Finalize` by convention;
    /// `Dispose` for dispose-pattern objects). Returns a registration id.
    pub fn register(
        &self,
        class: impl Into<String>,
        method: impl Into<String>,
        object: u64,
        finalizer: impl FnOnce() + Send + 'static,
    ) -> usize {
        let mut s = self.inner.state.lock().expect("gc heap poisoned");
        s.registered.push(Some((
            class.into(),
            method.into(),
            object,
            Box::new(finalizer),
        )));
        s.registered.len() - 1
    }

    /// Marks the object unreachable; its finalizer becomes due after `delay`.
    /// The *caller's preceding operation* is the release the paper's
    /// inference should discover.
    pub fn drop_last_ref(&self, registration: usize, delay: Time) {
        let waiter = {
            let mut s = self.inner.state.lock().expect("gc heap poisoned");
            let at = api::now().saturating_add(delay);
            s.ready.push_back((registration, at));
            s.gc_waiting.take()
        };
        if let Some(t) = waiter {
            kernel::kernel_wake(t);
        }
    }
}
