use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::api;
use crate::kernel;

const CLASS: &str = "System.Threading.Tasks.Dataflow.DataflowBlock";

/// A traced dataflow block (paper Fig. 3.A, from App-7/Stastd): `Post` hands
/// an item to a handler running on the block's own consumer thread, and
/// `Receive` blocks for the handler's output.
///
/// `Post` is the release that happens before the handler's entry; `Receive`
/// is the acquire that happens after the handler's exit.
#[derive(Clone)]
pub struct DataflowBlock<T> {
    inner: Arc<DfInner<T>>,
}

struct DfInner<T> {
    object: u64,
    state: Mutex<DfState<T>>,
}

struct DfState<T> {
    input: VecDeque<T>,
    output: VecDeque<T>,
    input_waiters: Vec<u32>,
    output_waiters: Vec<u32>,
}

impl<T: Send + 'static> DataflowBlock<T> {
    /// Creates a block whose handler `class::method` transforms each posted
    /// item on a dedicated consumer (daemon) thread.
    pub fn new(
        class: impl Into<String>,
        method: impl Into<String>,
        handler: impl Fn(T) -> T + Send + 'static,
    ) -> Self {
        let class = class.into();
        let method = method.into();
        let object = api::alloc_object();
        let inner = Arc::new(DfInner {
            object,
            state: Mutex::new(DfState {
                input: VecDeque::new(),
                output: VecDeque::new(),
                input_waiters: Vec::new(),
                output_waiters: Vec::new(),
            }),
        });
        let consumer = Arc::clone(&inner);
        api::spawn_daemon(&format!("dataflow:{class}.{method}"), move || loop {
            let me = api::current_thread();
            let item = loop {
                let taken = {
                    let mut s = consumer.state.lock().expect("dataflow poisoned");
                    match s.input.pop_front() {
                        Some(v) => Some(v),
                        None => {
                            s.input_waiters.push(me);
                            None
                        }
                    }
                };
                match taken {
                    Some(v) => break v,
                    None => kernel::kernel_block_current(),
                }
            };
            let out = api::app_method(&class, &method, object, || handler(item));
            let waiters = {
                let mut s = consumer.state.lock().expect("dataflow poisoned");
                s.output.push_back(out);
                std::mem::take(&mut s.output_waiters)
            };
            for t in waiters {
                kernel::kernel_wake(t);
            }
        });
        DataflowBlock { inner }
    }

    /// Posts an item to the block (`DataflowBlock.Post`).
    pub fn post(&self, item: T) {
        api::lib_call(CLASS, "Post", self.inner.object, || {
            let waiters = {
                let mut s = self.inner.state.lock().expect("dataflow poisoned");
                s.input.push_back(item);
                std::mem::take(&mut s.input_waiters)
            };
            for t in waiters {
                kernel::kernel_wake(t);
            }
        });
    }

    /// Blocks for the next handler output (`DataflowBlock.Receive`).
    pub fn receive(&self) -> T {
        api::lib_call(CLASS, "Receive", self.inner.object, || {
            let me = api::current_thread();
            loop {
                let taken = {
                    let mut s = self.inner.state.lock().expect("dataflow poisoned");
                    match s.output.pop_front() {
                        Some(v) => Some(v),
                        None => {
                            s.output_waiters.push(me);
                            None
                        }
                    }
                };
                match taken {
                    Some(v) => return v,
                    None => kernel::kernel_block_current(),
                }
            }
        })
    }
}
