use std::sync::{Arc, Mutex};

use crate::api;
use crate::kernel;

const CLASS: &str = "Expresso.ImplicitMonitor";

/// A traced implicit-signal monitor in the style of Ferles et al.
/// ("Verified lifting of implicit-signal monitors", PAPERS.md): the
/// programmer states a *predicate* to wait on (`EnterWhen(pred)`) and the
/// runtime decides when to signal — every `Exit` implicitly re-evaluates
/// all pending predicates, so there is no explicit `Pulse`/`Signal` call
/// anywhere in the program text.
///
/// For inference this is the adversarial cousin of [`super::Monitor`]:
/// the only release-shaped operation is `Exit`, and the only
/// acquire-shaped one is `EnterWhen`, but nothing in the trace vocabulary
/// says which condition a given `EnterWhen` waited for. SherLock must
/// still recover `Exit -> EnterWhen` as the synchronizing pair purely
/// from ordering evidence.
///
/// The guarded state is a single `u64` cell manipulated through
/// owner-checked accessors; accesses are untraced (monitor-internal),
/// mirroring how the paper's instrumentation cannot see inside the
/// synthesized monitor implementation.
#[derive(Clone)]
pub struct ImplicitMonitor {
    inner: Arc<ImInner>,
}

struct ImInner {
    object: u64,
    state: Mutex<ImState>,
}

struct ImState {
    value: u64,
    owner: Option<u32>,
    waiters: Vec<u32>,
}

impl ImplicitMonitor {
    /// Creates an implicit monitor whose guarded cell starts at `initial`.
    pub fn new(initial: u64) -> Self {
        ImplicitMonitor {
            inner: Arc::new(ImInner {
                object: api::alloc_object(),
                state: Mutex::new(ImState {
                    value: initial,
                    owner: None,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    /// Enters the monitor once it is unowned **and** `pred` holds on the
    /// guarded cell (`ImplicitMonitor.EnterWhen`). Blocks otherwise; every
    /// `Exit` re-evaluates the predicate (implicit broadcast signalling).
    pub fn enter_when(&self, pred: impl Fn(u64) -> bool) {
        api::lib_call(CLASS, "EnterWhen", self.inner.object, || {
            let me = api::current_thread();
            loop {
                {
                    let mut s = self.inner.state.lock().expect("implicit monitor poisoned");
                    if s.owner.is_none() && pred(s.value) {
                        s.owner = Some(me);
                        s.waiters.retain(|&t| t != me);
                        return;
                    }
                    if !s.waiters.contains(&me) {
                        s.waiters.push(me);
                    }
                }
                kernel::kernel_block_current();
            }
        });
    }

    /// Leaves the monitor (`ImplicitMonitor.Exit`), waking **all** waiters
    /// so each re-evaluates its predicate — the runtime, not the
    /// programmer, decides who proceeds.
    pub fn exit(&self) {
        api::lib_call(CLASS, "Exit", self.inner.object, || {
            let waiters = {
                let mut s = self.inner.state.lock().expect("implicit monitor poisoned");
                assert_eq!(
                    s.owner,
                    Some(api::current_thread()),
                    "ImplicitMonitor.Exit by a non-owner"
                );
                s.owner = None;
                std::mem::take(&mut s.waiters)
            };
            for t in waiters {
                kernel::kernel_wake(t);
            }
        });
    }

    /// Runs `body` inside the monitor once `pred` admits it.
    pub fn with_when<R>(&self, pred: impl Fn(u64) -> bool, body: impl FnOnce(&Self) -> R) -> R {
        self.enter_when(pred);
        let r = body(self);
        self.exit();
        r
    }

    /// Reads the guarded cell; caller must hold the monitor. Untraced —
    /// the cell lives inside the synthesized monitor.
    pub fn value(&self) -> u64 {
        let s = self.inner.state.lock().expect("implicit monitor poisoned");
        assert_eq!(
            s.owner,
            Some(api::current_thread()),
            "guarded read outside the monitor"
        );
        s.value
    }

    /// Writes the guarded cell; caller must hold the monitor. Untraced.
    pub fn set_value(&self, v: u64) {
        let mut s = self.inner.state.lock().expect("implicit monitor poisoned");
        assert_eq!(
            s.owner,
            Some(api::current_thread()),
            "guarded write outside the monitor"
        );
        s.value = v;
    }
}
