//! Traced synchronization primitives.
//!
//! Each primitive mirrors a C# synchronization mechanism the paper's
//! benchmark applications use (Tables 8–9), emitting exactly the trace events
//! the paper's instrumentation would record at its call sites, while
//! enforcing the corresponding blocking semantics in virtual time. The
//! inference pipeline never sees these implementations — only their traces —
//! which is precisely the paper's setting ("the actual implementation of the
//! threading library or framework that enforces this happens-before relation
//! is irrelevant to SherLock").

mod collections;
mod dataflow;
mod gc;
mod implicit;
mod lazy;
mod monitor;
mod phaser;
mod queue;
mod sync;
mod task;
mod thread;
mod var;

pub mod testfx;

pub use collections::{ConcurrentMap, UnsafeList};
pub use dataflow::DataflowBlock;
pub use gc::GcHeap;
pub use implicit::ImplicitMonitor;
pub use lazy::StaticCtor;
pub use monitor::Monitor;
pub use phaser::Phaser;
pub use queue::{BlockingCollection, Interlocked};
pub use sync::{Barrier, CountdownEvent, EventWaitHandle, RwLock, Semaphore};
pub use task::{Task, ThreadPool};
pub use thread::SimThread;
pub use var::TracedVar;
