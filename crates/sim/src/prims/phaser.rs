use std::sync::{Arc, Mutex};

use crate::api;
use crate::kernel;

const CLASS: &str = "System.Threading.Phaser";

/// A traced phaser — the multi-phase barrier of "Formalization of Phase
/// Ordering" (PAPERS.md), surfaced under the split `Arrive` /
/// `AwaitAdvance` API (java.util.concurrent.Phaser's vocabulary, traced
/// under a .NET-style class name for consistency with the rest of the
/// fleet).
///
/// Unlike [`super::Barrier`], arrival and waiting are separate operations:
/// a party may `arrive` (non-blocking, releasing the phase it participated
/// in) and independently `await_advance` on a phase number (blocking,
/// acquiring the writes of every party that arrived in that phase). This
/// split is exactly what makes phasers interesting for inference — the
/// release site and the acquire site are different methods, so SherLock
/// must discover `Arrive` as a release and `AwaitAdvance` as an acquire
/// rather than a single self-synchronizing barrier call.
#[derive(Clone)]
pub struct Phaser {
    inner: Arc<PhaserInner>,
}

struct PhaserInner {
    object: u64,
    state: Mutex<PhaserState>,
}

struct PhaserState {
    parties: u32,
    arrived: u32,
    phase: u64,
    waiters: Vec<u32>,
}

impl Phaser {
    /// Creates a phaser with `parties` registered parties, at phase 0.
    pub fn new(parties: u32) -> Self {
        assert!(parties > 0, "phaser needs at least one registered party");
        Phaser {
            inner: Arc::new(PhaserInner {
                object: api::alloc_object(),
                state: Mutex::new(PhaserState {
                    parties,
                    arrived: 0,
                    phase: 0,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    /// Registers an additional party (`Phaser.Register`); returns the phase
    /// the new party joins at.
    pub fn register(&self) -> u64 {
        api::lib_call(CLASS, "Register", self.inner.object, || {
            let mut s = self.inner.state.lock().expect("phaser poisoned");
            s.parties += 1;
            s.phase
        })
    }

    /// Arrives at the current phase without waiting (`Phaser.Arrive`);
    /// returns the phase number this arrival belongs to. The last party to
    /// arrive advances the phase and wakes every `await_advance` waiter.
    pub fn arrive(&self) -> u64 {
        api::lib_call(CLASS, "Arrive", self.inner.object, || {
            self.arrive_untraced()
        })
    }

    /// Blocks until the phaser's phase number exceeds `phase`
    /// (`Phaser.AwaitAdvance`). Returns immediately if it already has.
    pub fn await_advance(&self, phase: u64) {
        api::lib_call(CLASS, "AwaitAdvance", self.inner.object, || {
            self.await_untraced(phase);
        });
    }

    /// Arrives and blocks until the phase it arrived in completes
    /// (`Phaser.ArriveAndAwaitAdvance`) — the symmetric barrier-style call,
    /// traced as a single operation.
    pub fn arrive_and_await_advance(&self) -> u64 {
        api::lib_call(CLASS, "ArriveAndAwaitAdvance", self.inner.object, || {
            let phase = self.arrive_untraced();
            self.await_untraced(phase);
            phase
        })
    }

    /// The current phase number; untraced (test-harness introspection only).
    pub fn phase_untraced(&self) -> u64 {
        self.inner.state.lock().expect("phaser poisoned").phase
    }

    fn arrive_untraced(&self) -> u64 {
        let mut s = self.inner.state.lock().expect("phaser poisoned");
        let phase = s.phase;
        s.arrived += 1;
        if s.arrived == s.parties {
            s.arrived = 0;
            s.phase += 1;
            let waiters = std::mem::take(&mut s.waiters);
            drop(s);
            for t in waiters {
                kernel::kernel_wake(t);
            }
        }
        phase
    }

    fn await_untraced(&self, phase: u64) {
        let me = api::current_thread();
        loop {
            {
                let mut s = self.inner.state.lock().expect("phaser poisoned");
                if s.phase > phase {
                    return;
                }
                // Re-register on every pass: a spurious wake (or a wake for
                // an earlier phase) must not drop us from the waiter list.
                if !s.waiters.contains(&me) {
                    s.waiters.push(me);
                }
            }
            kernel::kernel_block_current();
        }
    }
}
