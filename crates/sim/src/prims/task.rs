use std::sync::{Arc, Mutex};

use crate::api;
use crate::kernel;

const CLASS: &str = "System.Threading.Tasks.Task";
const FACTORY: &str = "System.Threading.Tasks.TaskFactory";

/// A traced task: `Task.Run`, `TaskFactory.StartNew`, `Task.Wait`, and
/// `Task.ContinueWith`.
///
/// Continuations reproduce paper Fig. 3.D: `a2` registered via `ContinueWith`
/// runs strictly after `a1` returns, so SherLock infers `a1`'s exit as a
/// release and `a2`'s entry as the acquire without knowing anything about the
/// task machinery.
#[derive(Clone)]
pub struct Task {
    inner: Arc<TaskInner>,
}

struct TaskInner {
    object: u64,
    state: Mutex<TaskState>,
}

#[derive(Default)]
struct TaskState {
    done: bool,
    waiters: Vec<u32>,
}

impl Task {
    fn spawn_body(
        api_class: &str,
        api_method: &str,
        class: String,
        method: String,
        f: impl FnOnce() + Send + 'static,
    ) -> Task {
        let object = api::alloc_object();
        let inner = Arc::new(TaskInner {
            object,
            state: Mutex::new(TaskState::default()),
        });
        let inner2 = Arc::clone(&inner);
        api::lib_call(api_class, api_method, object, || {
            api::spawn(&format!("task:{class}.{method}"), move || {
                api::app_method(&class, &method, object, f);
                let waiters = {
                    let mut s = inner2.state.lock().expect("task poisoned");
                    s.done = true;
                    std::mem::take(&mut s.waiters)
                };
                for t in waiters {
                    kernel::kernel_wake(t);
                }
            });
        });
        Task { inner }
    }

    /// `Task.Run(() => class::method())`.
    pub fn run(
        class: impl Into<String>,
        method: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> Task {
        Task::spawn_body(CLASS, "Run", class.into(), method.into(), f)
    }

    /// `TaskFactory.StartNew(...)` — same semantics as [`Task::run`], traced
    /// under the factory API name (one of the "numerous ways of creating and
    /// executing tasks" Manual_dr misses, paper §5.4).
    pub fn start_new(
        class: impl Into<String>,
        method: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> Task {
        Task::spawn_body(FACTORY, "StartNew", class.into(), method.into(), f)
    }

    /// Blocks until the task's delegate returns (`Task.Wait`).
    pub fn wait(&self) {
        api::lib_call(CLASS, "Wait", self.inner.object, || {
            self.block_until_done();
        });
    }

    /// Registers a continuation that runs after this task completes
    /// (`Task.ContinueWith`); returns the continuation task.
    pub fn continue_with(
        &self,
        class: impl Into<String>,
        method: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> Task {
        let class = class.into();
        let method = method.into();
        let object = api::alloc_object();
        let cont = Arc::new(TaskInner {
            object,
            state: Mutex::new(TaskState::default()),
        });
        let cont2 = Arc::clone(&cont);
        let antecedent = self.clone();
        api::lib_call(CLASS, "ContinueWith", self.inner.object, || {
            api::spawn(&format!("cont:{class}.{method}"), move || {
                // Framework-internal wait: untraced, like the scheduler
                // machinery inside the TPL the paper cannot see.
                antecedent.block_until_done();
                api::app_method(&class, &method, object, f);
                let waiters = {
                    let mut s = cont2.state.lock().expect("task poisoned");
                    s.done = true;
                    std::mem::take(&mut s.waiters)
                };
                for t in waiters {
                    kernel::kernel_wake(t);
                }
            });
        });
        Task { inner: cont }
    }

    /// Whether the delegate has completed.
    pub fn is_done(&self) -> bool {
        self.inner.state.lock().expect("task poisoned").done
    }

    fn block_until_done(&self) {
        let me = api::current_thread();
        loop {
            let done = {
                let mut s = self.inner.state.lock().expect("task poisoned");
                if !s.done {
                    s.waiters.push(me);
                }
                s.done
            };
            if done {
                return;
            }
            kernel::kernel_block_current();
        }
    }
}

/// The traced thread pool: `ThreadPool.QueueUserWorkItem`.
pub struct ThreadPool;

impl ThreadPool {
    /// Queues `class::method` onto the pool; returns a [`Task`]-like handle
    /// usable for untraced completion tracking in tests.
    pub fn queue_user_work_item(
        class: impl Into<String>,
        method: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> Task {
        Task::spawn_body(
            "System.Threading.ThreadPool",
            "QueueUserWorkItem",
            class.into(),
            method.into(),
            f,
        )
    }
}
