use std::sync::{Arc, Mutex};

use crate::api;
use crate::kernel;

/// A traced `EventWaitHandle` (manual- or auto-reset event): `Set`,
/// `WaitOne`, `Reset`, and the n-to-1 `WaitHandle.WaitAll`.
#[derive(Clone)]
pub struct EventWaitHandle {
    inner: Arc<EwInner>,
}

struct EwInner {
    object: u64,
    auto_reset: bool,
    state: Mutex<EwState>,
}

#[derive(Default)]
struct EwState {
    signaled: bool,
    waiters: Vec<u32>,
}

impl EventWaitHandle {
    /// Creates an unsignaled event. Auto-reset events consume the signal on
    /// each successful wait.
    pub fn new(auto_reset: bool) -> Self {
        EventWaitHandle {
            inner: Arc::new(EwInner {
                object: api::alloc_object(),
                auto_reset,
                state: Mutex::new(EwState::default()),
            }),
        }
    }

    /// Signals the event (`EventWaitHandle.Set`), waking waiters.
    pub fn set(&self) {
        api::lib_call(
            "System.Threading.EventWaitHandle",
            "Set",
            self.inner.object,
            || {
                let waiters = {
                    let mut s = self.inner.state.lock().expect("event poisoned");
                    s.signaled = true;
                    std::mem::take(&mut s.waiters)
                };
                for t in waiters {
                    kernel::kernel_wake(t);
                }
            },
        );
    }

    /// Unsignals the event (`EventWaitHandle.Reset`).
    pub fn reset(&self) {
        api::lib_call(
            "System.Threading.EventWaitHandle",
            "Reset",
            self.inner.object,
            || {
                self.inner.state.lock().expect("event poisoned").signaled = false;
            },
        );
    }

    /// Blocks until the event is signaled (`WaitHandle.WaitOne`).
    pub fn wait_one(&self) {
        api::lib_call(
            "System.Threading.WaitHandle",
            "WaitOne",
            self.inner.object,
            || {
                self.block_untraced();
            },
        );
    }

    /// Blocks until *all* the given events are signaled
    /// (`WaitHandle.WaitAll`) — the paper's example of an n-to-1 acquire
    /// (Table 8, Radical).
    pub fn wait_all(handles: &[&EventWaitHandle]) {
        let object = handles.first().map_or(0, |h| h.inner.object);
        api::lib_call("System.Threading.WaitHandle", "WaitAll", object, || {
            for h in handles {
                h.block_untraced();
            }
        });
    }

    /// Signals the event *without tracing* — models framework-internal
    /// handoffs the paper's instrumentation cannot see (e.g. inside skipped
    /// compiler-generated code).
    pub fn set_untraced(&self) {
        let waiters = {
            let mut s = self.inner.state.lock().expect("event poisoned");
            s.signaled = true;
            std::mem::take(&mut s.waiters)
        };
        for t in waiters {
            kernel::kernel_wake(t);
        }
    }

    /// Waits for the event *without tracing* (see [`EventWaitHandle::set_untraced`]).
    pub fn wait_one_untraced(&self) {
        self.block_untraced();
    }

    fn block_untraced(&self) {
        let me = api::current_thread();
        loop {
            let ok = {
                let mut s = self.inner.state.lock().expect("event poisoned");
                if s.signaled {
                    if self.inner.auto_reset {
                        s.signaled = false;
                    }
                    true
                } else {
                    s.waiters.push(me);
                    false
                }
            };
            if ok {
                return;
            }
            kernel::kernel_block_current();
        }
    }

    /// Whether the event is currently signaled.
    pub fn is_set(&self) -> bool {
        self.inner.state.lock().expect("event poisoned").signaled
    }
}

/// A traced counting semaphore: `Semaphore.Release` / `Semaphore.WaitOne`.
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<SemInner>,
}

struct SemInner {
    object: u64,
    state: Mutex<SemState>,
}

#[derive(Default)]
struct SemState {
    count: u32,
    waiters: Vec<u32>,
}

impl Semaphore {
    /// Creates a semaphore with an initial permit count.
    pub fn new(initial: u32) -> Self {
        Semaphore {
            inner: Arc::new(SemInner {
                object: api::alloc_object(),
                state: Mutex::new(SemState {
                    count: initial,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    /// Releases `n` permits.
    pub fn release(&self, n: u32) {
        api::lib_call(
            "System.Threading.Semaphore",
            "Release",
            self.inner.object,
            || {
                let waiters = {
                    let mut s = self.inner.state.lock().expect("semaphore poisoned");
                    s.count += n;
                    std::mem::take(&mut s.waiters)
                };
                for t in waiters {
                    kernel::kernel_wake(t);
                }
            },
        );
    }

    /// Blocks until a permit is available, then takes it.
    pub fn wait_one(&self) {
        api::lib_call(
            "System.Threading.Semaphore",
            "WaitOne",
            self.inner.object,
            || {
                let me = api::current_thread();
                loop {
                    let ok = {
                        let mut s = self.inner.state.lock().expect("semaphore poisoned");
                        if s.count > 0 {
                            s.count -= 1;
                            true
                        } else {
                            s.waiters.push(me);
                            false
                        }
                    };
                    if ok {
                        return;
                    }
                    kernel::kernel_block_current();
                }
            },
        );
    }
}

/// A traced `System.Threading.ReaderWriterLock`, including
/// `UpgradeToWriterLock` — the API that *violates* SherLock's Single-Role
/// assumption because it releases a reader lock and acquires a writer lock
/// inside one call (paper §5.5, the Double-Roles false-positive category).
#[derive(Clone)]
pub struct RwLock {
    inner: Arc<RwInner>,
}

const RW_CLASS: &str = "System.Threading.ReaderWriterLock";

struct RwInner {
    object: u64,
    state: Mutex<RwState>,
}

#[derive(Default)]
struct RwState {
    readers: Vec<u32>,
    writer: Option<u32>,
    waiters: Vec<u32>,
}

impl RwLock {
    /// Creates an uncontended reader-writer lock.
    pub fn new() -> Self {
        RwLock {
            inner: Arc::new(RwInner {
                object: api::alloc_object(),
                state: Mutex::new(RwState::default()),
            }),
        }
    }

    /// Acquires a shared reader lock.
    pub fn acquire_reader_lock(&self) {
        api::lib_call(RW_CLASS, "AcquireReaderLock", self.inner.object, || {
            self.lock_reader_untraced();
        });
    }

    /// Releases the calling thread's reader lock.
    pub fn release_reader_lock(&self) {
        api::lib_call(RW_CLASS, "ReleaseReaderLock", self.inner.object, || {
            self.unlock_reader_untraced();
        });
    }

    /// Acquires the exclusive writer lock.
    pub fn acquire_writer_lock(&self) {
        api::lib_call(RW_CLASS, "AcquireWriterLock", self.inner.object, || {
            self.lock_writer_untraced();
        });
    }

    /// Releases the writer lock.
    pub fn release_writer_lock(&self) {
        api::lib_call(RW_CLASS, "ReleaseWriterLock", self.inner.object, || {
            self.unlock_writer_untraced();
        });
    }

    /// Atomically (from the caller's view) releases the reader lock and
    /// acquires the writer lock — *one* traced API performing both a release
    /// and an acquire.
    pub fn upgrade_to_writer_lock(&self) {
        api::lib_call(RW_CLASS, "UpgradeToWriterLock", self.inner.object, || {
            self.unlock_reader_untraced();
            self.lock_writer_untraced();
        });
    }

    /// Downgrades the writer lock back to a reader lock.
    pub fn downgrade_from_writer_lock(&self) {
        api::lib_call(
            RW_CLASS,
            "DowngradeFromWriterLock",
            self.inner.object,
            || {
                self.unlock_writer_untraced();
                self.lock_reader_untraced();
            },
        );
    }

    fn lock_reader_untraced(&self) {
        let me = api::current_thread();
        loop {
            let ok = {
                let mut s = self.inner.state.lock().expect("rwlock poisoned");
                if s.writer.is_none() {
                    s.readers.push(me);
                    true
                } else {
                    s.waiters.push(me);
                    false
                }
            };
            if ok {
                return;
            }
            kernel::kernel_block_current();
        }
    }

    fn unlock_reader_untraced(&self) {
        let me = api::current_thread();
        let waiters = {
            let mut s = self.inner.state.lock().expect("rwlock poisoned");
            if let Some(pos) = s.readers.iter().position(|&r| r == me) {
                s.readers.swap_remove(pos);
            }
            std::mem::take(&mut s.waiters)
        };
        for t in waiters {
            kernel::kernel_wake(t);
        }
    }

    fn lock_writer_untraced(&self) {
        let me = api::current_thread();
        loop {
            let ok = {
                let mut s = self.inner.state.lock().expect("rwlock poisoned");
                if s.writer.is_none() && s.readers.is_empty() {
                    s.writer = Some(me);
                    true
                } else {
                    s.waiters.push(me);
                    false
                }
            };
            if ok {
                return;
            }
            kernel::kernel_block_current();
        }
    }

    fn unlock_writer_untraced(&self) {
        let waiters = {
            let mut s = self.inner.state.lock().expect("rwlock poisoned");
            assert_eq!(
                s.writer,
                Some(api::current_thread()),
                "writer unlock by non-owner"
            );
            s.writer = None;
            std::mem::take(&mut s.waiters)
        };
        for t in waiters {
            kernel::kernel_wake(t);
        }
    }
}

impl Default for RwLock {
    fn default() -> Self {
        RwLock::new()
    }
}

/// A traced `System.Threading.Barrier`: participants block at
/// [`Barrier::signal_and_wait`] until all of them arrive, then proceed
/// together into the next phase. Manual_dr's annotation list covers barriers
/// (paper §5.4); SherLock infers the same call site as both roles' home.
#[derive(Clone)]
pub struct Barrier {
    inner: Arc<BarrierInner>,
}

struct BarrierInner {
    object: u64,
    participants: u32,
    state: Mutex<BarrierState>,
}

#[derive(Default)]
struct BarrierState {
    arrived: u32,
    generation: u64,
    waiters: Vec<u32>,
}

impl Barrier {
    /// Creates a barrier for `participants` threads.
    pub fn new(participants: u32) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        Barrier {
            inner: Arc::new(BarrierInner {
                object: api::alloc_object(),
                participants,
                state: Mutex::new(BarrierState::default()),
            }),
        }
    }

    /// Arrives at the barrier and blocks until the phase completes
    /// (`Barrier.SignalAndWait`). Returns the completed phase number.
    pub fn signal_and_wait(&self) -> u64 {
        api::lib_call(
            "System.Threading.Barrier",
            "SignalAndWait",
            self.inner.object,
            || {
                let me = api::current_thread();
                let my_generation = {
                    let mut s = self.inner.state.lock().expect("barrier poisoned");
                    let gen = s.generation;
                    s.arrived += 1;
                    if s.arrived == self.inner.participants {
                        s.arrived = 0;
                        s.generation += 1;
                        let waiters = std::mem::take(&mut s.waiters);
                        drop(s);
                        for t in waiters {
                            kernel::kernel_wake(t);
                        }
                        return gen;
                    }
                    s.waiters.push(me);
                    gen
                };
                loop {
                    kernel::kernel_block_current();
                    let s = self.inner.state.lock().expect("barrier poisoned");
                    if s.generation > my_generation {
                        return my_generation;
                    }
                    // Spurious wake: re-register.
                    drop(s);
                    let mut s = self.inner.state.lock().expect("barrier poisoned");
                    s.waiters.push(me);
                }
            },
        )
    }
}

/// A traced `System.Threading.CountdownEvent`: [`CountdownEvent::signal`]
/// decrements the count; [`CountdownEvent::wait`] blocks until it reaches
/// zero — the n-to-1 join idiom.
#[derive(Clone)]
pub struct CountdownEvent {
    inner: Arc<CdInner>,
}

struct CdInner {
    object: u64,
    state: Mutex<CdState>,
}

#[derive(Default)]
struct CdState {
    count: u32,
    waiters: Vec<u32>,
}

impl CountdownEvent {
    /// Creates an event expecting `count` signals.
    pub fn new(count: u32) -> Self {
        CountdownEvent {
            inner: Arc::new(CdInner {
                object: api::alloc_object(),
                state: Mutex::new(CdState {
                    count,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    /// Signals once (`CountdownEvent.Signal`), waking waiters when the count
    /// reaches zero. Returns `true` when this signal released the event.
    pub fn signal(&self) -> bool {
        api::lib_call(
            "System.Threading.CountdownEvent",
            "Signal",
            self.inner.object,
            || {
                let (zero, waiters) = {
                    let mut s = self.inner.state.lock().expect("countdown poisoned");
                    assert!(s.count > 0, "CountdownEvent signaled below zero");
                    s.count -= 1;
                    if s.count == 0 {
                        (true, std::mem::take(&mut s.waiters))
                    } else {
                        (false, Vec::new())
                    }
                };
                for t in waiters {
                    kernel::kernel_wake(t);
                }
                zero
            },
        )
    }

    /// Blocks until the count reaches zero (`CountdownEvent.Wait`).
    pub fn wait(&self) {
        api::lib_call(
            "System.Threading.CountdownEvent",
            "Wait",
            self.inner.object,
            || {
                let me = api::current_thread();
                loop {
                    let done = {
                        let mut s = self.inner.state.lock().expect("countdown poisoned");
                        if s.count == 0 {
                            true
                        } else {
                            s.waiters.push(me);
                            false
                        }
                    };
                    if done {
                        return;
                    }
                    kernel::kernel_block_current();
                }
            },
        )
    }

    /// Untraced current count (for assertions in tests).
    pub fn count_untraced(&self) -> u32 {
        self.inner.state.lock().expect("countdown poisoned").count
    }
}
