use std::sync::{Arc, Mutex};

use crate::api;
use crate::kernel;

/// Lazy one-time initialization with C# static-constructor semantics: the
/// language guarantees that a class's `.cctor` completes before any use of
/// the class, so the `.cctor`'s exit is a release and the first access after
/// it is an acquire (paper §5.3.3 and Tables 8–9).
///
/// The first thread to call [`StaticCtor::ensure`] runs the initializer as a
/// traced application method `Class::.cctor`; every other concurrent caller
/// blocks (untraced — the runtime's internal latch is invisible to the
/// paper's instrumentation too) until it completes.
#[derive(Clone)]
pub struct StaticCtor {
    inner: Arc<CtorInner>,
}

struct CtorInner {
    class: String,
    object: u64,
    state: Mutex<CtorState>,
}

#[derive(Default)]
struct CtorState {
    phase: Phase,
    waiters: Vec<u32>,
}

#[derive(Clone, Copy, Default, PartialEq, Eq)]
enum Phase {
    #[default]
    NotStarted,
    Running,
    Done,
}

impl StaticCtor {
    /// Creates the latch for class `class`.
    pub fn new(class: impl Into<String>) -> Self {
        StaticCtor {
            inner: Arc::new(CtorInner {
                class: class.into(),
                object: api::alloc_object(),
                state: Mutex::new(CtorState::default()),
            }),
        }
    }

    /// Ensures the static constructor has run, executing `init` on the first
    /// call and blocking concurrent callers until it completes.
    pub fn ensure(&self, init: impl FnOnce()) {
        let claimed = {
            let mut s = self.inner.state.lock().expect("static ctor poisoned");
            if s.phase == Phase::NotStarted {
                s.phase = Phase::Running;
                true
            } else {
                false
            }
        };
        if claimed {
            api::app_method(&self.inner.class, ".cctor", self.inner.object, init);
            let waiters = {
                let mut s = self.inner.state.lock().expect("static ctor poisoned");
                s.phase = Phase::Done;
                std::mem::take(&mut s.waiters)
            };
            for t in waiters {
                kernel::kernel_wake(t);
            }
            return;
        }
        let me = api::current_thread();
        loop {
            let done = {
                let mut s = self.inner.state.lock().expect("static ctor poisoned");
                if s.phase == Phase::Done {
                    true
                } else {
                    s.waiters.push(me);
                    false
                }
            };
            if done {
                return;
            }
            kernel::kernel_block_current();
        }
    }

    /// Whether the constructor has completed.
    pub fn is_initialized(&self) -> bool {
        self.inner.state.lock().expect("static ctor poisoned").phase == Phase::Done
    }

    /// The object identity `.cctor` is traced against — callers that trace
    /// their own accessor methods (e.g. a `Get` wrapping the initialized
    /// read) can reuse it so acquire and release share one object channel.
    pub fn object(&self) -> u64 {
        self.inner.object
    }
}
