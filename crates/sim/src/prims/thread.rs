use crate::api::{self, JoinHandle};

const CLASS: &str = "System.Threading.Thread";

/// A traced fork-join thread: `Thread.Start` / `Thread.Join`.
///
/// The call site of `Start` is the release and the entry of the delegate
/// method (an application method, traced in the child) is the matching
/// acquire — the paper's canonical example of a release/acquire pair spanning
/// a system class and an application class (§2, Mostly-Paired discussion).
#[derive(Clone, Debug)]
pub struct SimThread {
    handle: JoinHandle,
    object: u64,
}

impl SimThread {
    /// Starts a thread running the delegate `class::method` (traced as an
    /// application method in the child).
    pub fn start(
        class: impl Into<String>,
        method: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> SimThread {
        let class = class.into();
        let method = method.into();
        let object = api::alloc_object();
        let handle = api::lib_call(CLASS, "Start", object, || {
            let name = format!("{class}.{method}");
            api::spawn(&name, move || {
                api::app_method(&class, &method, object, f);
            })
        });
        SimThread { handle, object }
    }

    /// Blocks until the thread's delegate returns (`Thread.Join`).
    pub fn join(&self) {
        api::lib_call(CLASS, "Join", self.object, || self.handle.join());
    }

    /// Whether the delegate has returned.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// The underlying untraced handle.
    pub fn handle(&self) -> &JoinHandle {
        &self.handle
    }
}
