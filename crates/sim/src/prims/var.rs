use std::sync::{Arc, Mutex};

use sherlock_trace::{AccessClass, OpRef, Time};

use crate::api;

/// A traced heap field: every read and write emits a `FieldRead`/`FieldWrite`
/// event, making the variable eligible both as a conflicting-access endpoint
/// and as a variable-based synchronization candidate (spin loops and flag
/// checks, paper §5.3.2).
///
/// All instances of the same `Class::field` share one inference variable,
/// but each instance has its own object identity for conflict detection.
#[derive(Clone)]
pub struct TracedVar<T> {
    inner: Arc<VarInner<T>>,
}

struct VarInner<T> {
    class: String,
    field: String,
    object: u64,
    value: Mutex<T>,
}

impl<T: Copy + Send + 'static> TracedVar<T> {
    /// Creates a traced field on a fresh object. Must be called from inside a
    /// simulated thread.
    pub fn new(class: impl Into<String>, field: impl Into<String>, initial: T) -> Self {
        TracedVar {
            inner: Arc::new(VarInner {
                class: class.into(),
                field: field.into(),
                object: api::alloc_object(),
                value: Mutex::new(initial),
            }),
        }
    }

    /// Reads the value, tracing a `FieldRead`.
    pub fn get(&self) -> T {
        api::trace_op(
            &OpRef::field_read(&self.inner.class, &self.inner.field),
            self.inner.object,
            AccessClass::Read,
        );
        *self.inner.value.lock().expect("traced var poisoned")
    }

    /// Writes the value, tracing a `FieldWrite`.
    pub fn set(&self, v: T) {
        api::trace_op(
            &OpRef::field_write(&self.inner.class, &self.inner.field),
            self.inner.object,
            AccessClass::Write,
        );
        *self.inner.value.lock().expect("traced var poisoned") = v;
    }

    /// Read-modify-write (traced as one read followed by one write — exactly
    /// the racy increment idiom when used without a lock).
    pub fn update(&self, f: impl FnOnce(T) -> T) -> T {
        let old = self.get();
        let new = f(old);
        self.set(new);
        new
    }

    /// Spin-waits (polling every `poll_interval` of virtual time) until the
    /// predicate holds — the `while (!flag) { }` idiom of paper Fig. 3.B.
    pub fn spin_until(&self, poll_interval: Time, pred: impl Fn(T) -> bool) -> T {
        loop {
            let v = self.get();
            if pred(v) {
                return v;
            }
            api::sleep(poll_interval);
        }
    }

    /// The object identity of this instance.
    pub fn object(&self) -> u64 {
        self.inner.object
    }

    /// The interned op id of this field's read operation.
    pub fn read_op(&self) -> sherlock_trace::OpId {
        OpRef::field_read(&self.inner.class, &self.inner.field).intern()
    }

    /// The interned op id of this field's write operation.
    pub fn write_op(&self) -> sherlock_trace::OpId {
        OpRef::field_write(&self.inner.class, &self.inner.field).intern()
    }
}
