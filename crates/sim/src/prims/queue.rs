use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::api;
use crate::kernel;

const CLASS: &str = "System.Collections.Concurrent.BlockingCollection";

/// A traced `BlockingCollection<T>`: the classic bounded producer/consumer
/// queue. `Add` blocks while the collection is full; `Take` blocks while it
/// is empty; `CompleteAdding` unblocks pending consumers.
///
/// Both `Add` and `Take` are synchronizations in both directions — an `Add`
/// releases the item to a `Take`, and a `Take` on a full queue releases
/// capacity back to a blocked `Add`.
#[derive(Clone)]
pub struct BlockingCollection<T> {
    inner: Arc<BcInner<T>>,
}

struct BcInner<T> {
    object: u64,
    capacity: usize,
    state: Mutex<BcState<T>>,
}

struct BcState<T> {
    items: VecDeque<T>,
    completed: bool,
    waiters: Vec<u32>,
}

impl<T: Send + 'static> BlockingCollection<T> {
    /// Creates a collection with the given capacity bound.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BlockingCollection {
            inner: Arc::new(BcInner {
                object: api::alloc_object(),
                capacity,
                state: Mutex::new(BcState {
                    items: VecDeque::new(),
                    completed: false,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    /// Adds an item, blocking while the collection is at capacity
    /// (`BlockingCollection.Add`).
    ///
    /// # Panics
    ///
    /// Panics if called after [`BlockingCollection::complete_adding`].
    pub fn add(&self, item: T) {
        api::lib_call(CLASS, "Add", self.inner.object, || {
            let me = api::current_thread();
            let mut item = Some(item);
            loop {
                let (done, waiters) = {
                    let mut s = self.inner.state.lock().expect("collection poisoned");
                    assert!(!s.completed, "Add after CompleteAdding");
                    if s.items.len() < self.inner.capacity {
                        s.items.push_back(item.take().expect("item still pending"));
                        (true, std::mem::take(&mut s.waiters))
                    } else {
                        s.waiters.push(me);
                        (false, Vec::new())
                    }
                };
                for t in waiters {
                    kernel::kernel_wake(t);
                }
                if done {
                    return;
                }
                kernel::kernel_block_current();
            }
        });
    }

    /// Takes the next item, blocking while the collection is empty
    /// (`BlockingCollection.Take`). Returns `None` once the collection is
    /// completed and drained.
    pub fn take(&self) -> Option<T> {
        api::lib_call(CLASS, "Take", self.inner.object, || {
            let me = api::current_thread();
            loop {
                let (result, waiters) = {
                    let mut s = self.inner.state.lock().expect("collection poisoned");
                    match s.items.pop_front() {
                        Some(v) => (Some(Some(v)), std::mem::take(&mut s.waiters)),
                        None if s.completed => (Some(None), Vec::new()),
                        None => {
                            s.waiters.push(me);
                            (None, Vec::new())
                        }
                    }
                };
                for t in waiters {
                    kernel::kernel_wake(t);
                }
                match result {
                    Some(v) => return v,
                    None => kernel::kernel_block_current(),
                }
            }
        })
    }

    /// Marks the collection complete (`BlockingCollection.CompleteAdding`):
    /// pending and future `Take`s drain the remaining items then return
    /// `None`.
    pub fn complete_adding(&self) {
        api::lib_call(CLASS, "CompleteAdding", self.inner.object, || {
            let waiters = {
                let mut s = self.inner.state.lock().expect("collection poisoned");
                s.completed = true;
                std::mem::take(&mut s.waiters)
            };
            for t in waiters {
                kernel::kernel_wake(t);
            }
        });
    }

    /// Untraced current length (for assertions in tests).
    pub fn len_untraced(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("collection poisoned")
            .items
            .len()
    }
}

/// Traced `Interlocked` operations: lock-free atomic read-modify-writes.
///
/// As the paper's introduction notes, atomic operations "do not always
/// induce happens-before relationship, like when an atomic operation is used
/// to increment a statistics variable" — so `Interlocked` calls are traced
/// (and write-classified, so they form conflicting pairs) but carry no
/// blocking semantics whatsoever. Whether they get inferred as
/// synchronization depends entirely on how the program uses them.
#[derive(Clone)]
pub struct Interlocked {
    object: u64,
    value: Arc<Mutex<i64>>,
}

const INTERLOCKED: &str = "System.Threading.Interlocked";

impl Interlocked {
    /// Creates an atomic cell.
    pub fn new(initial: i64) -> Self {
        Interlocked {
            object: api::alloc_object(),
            value: Arc::new(Mutex::new(initial)),
        }
    }

    /// `Interlocked.Increment` — atomic, traced, write-classified.
    pub fn increment(&self) -> i64 {
        api::lib_call_classified(
            INTERLOCKED,
            "Increment",
            self.object,
            sherlock_trace::AccessClass::Write,
            || {
                let mut v = self.value.lock().expect("interlocked poisoned");
                *v += 1;
                *v
            },
        )
    }

    /// `Interlocked.Exchange` — atomic swap.
    pub fn exchange(&self, new: i64) -> i64 {
        api::lib_call_classified(
            INTERLOCKED,
            "Exchange",
            self.object,
            sherlock_trace::AccessClass::Write,
            || {
                let mut v = self.value.lock().expect("interlocked poisoned");
                std::mem::replace(&mut *v, new)
            },
        )
    }

    /// `Interlocked.Read` — atomic read, read-classified.
    pub fn read(&self) -> i64 {
        api::lib_call_classified(
            INTERLOCKED,
            "Read",
            self.object,
            sherlock_trace::AccessClass::Read,
            || *self.value.lock().expect("interlocked poisoned"),
        )
    }
}
