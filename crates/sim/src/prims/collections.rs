use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use sherlock_trace::AccessClass;

use crate::api;
use crate::kernel;

/// A traced `ConcurrentDictionary.GetOrAdd` (paper Fig. 3.C).
///
/// The value delegate passed to `get_or_add` runs only when the key is
/// absent and is atomic with respect to delegates from concurrent calls on
/// the same dictionary — so the exit of one delegate happens before the entry
/// of the next, a happens-before relation SherLock infers with no knowledge
/// of the dictionary's semantics.
#[derive(Clone)]
pub struct ConcurrentMap<K, V> {
    inner: Arc<CmInner<K, V>>,
}

const CM_CLASS: &str = "System.Collections.Concurrent.ConcurrentDictionary";

struct CmInner<K, V> {
    object: u64,
    state: Mutex<CmState<K, V>>,
}

struct CmState<K, V> {
    map: HashMap<K, V>,
    busy: bool,
    waiters: Vec<u32>,
}

impl<K: Eq + Hash + Clone + Send + 'static, V: Clone + Send + 'static> ConcurrentMap<K, V> {
    /// Creates an empty concurrent dictionary.
    pub fn new() -> Self {
        ConcurrentMap {
            inner: Arc::new(CmInner {
                object: api::alloc_object(),
                state: Mutex::new(CmState {
                    map: HashMap::new(),
                    busy: false,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    /// Returns the value for `key`, running the traced delegate
    /// `class::delegate` to produce it if absent. Delegates from concurrent
    /// calls are mutually exclusive (via an internal, untraced latch).
    pub fn get_or_add(&self, key: K, class: &str, delegate: &str, f: impl FnOnce() -> V) -> V {
        api::lib_call(CM_CLASS, "GetOrAdd", self.inner.object, || {
            let me = api::current_thread();
            // Enter the internal atomic region.
            loop {
                let entered = {
                    let mut s = self.inner.state.lock().expect("concurrent map poisoned");
                    if s.busy {
                        s.waiters.push(me);
                        false
                    } else {
                        s.busy = true;
                        true
                    }
                };
                if entered {
                    break;
                }
                kernel::kernel_block_current();
            }
            let existing = {
                let s = self.inner.state.lock().expect("concurrent map poisoned");
                s.map.get(&key).cloned()
            };
            let value = match existing {
                Some(v) => v,
                None => {
                    let v = api::app_method(class, delegate, self.inner.object, f);
                    self.inner
                        .state
                        .lock()
                        .expect("concurrent map poisoned")
                        .map
                        .insert(key, v.clone());
                    v
                }
            };
            let waiters = {
                let mut s = self.inner.state.lock().expect("concurrent map poisoned");
                s.busy = false;
                std::mem::take(&mut s.waiters)
            };
            for t in waiters {
                kernel::kernel_wake(t);
            }
            value
        })
    }

    /// Untraced read of a key (for assertions in tests).
    pub fn peek(&self, key: &K) -> Option<V> {
        self.inner
            .state
            .lock()
            .expect("concurrent map poisoned")
            .map
            .get(key)
            .cloned()
    }
}

impl<K: Eq + Hash + Clone + Send + 'static, V: Clone + Send + 'static> Default
    for ConcurrentMap<K, V>
{
    fn default() -> Self {
        ConcurrentMap::new()
    }
}

/// A *thread-unsafe* traced collection, standing in for the 14
/// `System.Collections.Generic` classes the paper instruments: its call
/// sites are classified read/write so concurrent operations on the same list
/// form conflicting pairs (and are TSVD's thread-safety-violation targets).
#[derive(Clone)]
pub struct UnsafeList<T> {
    object: u64,
    items: Arc<Mutex<Vec<T>>>,
}

const LIST_CLASS: &str = "System.Collections.Generic.List";

impl<T: Clone + Send + 'static> UnsafeList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        UnsafeList {
            object: api::alloc_object(),
            items: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// `List.Add` — a write-like call site.
    pub fn add(&self, v: T) {
        api::lib_call_classified(LIST_CLASS, "Add", self.object, AccessClass::Write, || {
            self.items.lock().expect("list poisoned").push(v);
        });
    }

    /// `List.get_Item` — a read-like call site.
    pub fn get(&self, index: usize) -> Option<T> {
        api::lib_call_classified(
            LIST_CLASS,
            "get_Item",
            self.object,
            AccessClass::Read,
            || {
                self.items
                    .lock()
                    .expect("list poisoned")
                    .get(index)
                    .cloned()
            },
        )
    }

    /// `List.get_Count` — a read-like call site.
    pub fn len(&self) -> usize {
        api::lib_call_classified(
            LIST_CLASS,
            "get_Count",
            self.object,
            AccessClass::Read,
            || self.items.lock().expect("list poisoned").len(),
        )
    }

    /// Whether the list is empty (read-like call site).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `List.Clear` — a write-like call site.
    pub fn clear(&self) {
        api::lib_call_classified(LIST_CLASS, "Clear", self.object, AccessClass::Write, || {
            self.items.lock().expect("list poisoned").clear();
        });
    }

    /// The object identity of this list instance.
    pub fn object(&self) -> u64 {
        self.object
    }
}

impl<T: Clone + Send + 'static> Default for UnsafeList<T> {
    fn default() -> Self {
        UnsafeList::new()
    }
}
