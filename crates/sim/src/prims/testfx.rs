//! A minimal test-framework shim with
//! `Microsoft.VisualStudio.TestTools.UnitTesting` semantics.
//!
//! The framework guarantees that the fixture's `TestInitialize` method
//! completes before any test method runs (paper Fig. 3.E): the framework's
//! internal ordering is untraced, so SherLock must *infer* that the return of
//! `TestInitialize` is a release and the entry of each test method the
//! matching acquire.

use crate::api::{self, JoinHandle};
use crate::kernel;
use std::sync::{Arc, Mutex};

/// Traced assertion helpers matching the `Assert` class the paper's Radical
/// rows list (`Assert::IsTrue — end of last access`, Table 8).
pub struct Assert;

const ASSERT_CLASS: &str = "Microsoft.VisualStudio.TestTools.UnitTesting.Assert";

impl Assert {
    /// `Assert.IsTrue` — traced; panics (test failure) if `cond` is false.
    pub fn is_true(cond: bool, message: &str) {
        api::lib_call(ASSERT_CLASS, "IsTrue", 0, || {
            if !cond {
                panic!("Assert.IsTrue failed: {message}");
            }
        });
    }

    /// `Assert.IsFalse` — traced; panics (test failure) if `cond` is true.
    pub fn is_false(cond: bool, message: &str) {
        api::lib_call(ASSERT_CLASS, "IsFalse", 0, || {
            if cond {
                panic!("Assert.IsFalse failed: {message}");
            }
        });
    }

    /// `Assert.AreEqual` — traced equality check.
    pub fn are_equal<T: PartialEq + std::fmt::Debug>(a: T, b: T, message: &str) {
        api::lib_call(ASSERT_CLASS, "AreEqual", 0, || {
            if a != b {
                panic!("Assert.AreEqual failed ({a:?} != {b:?}): {message}");
            }
        });
    }
}

/// Runs `init` as the fixture's `TestInitialize` method on one thread, then
/// starts each test method on its own thread once initialization completes.
/// The completion ordering is enforced by an *untraced* framework latch.
///
/// Returns the join handles of the test threads (already-ordered; callers
/// usually join them all).
pub fn run_fixture(
    class: &str,
    init_name: &str,
    init: impl FnOnce() + Send + 'static,
    tests: Vec<(String, Box<dyn FnOnce() + Send>)>,
) -> Vec<JoinHandle> {
    let fixture_object = api::alloc_object();
    let ready: Arc<Mutex<(bool, Vec<u32>)>> = Arc::new(Mutex::new((false, Vec::new())));

    let class_owned = class.to_string();
    let init_name_owned = init_name.to_string();
    let ready_init = Arc::clone(&ready);
    let init_handle = api::spawn(&format!("{class}.{init_name}"), move || {
        api::app_method(&class_owned, &init_name_owned, fixture_object, init);
        let waiters = {
            let mut r = ready_init.lock().expect("fixture latch poisoned");
            r.0 = true;
            std::mem::take(&mut r.1)
        };
        for t in waiters {
            kernel::kernel_wake(t);
        }
    });

    let mut handles = vec![init_handle];
    for (name, body) in tests {
        let class_owned = class.to_string();
        let ready_test = Arc::clone(&ready);
        let handle = api::spawn(&format!("{class}.{name}"), move || {
            // Framework-internal wait for TestInitialize (untraced).
            let me = api::current_thread();
            loop {
                let ok = {
                    let mut r = ready_test.lock().expect("fixture latch poisoned");
                    if !r.0 {
                        r.1.push(me);
                    }
                    r.0
                };
                if ok {
                    break;
                }
                kernel::kernel_block_current();
            }
            api::app_method(&class_owned, &name, fixture_object, body);
        });
        handles.push(handle);
    }
    handles
}
