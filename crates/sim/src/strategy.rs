//! Pluggable scheduling strategies for the kernel.
//!
//! The kernel's only nondeterministic-looking decision is which runnable
//! thread gets the "go" token next. That decision point is this trait: the
//! historical behaviour (a seeded uniform pick) becomes [`RandomWalk`], and
//! two coverage-oriented alternatives ride the same hook — [`Pct`]
//! (probabilistic concurrency testing: random thread priorities with `d − 1`
//! priority-change points, Burckhardt et al., ASPLOS 2010) and
//! [`RoundRobin`] (a bounded quantum sweep). Which schedules the Observer
//! sees bounds what SherLock can infer, so the schedule [`Explorer`]
//! (`crate::explore`) fans a workload out across seeds and strategies.
//!
//! [`Explorer`]: crate::explore::Explorer

use crate::rng::SplitMix64;

/// A deterministic scheduling policy: given the runnable set, picks who runs.
///
/// Implementations must be pure functions of their own seeded state plus the
/// arguments — the kernel guarantees `on_spawn` and `pick` are called in a
/// deterministic order for a fixed `(workload, SimConfig)`, which is what
/// keeps every strategy's runs reproducible.
pub trait Strategy: Send {
    /// Short stable name, used for per-strategy telemetry counters.
    fn name(&self) -> &'static str;

    /// Notifies the strategy that thread `tid` now exists. Called exactly
    /// once per thread, in spawn order (tids are sequential from 0).
    fn on_spawn(&mut self, _tid: u32) {}

    /// Picks the index *into `runnable`* of the thread to run next.
    ///
    /// `runnable` is non-empty and sorted by tid; `step` is the number of
    /// scheduled steps executed so far; `rng` is the kernel's own seeded
    /// stream (shared with op-cost jitter), so strategies that draw from it
    /// perturb downstream jitter exactly like the historical scheduler did.
    fn pick(&mut self, runnable: &[u32], step: u64, rng: &mut SplitMix64) -> usize;
}

/// Data-only description of a strategy, kept in [`SimConfig`] so the config
/// stays `Clone + Debug`; the kernel builds the boxed state at run start.
///
/// [`SimConfig`]: crate::SimConfig
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StrategyKind {
    /// The historical scheduler: a uniform pick from the kernel RNG. With
    /// equal seeds this reproduces pre-Strategy traces byte-for-byte.
    #[default]
    RandomWalk,
    /// PCT-style priority scheduling: random per-thread priorities, with
    /// `depth − 1` priority-change points sampled over the step horizon.
    /// Higher depth targets bugs needing more ordering constraints.
    Pct {
        /// The PCT bug-depth parameter `d` (≥ 1).
        depth: u32,
    },
    /// A bounded round-robin sweep: each thread runs for at most `quantum`
    /// consecutive steps before the sweep moves to the next runnable tid.
    /// The seed rotates the starting position.
    RoundRobin {
        /// Steps a thread may run before being rotated out (≥ 1).
        quantum: u64,
    },
}

impl StrategyKind {
    /// Short stable name (matches [`Strategy::name`] of the built value).
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::RandomWalk => "random",
            StrategyKind::Pct { .. } => "pct",
            StrategyKind::RoundRobin { .. } => "rr",
        }
    }

    /// Instantiates the strategy state for a run with the given seed.
    pub fn build(self, seed: u64) -> Box<dyn Strategy> {
        match self {
            StrategyKind::RandomWalk => Box::new(RandomWalk),
            StrategyKind::Pct { depth } => Box::new(Pct::new(depth, seed)),
            StrategyKind::RoundRobin { quantum } => Box::new(RoundRobin::new(quantum, seed)),
        }
    }
}

/// The historical scheduler: uniform over the runnable set, drawn from the
/// kernel's RNG stream (so `RandomWalk` at seed `s` replays exactly the
/// schedule the pre-Strategy kernel produced at seed `s`).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomWalk;

impl Strategy for RandomWalk {
    fn name(&self) -> &'static str {
        "random"
    }

    fn pick(&mut self, runnable: &[u32], _step: u64, rng: &mut SplitMix64) -> usize {
        rng.gen_index(runnable.len())
    }
}

/// Virtual-step horizon over which PCT samples its priority-change points.
/// Classic PCT samples change points uniformly over the run length `k`; runs
/// here are not known in advance, so a fixed horizon plays that role (apps'
/// unit tests run well under this many steps).
const PCT_HORIZON: u64 = 8_192;

/// PCT-style priority scheduler.
///
/// Every thread gets a random high priority at spawn; the highest-priority
/// runnable thread always runs. At each of the `depth − 1` change points the
/// currently running thread's priority drops below every initial priority,
/// forcing the schedule through a different ordering — PCT's guarantee is
/// that any bug of depth `d` is hit with probability ≥ 1/(n·k^(d−1)) per run.
pub struct Pct {
    rng: SplitMix64,
    /// Priority per tid (indexes align with spawn order).
    priorities: Vec<u64>,
    /// Sorted ascending step numbers at which a demotion fires.
    change_points: Vec<u64>,
    next_cp: usize,
    /// Next demotion value; starts at `depth` and decreases, always below
    /// every initial priority (which are ≥ `depth + 1`).
    next_low: u64,
    last: Option<u32>,
    depth: u32,
}

impl Pct {
    /// Builds a PCT scheduler of the given depth (clamped to ≥ 1).
    pub fn new(depth: u32, seed: u64) -> Self {
        let depth = depth.max(1);
        // A distinct stream from the kernel's op-cost jitter: xor with a
        // fixed tweak so (seed, pct) and (seed, random-walk) decorrelate.
        let mut rng = SplitMix64::new(seed ^ 0x9c7e_e6a5_bb25_u64);
        let mut change_points: Vec<u64> =
            (1..depth).map(|_| rng.gen_range(1, PCT_HORIZON)).collect();
        change_points.sort_unstable();
        Pct {
            rng,
            priorities: Vec::new(),
            change_points,
            next_cp: 0,
            next_low: u64::from(depth),
            last: None,
            depth,
        }
    }
}

impl Strategy for Pct {
    fn name(&self) -> &'static str {
        "pct"
    }

    fn on_spawn(&mut self, tid: u32) {
        debug_assert_eq!(tid as usize, self.priorities.len());
        // Initial priorities live strictly above every demotion value.
        let p = u64::from(self.depth) + 1 + (self.rng.next_u64() >> 1);
        self.priorities.push(p);
    }

    fn pick(&mut self, runnable: &[u32], step: u64, _rng: &mut SplitMix64) -> usize {
        while self.next_cp < self.change_points.len() && step >= self.change_points[self.next_cp] {
            if let Some(last) = self.last {
                self.priorities[last as usize] = self.next_low;
                self.next_low = self.next_low.saturating_sub(1).max(1);
            }
            self.next_cp += 1;
        }
        let (idx, &tid) = runnable
            .iter()
            .enumerate()
            .max_by_key(|&(_, &tid)| (self.priorities[tid as usize], std::cmp::Reverse(tid)))
            .expect("runnable set is non-empty");
        self.last = Some(tid);
        idx
    }
}

/// Bounded round-robin sweep: cycles over tids in order, letting each
/// runnable thread execute at most `quantum` consecutive steps. The seed
/// offsets the starting cursor so different seeds sweep different rotations.
pub struct RoundRobin {
    quantum: u64,
    used: u64,
    cursor: u32,
}

impl RoundRobin {
    /// Builds a sweep with the given per-thread quantum (clamped to ≥ 1).
    pub fn new(quantum: u64, seed: u64) -> Self {
        RoundRobin {
            quantum: quantum.max(1),
            used: 0,
            // The cyclic-next rule below snaps an arbitrary start onto a real
            // tid, so the raw seed is a fine rotation offset.
            cursor: (seed % 64) as u32,
        }
    }
}

impl Strategy for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn pick(&mut self, runnable: &[u32], _step: u64, _rng: &mut SplitMix64) -> usize {
        if self.used < self.quantum {
            if let Some(idx) = runnable.iter().position(|&t| t == self.cursor) {
                self.used += 1;
                return idx;
            }
        }
        // Quantum exhausted (or cursor not runnable): cyclic-next runnable
        // tid strictly after the cursor, wrapping to the smallest.
        let idx = runnable.iter().position(|&t| t > self.cursor).unwrap_or(0);
        self.cursor = runnable[idx];
        self.used = 1;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(strategy: &mut dyn Strategy, runnable: &[u32], steps: u64) -> Vec<u32> {
        let mut rng = SplitMix64::new(7);
        for &t in runnable {
            strategy.on_spawn(t);
        }
        (0..steps)
            .map(|s| runnable[strategy.pick(runnable, s, &mut rng)])
            .collect()
    }

    #[test]
    fn random_walk_matches_kernel_rng_stream() {
        // RandomWalk must consume exactly one gen_index per pick from the
        // shared RNG — the byte-compat contract with the historical kernel.
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut s = RandomWalk;
        let runnable = [0u32, 1, 2];
        for step in 0..100 {
            let idx = s.pick(&runnable, step, &mut a);
            assert_eq!(idx, b.gen_index(3));
        }
    }

    #[test]
    fn pct_is_deterministic_and_priority_driven() {
        let picks1 = drive(&mut Pct::new(3, 11), &[0, 1, 2, 3], 200);
        let picks2 = drive(&mut Pct::new(3, 11), &[0, 1, 2, 3], 200);
        assert_eq!(picks1, picks2);
        // Between change points PCT is a fixed-priority scheduler: with the
        // full runnable set offered every step, long constant stretches
        // dominate (unlike a uniform random walk).
        let switches = picks1.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 2 * 3, "too many switches: {switches}");
    }

    #[test]
    fn pct_change_points_demote_the_running_thread() {
        let mut pct = Pct::new(2, 1);
        pct.change_points = vec![5];
        pct.next_cp = 0;
        let runnable = [0u32, 1];
        let mut rng = SplitMix64::new(0);
        for &t in &runnable {
            pct.on_spawn(t);
        }
        let before = runnable[pct.pick(&runnable, 0, &mut rng)];
        let after = runnable[pct.pick(&runnable, 5, &mut rng)];
        assert_ne!(before, after, "change point must switch threads");
    }

    #[test]
    fn pct_depth_clamps_to_one() {
        // depth 0 builds (clamped), has no change points, never switches.
        let picks = drive(&mut Pct::new(0, 3), &[0, 1], 50);
        assert!(picks.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn round_robin_sweeps_with_quantum() {
        let picks = drive(&mut RoundRobin::new(2, 0), &[0, 1, 2], 12);
        // Quantum 2, cursor snaps from 0: each thread runs twice, in cyclic
        // tid order.
        assert_eq!(picks, vec![0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn round_robin_seed_rotates_start() {
        let a = drive(&mut RoundRobin::new(1, 0), &[0, 1, 2], 3);
        let b = drive(&mut RoundRobin::new(1, 1), &[0, 1, 2], 3);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn round_robin_skips_unrunnable_cursor() {
        let mut rr = RoundRobin::new(4, 0);
        let mut rng = SplitMix64::new(0);
        // Cursor thread 0 vanishes from the runnable set: sweep moves on.
        assert_eq!(rr.pick(&[0, 1], 0, &mut rng), 0);
        assert_eq!(rr.pick(&[1, 2], 1, &mut rng), 0); // tid 1
        assert_eq!(rr.cursor, 1);
    }

    #[test]
    fn kind_builds_matching_names() {
        for (kind, name) in [
            (StrategyKind::RandomWalk, "random"),
            (StrategyKind::Pct { depth: 3 }, "pct"),
            (StrategyKind::RoundRobin { quantum: 4 }, "rr"),
        ] {
            assert_eq!(kind.name(), name);
            assert_eq!(kind.build(0).name(), name);
        }
        assert_eq!(StrategyKind::default(), StrategyKind::RandomWalk);
    }
}
