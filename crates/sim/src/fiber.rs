//! Stackful fibers: userspace context switching for the simulator kernel.
//!
//! The kernel's historical transport gives every simulated thread a real OS
//! thread and hands the "go" token over an mpsc channel — two OS context
//! switches (plus two futex round-trips) per scheduled step, and one OS
//! thread spawn per simulated thread. At campaign scale (millions of
//! schedules) that transport is the bottleneck: a typical bundled-app run is
//! ~40 steps, so ~80 OS switches for microseconds of actual work.
//!
//! This module provides the fast transport: each simulated thread becomes a
//! *fiber* — a heap-allocated stack plus the six callee-saved registers of
//! the System-V x86-64 ABI — and the scheduler switches to it with a ~20 ns
//! userspace stack swap instead of a channel send + park. Scheduling policy
//! is untouched: the kernel still runs the exact same pick/advance loop and
//! consumes the RNG in the exact same order, so traces are byte-identical
//! across transports (asserted by `tests/backend_parity.rs`).
//!
//! Safety model (all enforced by the kernel, documented here):
//!
//! * A fiber is created, resumed, and dropped by the thread driving
//!   `Sim::run`. The `Send` impl exists only so fibers can sit inert inside
//!   the kernel's shared state; they are never *resumed* concurrently.
//! * Exactly one side runs at a time: `resume` transfers control to the
//!   fiber, which returns it via [`suspend`] or by finishing. The stack-slot
//!   pointers are therefore never accessed concurrently.
//! * Panics never cross the assembly boundary: the entry shim wraps the
//!   closure in `catch_unwind` and aborts the process if anything escapes.
//! * Stacks are pooled per OS thread and reused across runs; a fiber dropped
//!   while still suspended leaks its stack rather than unwinding foreign
//!   frames (the kernel always aborts fibers to completion first).

/// Payload value meaning "run until your next yield point".
pub(crate) const MSG_RUN: usize = 0;
/// Payload value meaning "unwind and finish" (run aborted).
pub(crate) const MSG_ABORT: usize = 1;

/// Outcome of one [`Fiber::resume`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Resume {
    /// The fiber called [`suspend`] and can be resumed again.
    Yielded,
    /// The fiber's entry closure returned; the fiber must not be resumed.
    Finished,
}

#[cfg(all(target_arch = "x86_64", unix))]
mod imp {
    use super::Resume;
    use std::alloc::{alloc, dealloc, Layout};
    use std::cell::RefCell;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Fiber stack size. Simulated threads run traced application idioms —
    /// no LP solves, no deep recursion — so this is generous; the depth
    /// canary in `tests/backend_parity.rs` keeps us honest.
    const STACK_SIZE: usize = 256 * 1024;
    /// Stacks kept per OS thread for reuse across runs.
    const POOL_CAP: usize = 64;

    // The context switch. `rdi` = save slot for the outgoing stack pointer,
    // `rsi` = incoming stack pointer, `rdx` = payload delivered to the other
    // side (it materializes there as `rax`, the return value of the `switch`
    // call that suspended it). Only the System-V callee-saved registers need
    // to travel: the compiler treats `sherlock_fiber_switch` as an ordinary
    // `extern "C"` call and already assumes caller-saved registers die.
    std::arch::global_asm!(
        ".text",
        ".globl sherlock_fiber_switch",
        ".p2align 4",
        "sherlock_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "mov rax, rdx",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        // First activation of a fiber: the crafted stack frame "returns"
        // here with rsp ≡ 8 (mod 16) — exactly like a normal function entry —
        // carrying the FiberData pointer in r12 and the first resume payload
        // in rax. Forward both to the Rust entry shim, which never returns.
        ".globl sherlock_fiber_start",
        ".p2align 4",
        "sherlock_fiber_start:",
        "mov rdi, r12",
        "mov rsi, rax",
        "sub rsp, 8",
        "call sherlock_fiber_entry",
        "ud2",
    );

    unsafe extern "C" {
        fn sherlock_fiber_switch(save: *mut *mut u8, target: *mut u8, payload: usize) -> usize;
    }

    /// Everything both sides of a switch need. Heap-allocated so the address
    /// is stable; the fiber side holds a raw pointer to it.
    struct FiberData {
        /// Consumed on first activation.
        entry: Option<Box<dyn FnOnce(usize) + Send>>,
        /// Where the scheduler's stack pointer is parked while the fiber runs.
        sched_sp: *mut u8,
        /// Where the fiber's stack pointer is parked while it is suspended.
        fiber_sp: *mut u8,
        /// Set by the entry shim right before the final switch out.
        finished: bool,
    }

    thread_local! {
        /// Stack of fibers active on this OS thread, innermost last. A stack
        /// (not a slot) so a fiber that itself drives a nested `Sim::run`
        /// keeps working.
        static ACTIVE: RefCell<Vec<*mut FiberData>> = const { RefCell::new(Vec::new()) };
        static STACK_POOL: RefCell<Vec<FiberStack>> = const { RefCell::new(Vec::new()) };
    }

    struct FiberStack {
        base: *mut u8,
        layout: Layout,
    }

    impl FiberStack {
        fn acquire() -> FiberStack {
            if let Some(s) = STACK_POOL.with(|p| p.borrow_mut().pop()) {
                return s;
            }
            let layout = Layout::from_size_align(STACK_SIZE, 16).expect("fiber stack layout");
            let base = unsafe { alloc(layout) };
            assert!(!base.is_null(), "fiber stack allocation failed");
            FiberStack { base, layout }
        }

        fn release(self) {
            STACK_POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < POOL_CAP {
                    pool.push(self);
                }
                // Else: drop — deallocates.
            });
        }

        /// One past the highest usable byte; 16-aligned because the base is
        /// 16-aligned and the size is a multiple of 16.
        fn top(&self) -> *mut u8 {
            unsafe { self.base.add(STACK_SIZE) }
        }
    }

    impl Drop for FiberStack {
        fn drop(&mut self) {
            unsafe { dealloc(self.base, self.layout) };
        }
    }

    /// Rust-side landing pad for `sherlock_fiber_start`. Must not unwind and
    /// must not return (there is no frame to return into).
    #[unsafe(no_mangle)]
    extern "C" fn sherlock_fiber_entry(data: *mut FiberData, first: usize) -> ! {
        let entry = unsafe { (*data).entry.take() }.expect("fiber activated twice");
        // The closure is responsible for its own panic handling (the kernel
        // wraps workloads in catch_unwind); this outer catch is the hard
        // backstop that keeps unwinds off the assembly boundary.
        let aborted = catch_unwind(AssertUnwindSafe(move || entry(first))).is_err();
        if aborted {
            // A panic escaped the kernel's own catch_unwind — state is
            // unknown and the scheduler would hang on bookkeeping that never
            // happened. Fail loudly.
            eprintln!("sherlock-sim: panic escaped a fiber entry; aborting");
            std::process::abort();
        }
        unsafe {
            (*data).finished = true;
            sherlock_fiber_switch(&mut (*data).fiber_sp, (*data).sched_sp, 0);
        }
        // The scheduler saw `finished` and will never switch back.
        std::process::abort();
    }

    /// A suspended simulated thread: its stack and saved registers.
    pub(crate) struct Fiber {
        data: *mut FiberData,
        stack: Option<FiberStack>,
    }

    // SAFETY: a Fiber is only *used* (resumed/suspended) on the OS thread
    // driving Sim::run for its kernel; between uses it sits inert inside the
    // kernel's Mutex-guarded state, which may be touched from other threads
    // only to move the Fiber value itself. The raw pointers inside are never
    // dereferenced off the driving thread while the fiber is live; on Drop,
    // the heap Box and stack are freed (safe from any thread) only when the
    // fiber has finished.
    unsafe impl Send for Fiber {}

    impl Fiber {
        /// Allocates a fiber whose first resume invokes `entry` with the
        /// first payload. Cheap: one pooled stack + one small heap box; the
        /// closure does not run until [`Fiber::resume`].
        pub(crate) fn new(entry: impl FnOnce(usize) + Send + 'static) -> Fiber {
            let stack = FiberStack::acquire();
            let data = Box::into_raw(Box::new(FiberData {
                entry: Some(Box::new(entry)),
                sched_sp: std::ptr::null_mut(),
                fiber_sp: std::ptr::null_mut(),
                finished: false,
            }));
            // Craft the initial frame so the restore side of
            // `sherlock_fiber_switch` (six pops + ret) lands in
            // `sherlock_fiber_start` with r12 = data. Slots from the top:
            //   top-8   padding (keeps rsp ≡ 8 mod 16 at start)
            //   top-16  "return address" -> sherlock_fiber_start
            //   top-24  rbp = 0
            //   top-32  rbx = 0
            //   top-40  r12 = data
            //   top-48  r13 = 0
            //   top-56  r14 = 0
            //   top-64  r15 = 0   <- initial fiber_sp
            unsafe {
                let top = stack.top() as *mut u64;
                let start = sherlock_fiber_start_addr();
                top.sub(1).write(0);
                top.sub(2).write(start as u64);
                top.sub(3).write(0);
                top.sub(4).write(0);
                top.sub(5).write(data as u64);
                top.sub(6).write(0);
                top.sub(7).write(0);
                top.sub(8).write(0);
                (*data).fiber_sp = top.sub(8) as *mut u8;
            }
            Fiber {
                data,
                stack: Some(stack),
            }
        }

        /// Transfers control to the fiber, delivering `payload` as the return
        /// value of the [`suspend`] that parked it (or as the entry argument
        /// on first activation). Returns when the fiber suspends or finishes.
        pub(crate) fn resume(&mut self, payload: usize) -> Resume {
            assert!(
                !unsafe { (*self.data).finished },
                "resumed a finished fiber"
            );
            ACTIVE.with(|a| a.borrow_mut().push(self.data));
            unsafe {
                sherlock_fiber_switch(&mut (*self.data).sched_sp, (*self.data).fiber_sp, payload);
            }
            ACTIVE.with(|a| {
                a.borrow_mut().pop();
            });
            if unsafe { (*self.data).finished } {
                Resume::Finished
            } else {
                Resume::Yielded
            }
        }

        /// Whether the entry closure has run to completion.
        #[allow(dead_code)] // exercised by the unit tests below
        pub(crate) fn finished(&self) -> bool {
            unsafe { (*self.data).finished }
        }
    }

    impl Drop for Fiber {
        fn drop(&mut self) {
            if unsafe { (*self.data).finished } {
                drop(unsafe { Box::from_raw(self.data) });
                if let Some(stack) = self.stack.take() {
                    stack.release();
                }
            } else if unsafe { (*self.data).entry.is_some() } {
                // Never activated: no foreign frames on the stack, safe to
                // free everything (the entry closure just drops).
                drop(unsafe { Box::from_raw(self.data) });
                if let Some(stack) = self.stack.take() {
                    stack.release();
                }
            } else {
                // Suspended mid-run. Unwinding a foreign stack from here is
                // not possible safely; leak stack + data. The kernel aborts
                // all fibers to completion before dropping them, so this is
                // a defensive branch, not a normal path.
                sherlock_obs::counter!("kernel.fiber_leaks").add(1);
                std::mem::forget(self.stack.take());
            }
        }
    }

    /// Address of the asm trampoline (taken via an extern fn declaration so
    /// the cast stays honest about provenance).
    fn sherlock_fiber_start_addr() -> usize {
        unsafe extern "C" {
            fn sherlock_fiber_start();
        }
        sherlock_fiber_start as *const () as usize
    }

    /// Parks the innermost active fiber and returns control to whoever
    /// resumed it; the next `resume(payload)` returns that payload here.
    pub(crate) fn suspend(payload: usize) -> usize {
        let data = ACTIVE.with(|a| {
            *a.borrow()
                .last()
                .expect("fiber::suspend called outside a fiber")
        });
        unsafe { sherlock_fiber_switch(&mut (*data).fiber_sp, (*data).sched_sp, payload) }
    }

    /// Whether the calling code is executing on a fiber stack.
    #[allow(dead_code)] // exercised by the unit tests below
    pub(crate) fn in_fiber() -> bool {
        ACTIVE.with(|a| !a.borrow().is_empty())
    }

    pub(crate) const SUPPORTED: bool = true;
}

#[cfg(not(all(target_arch = "x86_64", unix)))]
mod imp {
    //! Stub for platforms without the assembly switch: `is_supported()` is
    //! false, the kernel falls back to the OS-thread transport, and these
    //! items exist only so the kernel compiles unchanged.
    use super::Resume;

    pub(crate) struct Fiber;

    impl Fiber {
        pub(crate) fn new(_entry: impl FnOnce(usize) + Send + 'static) -> Fiber {
            unreachable!("fiber backend used on an unsupported platform")
        }
        pub(crate) fn resume(&mut self, _payload: usize) -> Resume {
            unreachable!("fiber backend used on an unsupported platform")
        }
        pub(crate) fn finished(&self) -> bool {
            true
        }
    }

    pub(crate) fn suspend(_payload: usize) -> usize {
        unreachable!("fiber backend used on an unsupported platform")
    }

    #[allow(dead_code)]
    pub(crate) fn in_fiber() -> bool {
        false
    }

    pub(crate) const SUPPORTED: bool = false;
}

#[allow(unused_imports)] // in_fiber is test-only on some configurations
pub(crate) use imp::{in_fiber, suspend, Fiber};

/// Whether the fiber transport is available on this target.
pub(crate) fn is_supported() -> bool {
    imp::SUPPORTED
}

#[cfg(all(test, target_arch = "x86_64", unix))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fiber_runs_to_completion() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let mut f = Fiber::new(move |first| {
            assert_eq!(first, 7);
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(f.resume(7), Resume::Finished);
        assert!(f.finished());
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn suspend_round_trips_payloads() {
        let log = Arc::new(MutexLog::default());
        let l = Arc::clone(&log);
        let mut f = Fiber::new(move |first| {
            l.push(first);
            let next = suspend(100);
            l.push(next);
            let last = suspend(200);
            l.push(last);
        });
        assert_eq!(f.resume(1), Resume::Yielded);
        assert_eq!(f.resume(2), Resume::Yielded);
        assert_eq!(f.resume(3), Resume::Finished);
        assert_eq!(log.take(), vec![1, 2, 3]);
    }

    #[test]
    fn many_sequential_fibers_reuse_stacks() {
        for i in 0..1000 {
            let mut f = Fiber::new(move |first| {
                assert_eq!(first, i);
                let _ = suspend(i);
            });
            assert_eq!(f.resume(i), Resume::Yielded);
            assert_eq!(f.resume(0), Resume::Finished);
        }
    }

    #[test]
    fn nested_fibers_interleave() {
        let mut outer = Fiber::new(|_| {
            let mut inner = Fiber::new(|first| {
                assert_eq!(first, 10);
                let v = suspend(11);
                assert_eq!(v, 12);
            });
            assert!(in_fiber());
            assert_eq!(inner.resume(10), Resume::Yielded);
            let from_sched = suspend(1);
            assert_eq!(from_sched, 2);
            assert_eq!(inner.resume(12), Resume::Finished);
        });
        assert!(!in_fiber());
        assert_eq!(outer.resume(0), Resume::Yielded);
        assert_eq!(outer.resume(2), Resume::Finished);
        assert!(!in_fiber());
    }

    #[test]
    fn never_activated_fiber_drops_cleanly() {
        let f = Fiber::new(|_| panic!("must not run"));
        drop(f);
    }

    #[test]
    fn callee_saved_registers_survive_switches() {
        // Burn through values that the compiler will park in callee-saved
        // registers across the suspend, on both sides.
        let mut f = Fiber::new(|first| {
            let mut acc = first;
            for i in 0..64usize {
                acc = acc.wrapping_mul(31).wrapping_add(i);
                acc = suspend(acc);
            }
        });
        let mut expect = 5usize;
        let mut r = f.resume(5);
        let mut i = 0usize;
        while r == Resume::Yielded {
            expect = expect.wrapping_mul(31).wrapping_add(i);
            i += 1;
            // The fiber suspended with `expect`; send it right back.
            r = f.resume(expect);
        }
        assert_eq!(i, 64);
    }

    #[derive(Default)]
    struct MutexLog(std::sync::Mutex<Vec<usize>>);
    impl MutexLog {
        fn push(&self, v: usize) {
            self.0.lock().unwrap().push(v);
        }
        fn take(&self) -> Vec<usize> {
            std::mem::take(&mut self.0.lock().unwrap())
        }
    }
}
