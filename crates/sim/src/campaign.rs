//! Novelty-guided streaming schedule campaigns.
//!
//! The [`Explorer`](crate::Explorer) answers "run this workload under N
//! seeds of one strategy". A [`Campaign`] answers the question that matters
//! at millions of schedules: *which* strategy should get the next seed? It
//! runs a bandit over (strategy, depth) **arms** — e.g. random walk, PCT at
//! several depths, round-robin — and steers the run budget toward arms whose
//! recent traces were *fresh* (new to the dedup filter), because an arm that
//! keeps rediscovering old interleavings is wasted budget.
//!
//! # Determinism
//!
//! Everything that influences results is integer arithmetic over committed
//! history, so a campaign is a pure function of `(workload, config)`:
//!
//! * runs are dispatched in **batches**; arm quotas for a batch are computed
//!   from integer weights by largest-remainder apportionment (no floats, no
//!   RNG, ties broken by arm index);
//! * run `r` (globally, across the whole campaign) always uses seed
//!   `base_seed + r` regardless of which worker executes it;
//! * workers race, but a reorder buffer commits reports in run order, so
//!   filter state, arm credit, and the [`CampaignResult::distinct_digest`]
//!   are identical for any worker count. Wall-clock timing is measured but
//!   never fed back into scheduling.
//!
//! Replaying a campaign from the same `(config, seed)` therefore yields the
//! identical distinct-hash set — the property the determinism tests and the
//! serve-side `explore` verb rely on.
//!
//! # Bandit
//!
//! Per arm the campaign keeps decayed recency counters `(recent_runs,
//! recent_fresh)`; an arm's weight is the fixed-point smoothed freshness
//! rate `(recent_fresh + 1) / (recent_runs + 2)`, so cold arms drift back
//! toward ½ and keep getting probe quota (no arm is ever starved:
//! smoothing guarantees every arm a nonzero weight). After each batch both
//! counters are halved (integer EMA with a one-batch half-life).
//!
//! Memory is O(filter + caps): per-run summaries and retained distinct
//! reports default to small caps, and the distinct-hash list is kept only
//! when [`CampaignConfig::retain_hashes`] asks for it — otherwise a running
//! FNV-1a digest stands in for the set.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sherlock_obs::{counter, counter_named, histogram};

use crate::config::SimConfig;
use crate::explore::ScheduleSummary;
use crate::filter::ScheduleFilter;
use crate::kernel::{Outcome, RunReport, Sim};
use crate::strategy::StrategyKind;

/// Fixed-point scale for arm weights.
const WEIGHT_SCALE: u64 = 1024;

/// The default arm set: one random-walk arm, PCT at three depths, and a
/// round-robin arm (quantum 2) as the systematic-coverage baseline.
pub fn default_arms() -> Vec<StrategyKind> {
    vec![
        StrategyKind::RandomWalk,
        StrategyKind::Pct { depth: 2 },
        StrategyKind::Pct { depth: 3 },
        StrategyKind::Pct { depth: 5 },
        StrategyKind::RoundRobin { quantum: 2 },
    ]
}

/// Stable label for an arm, used in per-arm metric names and progress
/// frames (`random`, `pct_d3`, `rr_q2`).
pub fn arm_label(s: StrategyKind) -> String {
    match s {
        StrategyKind::RandomWalk => "random".to_string(),
        StrategyKind::Pct { depth } => format!("pct_d{depth}"),
        StrategyKind::RoundRobin { quantum } => format!("rr_q{quantum}"),
    }
}

/// Configuration of one streaming campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Total schedules to run.
    pub max_schedules: u64,
    /// Seed of global run `r` is `base_seed + r` (wrapping).
    pub base_seed: u64,
    /// Worker OS threads; 0 means `std::thread::available_parallelism`.
    pub jobs: usize,
    /// Runs per bandit batch (quota recomputation interval).
    pub batch: u64,
    /// The (strategy, depth) arms; must be non-empty (defaults via
    /// [`default_arms`]).
    pub arms: Vec<StrategyKind>,
    /// log2 of dedup-filter bits; `None` auto-sizes from `max_schedules`.
    pub filter_bits: Option<u32>,
    /// Per-run summaries retained (first N). Campaigns default to 0 —
    /// summaries are an Explorer-compat affordance, not a streaming one.
    pub summary_cap: usize,
    /// Distinct [`RunReport`]s retained (first N in first-seen order).
    pub report_cap: usize,
    /// Keep every distinct hash in [`CampaignResult::distinct_hashes`].
    /// Costs 8 bytes/distinct; off by default (the digest alone identifies
    /// the set for replay comparison).
    pub retain_hashes: bool,
    /// Template for each run's [`SimConfig`] (seed/strategy overwritten).
    pub sim: SimConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_schedules: 1024,
            base_seed: 0,
            jobs: 0,
            batch: 64,
            arms: default_arms(),
            filter_bits: None,
            summary_cap: 0,
            report_cap: 16,
            retain_hashes: false,
            sim: SimConfig::default(),
        }
    }
}

/// Live per-arm accounting.
#[derive(Clone, Debug)]
struct ArmState {
    strategy: StrategyKind,
    label: String,
    runs: u64,
    fresh: u64,
    recent_runs: u64,
    recent_fresh: u64,
}

impl ArmState {
    /// Fixed-point smoothed freshness rate `(recent_fresh+1)/(recent_runs+2)`
    /// scaled by [`WEIGHT_SCALE`].
    fn weight(&self) -> u64 {
        (self.recent_fresh + 1) * WEIGHT_SCALE / (self.recent_runs + 2)
    }
}

/// Final per-arm report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArmReport {
    /// Stable arm label (see [`arm_label`]).
    pub label: String,
    /// The arm's strategy.
    pub strategy: StrategyKind,
    /// Runs the bandit allotted to this arm.
    pub runs: u64,
    /// Runs whose trace hash was new to the filter.
    pub fresh: u64,
}

/// A per-batch progress frame, handed to the campaign's progress callback
/// (and serialized by serve's `explore` verb).
#[derive(Clone, Debug)]
pub struct CampaignProgress {
    /// Runs committed so far.
    pub runs: u64,
    /// Total schedules the campaign will run.
    pub max_schedules: u64,
    /// Distinct schedules so far (filter-admitted).
    pub distinct: u64,
    /// Duplicate (or false-positive) schedules so far.
    pub dedup_hits: u64,
    /// Schedules per second over the last batch (wall clock; informational
    /// only — never feeds back into scheduling).
    pub sched_per_sec: f64,
    /// Filter occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// Per-arm `(label, runs, fresh, weight)` at the end of the batch, in
    /// arm order; `weight` is the fixed-point bandit weight that will shape
    /// the *next* batch.
    pub arms: Vec<(String, u64, u64, u64)>,
}

/// The result of one streaming campaign.
#[derive(Debug, Default)]
pub struct CampaignResult {
    /// Runs executed.
    pub runs: u64,
    /// Distinct schedules (filter-admitted).
    pub distinct: u64,
    /// Runs whose hash the filter had already seen.
    pub dedup_hits: u64,
    /// Distinct schedules that deadlocked.
    pub deadlocks: u64,
    /// Distinct schedules with a panicking thread.
    pub panics: u64,
    /// FNV-1a digest of the distinct hashes in commit order — two campaigns
    /// discovered the same distinct sequence iff digests match.
    pub distinct_digest: u64,
    /// Every distinct hash in commit order (only when
    /// [`CampaignConfig::retain_hashes`] was set).
    pub distinct_hashes: Vec<u64>,
    /// First [`CampaignConfig::report_cap`] distinct reports.
    pub reports: Vec<RunReport>,
    /// First [`CampaignConfig::summary_cap`] per-run summaries.
    pub summaries: Vec<ScheduleSummary>,
    /// Per-arm totals, in arm order.
    pub arms: Vec<ArmReport>,
    /// Wall-clock duration of the campaign.
    pub elapsed: Duration,
    /// Overall schedules per second (informational).
    pub sched_per_sec: f64,
    /// Dedup filter footprint in bytes.
    pub filter_bytes: usize,
    /// Final filter occupancy in `[0, 1]`.
    pub filter_occupancy: f64,
    /// Measured false-positive bound at final occupancy.
    pub est_fp_rate: f64,
}

/// Largest-remainder apportionment: splits `total` into integer quotas
/// proportional to `weights` (each quota sum equals `total` exactly).
/// Deterministic: remainder ties go to the lower index.
fn apportion(weights: &[u64], total: u64) -> Vec<u64> {
    let wsum: u64 = weights.iter().sum::<u64>().max(1);
    let mut quotas: Vec<u64> = weights.iter().map(|&w| total * w / wsum).collect();
    let assigned: u64 = quotas.iter().sum();
    // Distribute the leftover to the largest fractional remainders.
    let mut rem: Vec<(u64, usize)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (total * w % wsum, i))
        .collect();
    rem.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for k in 0..(total - assigned) as usize {
        quotas[rem[k % rem.len()].1] += 1;
    }
    quotas
}

/// FNV-1a fold of one 64-bit value into a running digest.
fn fnv1a64(digest: u64, value: u64) -> u64 {
    let mut d = digest;
    for byte in value.to_le_bytes() {
        d ^= byte as u64;
        d = d.wrapping_mul(0x0000_0100_0000_01b3);
    }
    d
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Novelty-guided streaming campaign driver.
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign; panics if `arms` is empty.
    pub fn new(config: CampaignConfig) -> Self {
        assert!(!config.arms.is_empty(), "campaign needs at least one arm");
        Campaign { config }
    }

    /// Runs the campaign without progress reporting.
    pub fn run(&self, workload: Arc<dyn Fn() + Send + Sync>) -> CampaignResult {
        self.run_with_progress(workload, |_| {})
    }

    /// Runs the campaign, invoking `on_batch` after every committed batch.
    pub fn run_with_progress(
        &self,
        workload: Arc<dyn Fn() + Send + Sync>,
        mut on_batch: impl FnMut(&CampaignProgress),
    ) -> CampaignResult {
        let _s = sherlock_obs::span("explore.campaign");
        let cfg = &self.config;
        let start = Instant::now();
        let batch_size = cfg.batch.max(1);
        let jobs = if cfg.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            cfg.jobs
        };
        let jobs = jobs.max(1);

        let mut filter = match cfg.filter_bits {
            Some(bits) => ScheduleFilter::with_log2_bits(bits),
            None => ScheduleFilter::for_expected(cfg.max_schedules),
        };
        let mut arms: Vec<ArmState> = cfg
            .arms
            .iter()
            .map(|&strategy| ArmState {
                strategy,
                label: arm_label(strategy),
                runs: 0,
                fresh: 0,
                recent_runs: 0,
                recent_fresh: 0,
            })
            .collect();
        let arm_counters: Vec<(
            &'static sherlock_obs::Counter,
            &'static sherlock_obs::Counter,
        )> = arms
            .iter()
            .map(|a| {
                (
                    counter_named(&format!("explore.arm.{}.selected", a.label)),
                    counter_named(&format!("explore.arm.{}.fresh", a.label)),
                )
            })
            .collect();

        let mut result = CampaignResult {
            distinct_digest: FNV_OFFSET,
            ..CampaignResult::default()
        };
        let mut global_run: u64 = 0;

        while global_run < cfg.max_schedules {
            let b = batch_size.min(cfg.max_schedules - global_run);
            // Deterministic arm plan for this batch: quotas from integer
            // weights, filled in arm order (run g..g+q0 is arm 0, etc.).
            let weights: Vec<u64> = arms.iter().map(ArmState::weight).collect();
            let quotas = apportion(&weights, b);
            let mut plan: Vec<usize> = Vec::with_capacity(b as usize);
            for (arm_idx, &q) in quotas.iter().enumerate() {
                plan.extend(std::iter::repeat_n(arm_idx, q as usize));
                arm_counters[arm_idx].0.add(q);
                counter!("explore.arm_selections").add(q);
            }

            let batch_start = Instant::now();
            let reports = self.run_batch(&workload, global_run, &plan, jobs);

            // Commit in run order: filter, arm credit, digest, retention.
            for (offset, report) in reports.into_iter().enumerate() {
                let run_index = global_run + offset as u64;
                let arm_idx = plan[offset];
                let hash = report.trace.stable_hash();
                let is_new = filter.insert(hash);
                let arm = &mut arms[arm_idx];
                arm.runs += 1;
                arm.recent_runs += 1;
                result.runs += 1;
                if result.summaries.len() < cfg.summary_cap {
                    result.summaries.push(ScheduleSummary {
                        run_index,
                        seed: cfg.base_seed.wrapping_add(run_index),
                        trace_hash: hash,
                        steps: report.steps,
                        events: report.trace.len(),
                        deadlocked: matches!(report.outcome, Outcome::Deadlock(_)),
                        panicked: !report.panics.is_empty(),
                    });
                }
                if is_new {
                    arm.fresh += 1;
                    arm.recent_fresh += 1;
                    arm_counters[arm_idx].1.incr();
                    result.distinct += 1;
                    result.distinct_digest = fnv1a64(result.distinct_digest, hash);
                    if cfg.retain_hashes {
                        result.distinct_hashes.push(hash);
                    }
                    if matches!(report.outcome, Outcome::Deadlock(_)) {
                        result.deadlocks += 1;
                    }
                    if !report.panics.is_empty() {
                        result.panics += 1;
                    }
                    if result.reports.len() < cfg.report_cap {
                        result.reports.push(report);
                    }
                } else {
                    result.dedup_hits += 1;
                }
            }
            global_run += b;

            // Integer EMA with one-batch half-life: recent novelty dominates,
            // but history never hard-resets.
            for arm in &mut arms {
                arm.recent_runs /= 2;
                arm.recent_fresh /= 2;
            }

            let batch_secs = batch_start.elapsed().as_secs_f64();
            let rate = if batch_secs > 0.0 {
                b as f64 / batch_secs
            } else {
                0.0
            };
            counter!("explore.dedup_hits").add(0); // ensure series exists even pre-dup
            histogram!("explore.sched_per_sec").observe(rate as u64);
            histogram!("explore.filter_occupancy_ppm")
                .observe((filter.occupancy() * 1_000_000.0) as u64);

            on_batch(&CampaignProgress {
                runs: result.runs,
                max_schedules: cfg.max_schedules,
                distinct: result.distinct,
                dedup_hits: result.dedup_hits,
                sched_per_sec: rate,
                occupancy: filter.occupancy(),
                arms: arms
                    .iter()
                    .map(|a| (a.label.clone(), a.runs, a.fresh, a.weight()))
                    .collect(),
            });
        }

        counter!("explore.runs").add(result.runs);
        counter!("explore.distinct_traces").add(result.distinct);
        counter!("explore.duplicate_traces").add(result.dedup_hits);
        counter!("explore.dedup_hits").add(result.dedup_hits);
        counter!("explore.campaigns").incr();

        result.elapsed = start.elapsed();
        let total_secs = result.elapsed.as_secs_f64();
        result.sched_per_sec = if total_secs > 0.0 {
            result.runs as f64 / total_secs
        } else {
            0.0
        };
        result.filter_bytes = filter.bytes();
        result.filter_occupancy = filter.occupancy();
        result.est_fp_rate = filter.est_fp_rate();
        result.arms = arms
            .into_iter()
            .map(|a| ArmReport {
                label: a.label,
                strategy: a.strategy,
                runs: a.runs,
                fresh: a.fresh,
            })
            .collect();
        result
    }

    /// Executes one batch: run `plan.len()` schedules at global indices
    /// `first..first+len`, returning reports ordered by batch offset.
    /// Worker count changes wall-clock only — never results.
    fn run_batch(
        &self,
        workload: &Arc<dyn Fn() + Send + Sync>,
        first: u64,
        plan: &[usize],
        jobs: usize,
    ) -> Vec<RunReport> {
        let cfg = &self.config;
        let b = plan.len();
        let run_one = |offset: usize| -> RunReport {
            let mut sim_cfg = cfg.sim.clone();
            sim_cfg.seed = cfg.base_seed.wrapping_add(first + offset as u64);
            sim_cfg.strategy = cfg.arms[plan[offset]];
            let w = Arc::clone(workload);
            Sim::new(sim_cfg).run(move || w())
        };

        if jobs == 1 || b == 1 {
            return (0..b).map(run_one).collect();
        }

        let next = AtomicU64::new(0);
        let (tx, rx) = channel::<(usize, RunReport)>();
        let mut slots: Vec<Option<RunReport>> = (0..b).map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(b) {
                let tx = tx.clone();
                let next = &next;
                let run_one = &run_one;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= b {
                        break;
                    }
                    if tx.send((i, run_one(i))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, report) in rx {
                slots[i] = Some(report);
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("worker delivered every batch slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::TracedVar;

    fn workload() -> Arc<dyn Fn() + Send + Sync> {
        Arc::new(|| {
            let v = TracedVar::new("Campaign", "x", 0u32);
            let v2 = v.clone();
            let h = crate::api::spawn("writer", move || {
                v2.set(1);
                let _ = v2.get();
            });
            v.set(2);
            let _ = v.get();
            h.join();
        })
    }

    fn config(max: u64, jobs: usize) -> CampaignConfig {
        let mut cfg = CampaignConfig::default();
        cfg.max_schedules = max;
        cfg.jobs = jobs;
        cfg.batch = 16;
        cfg.base_seed = 7;
        cfg.retain_hashes = true;
        cfg
    }

    #[test]
    fn apportionment_is_exact_and_proportional() {
        assert_eq!(apportion(&[1, 1, 1, 1], 8), vec![2, 2, 2, 2]);
        assert_eq!(apportion(&[3, 1], 8), vec![6, 2]);
        // Remainders go to the largest fractional parts, ties to low index.
        assert_eq!(apportion(&[1, 1, 1], 8).iter().sum::<u64>(), 8);
        assert_eq!(apportion(&[0, 0], 5).iter().sum::<u64>(), 5);
        assert_eq!(apportion(&[5], 3), vec![3]);
        // Heavier arm always gets at least its floor.
        let q = apportion(&[512, 256, 256], 10);
        assert_eq!(q.iter().sum::<u64>(), 10);
        assert!(q[0] >= q[1] && q[0] >= q[2]);
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let serial = Campaign::new(config(64, 1)).run(workload());
        let parallel = Campaign::new(config(64, 4)).run(workload());
        assert_eq!(serial.runs, 64);
        assert_eq!(serial.distinct_hashes, parallel.distinct_hashes);
        assert_eq!(serial.distinct_digest, parallel.distinct_digest);
        assert_eq!(serial.distinct, parallel.distinct);
        assert_eq!(serial.dedup_hits, parallel.dedup_hits);
        let arm_stats = |r: &CampaignResult| -> Vec<(String, u64, u64)> {
            r.arms
                .iter()
                .map(|a| (a.label.clone(), a.runs, a.fresh))
                .collect()
        };
        assert_eq!(arm_stats(&serial), arm_stats(&parallel));
    }

    #[test]
    fn replay_from_same_config_is_identical() {
        let a = Campaign::new(config(48, 2)).run(workload());
        let b = Campaign::new(config(48, 2)).run(workload());
        assert_eq!(a.distinct_digest, b.distinct_digest);
        assert_eq!(a.distinct_hashes, b.distinct_hashes);
    }

    #[test]
    fn every_arm_keeps_probe_quota() {
        // Smoothing means no arm's weight ever reaches zero, so over a few
        // batches every arm runs at least once even if it finds nothing new.
        let result = Campaign::new(config(80, 2)).run(workload());
        for arm in &result.arms {
            assert!(arm.runs > 0, "arm {} starved", arm.label);
        }
        assert_eq!(result.arms.iter().map(|a| a.runs).sum::<u64>(), 80);
        assert_eq!(
            result.arms.iter().map(|a| a.fresh).sum::<u64>(),
            result.distinct
        );
    }

    #[test]
    fn retention_and_filter_stats_are_bounded() {
        let mut cfg = config(64, 2);
        cfg.report_cap = 3;
        cfg.summary_cap = 5;
        cfg.retain_hashes = false;
        let result = Campaign::new(cfg).run(workload());
        assert_eq!(result.runs, 64);
        assert!(result.reports.len() <= 3);
        assert_eq!(result.summaries.len(), 5);
        assert!(result.distinct_hashes.is_empty(), "hashes not retained");
        assert!(result.distinct > 0);
        assert!(result.filter_bytes > 0);
        assert!(result.filter_occupancy > 0.0);
    }

    #[test]
    fn progress_frames_cover_every_batch() {
        let mut frames: Vec<(u64, u64)> = Vec::new();
        let result = Campaign::new(config(40, 1)).run_with_progress(workload(), |p| {
            frames.push((p.runs, p.distinct));
            assert_eq!(p.max_schedules, 40);
            assert_eq!(p.arms.len(), default_arms().len());
        });
        // 40 runs at batch 16 → frames at 16, 32, 40.
        assert_eq!(
            frames.iter().map(|f| f.0).collect::<Vec<_>>(),
            vec![16, 32, 40]
        );
        assert_eq!(frames.last().unwrap().1, result.distinct);
    }
}
