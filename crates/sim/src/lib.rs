//! Deterministic virtual-time concurrency simulator for SherLock-rs.
//!
//! The paper's Observer instruments C# binaries (Mono.Cecil) and runs their
//! unit tests on a real OS scheduler; this crate is the substitution that
//! preserves what the inference pipeline actually consumes: timestamped
//! traces of field accesses and method entry/exit events, blocking-induced
//! duration variance, and the ability to inject delays before chosen
//! operations.
//!
//! * [`Sim`] — a cooperative scheduler: real OS threads, but exactly one
//!   executes at a time; a seeded RNG picks interleavings and a virtual clock
//!   stamps events, so every run is a deterministic function of the workload
//!   and [`SimConfig`].
//! * [`api`] — spawning, sleeping, and the raw tracing hooks.
//! * [`prims`] — traced shims for the synchronization idioms the paper's
//!   benchmark suite exercises: monitors, fork-join threads, tasks and
//!   continuations, thread pools, events/semaphores/reader-writer locks,
//!   dataflow blocks, static constructors, finalizers, `GetOrAdd` delegates,
//!   thread-unsafe collections, and a unit-test framework shim.
//!
//! # Example
//!
//! ```
//! use sherlock_sim::{Sim, SimConfig};
//! use sherlock_sim::prims::TracedVar;
//! use sherlock_trace::Time;
//!
//! let report = Sim::new(SimConfig::with_seed(1)).run(|| {
//!     let flag = TracedVar::new("Demo", "ready", false);
//!     let f2 = flag.clone();
//!     let h = sherlock_sim::api::spawn("waiter", move || {
//!         f2.spin_until(Time::from_micros(100), |v| v);
//!     });
//!     flag.set(true);
//!     h.join();
//! });
//! assert!(report.is_clean());
//! assert!(!report.trace.is_empty());
//! ```

pub mod api;
pub mod campaign;
mod config;
pub mod explore;
mod fiber;
pub mod filter;
mod hook;
mod kernel;
pub mod prims;
pub mod rng;
pub mod strategy;
pub mod testutil;

pub use campaign::{
    arm_label, default_arms, ArmReport, Campaign, CampaignConfig, CampaignProgress, CampaignResult,
};
pub use config::{DelayPlan, InstrumentConfig, SimBackend, SimConfig};
pub use explore::{ExploreConfig, ExploreResult, Explorer, ScheduleSummary};
pub use hook::install_sim_panic_hook;
pub use kernel::{Outcome, PanicReport, RunReport, Sim};
pub use strategy::{Strategy, StrategyKind};
