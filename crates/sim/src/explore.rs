//! Multi-seed schedule exploration.
//!
//! One simulated run replays exactly one interleaving per `(workload, seed)`;
//! the [`Explorer`] fans the same workload out across many seeds — one
//! kernel per seed, spread over a pool of OS worker threads — and
//! deduplicates the outcomes by [`Trace::stable_hash`], so "how many
//! *distinct* schedules did we actually cover" is a first-class number
//! rather than a guess.
//!
//! Results are **streamed**, not accumulated: a collector commits each run
//! in run-index order the moment its predecessors have arrived (a reorder
//! buffer bounded by worker skew), dedup goes through a compact
//! [`ScheduleFilter`] instead of an exact set, and both per-run summaries
//! and retained distinct reports honor configurable caps — so memory is
//! O(filter + caps), independent of campaign length. The filter trades
//! exactness for space: a false positive makes a genuinely new schedule
//! count as a duplicate, at the measured rate reported in
//! [`ExploreResult::est_fp_rate`] (~1e-4 at default sizing).
//!
//! Determinism is preserved end-to-end: every run's seed is a pure function
//! of `(base_seed, run index)`, and in-order commit makes the distinct-hash
//! sequence independent of worker count and OS scheduling of the workers
//! themselves.
//!
//! For novelty-guided campaigns over multiple strategy arms, see
//! [`crate::campaign`].
//!
//! [`Trace::stable_hash`]: sherlock_trace::Trace::stable_hash

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;

use sherlock_obs::counter;

use crate::config::SimConfig;
use crate::filter::ScheduleFilter;
use crate::kernel::{Outcome, RunReport, Sim};
use crate::strategy::StrategyKind;

/// Configuration of one exploration campaign.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Number of schedules to run.
    pub runs: u64,
    /// Seed of run `i` is `base_seed + i` (wrapping).
    pub base_seed: u64,
    /// Scheduling strategy for every run.
    pub strategy: StrategyKind,
    /// Worker OS threads; 0 means `std::thread::available_parallelism`.
    pub jobs: usize,
    /// Per-run summaries retained (first N in run order); `None` keeps all —
    /// the historical behavior, fine for small runs, unbounded for campaigns.
    pub summary_cap: Option<usize>,
    /// Distinct [`RunReport`]s retained (first N in first-seen order);
    /// `None` keeps all. Hash-only exploration (`Some(0)`) still reports
    /// every distinct hash via [`ExploreResult::distinct_hashes`].
    pub report_cap: Option<usize>,
    /// log2 of the dedup filter's bit count; `None` auto-sizes from `runs`
    /// at ~16 bits/run.
    pub filter_bits: Option<u32>,
    /// Template for each run's [`SimConfig`] (its `seed` and `strategy`
    /// fields are overwritten per run).
    pub sim: SimConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            runs: 64,
            base_seed: 0,
            strategy: StrategyKind::RandomWalk,
            jobs: 0,
            summary_cap: None,
            report_cap: None,
            filter_bits: None,
            sim: SimConfig::default(),
        }
    }
}

/// Per-run summary kept for explored schedules (distinct or not), subject to
/// [`ExploreConfig::summary_cap`].
#[derive(Clone, Debug)]
pub struct ScheduleSummary {
    /// Index of the run within the campaign.
    pub run_index: u64,
    /// The scheduling seed the run used.
    pub seed: u64,
    /// [`Trace::stable_hash`] of the run's trace.
    ///
    /// [`Trace::stable_hash`]: sherlock_trace::Trace::stable_hash
    pub trace_hash: u64,
    /// Scheduled steps the run executed.
    pub steps: u64,
    /// Events in the run's trace.
    pub events: usize,
    /// Whether the run deadlocked.
    pub deadlocked: bool,
    /// Whether any simulated thread panicked.
    pub panicked: bool,
}

/// The result of one exploration campaign.
#[derive(Debug, Default)]
pub struct ExploreResult {
    /// Per-run summaries, in run order (first `summary_cap` runs).
    pub summaries: Vec<ScheduleSummary>,
    /// The first [`RunReport`] per distinct trace hash, in first-seen order
    /// (first `report_cap` of them).
    pub distinct: Vec<RunReport>,
    /// Every distinct trace hash, in first-seen order — complete even when
    /// report/summary retention is capped.
    pub distinct_hashes: Vec<u64>,
    /// Runs executed.
    pub runs: u64,
    /// Runs whose trace hash the filter had already seen.
    pub dedup_hits: u64,
    /// Distinct schedules that deadlocked.
    pub deadlocks: u64,
    /// Distinct schedules with at least one panicking thread.
    pub panics: u64,
    /// Dedup filter footprint in bytes.
    pub filter_bytes: usize,
    /// Fraction of filter bits set at the end of the campaign.
    pub filter_occupancy: f64,
    /// Measured false-positive bound at final occupancy (the rate at which
    /// genuinely new schedules were miscounted as duplicates, worst case).
    pub est_fp_rate: f64,
}

impl ExploreResult {
    /// Number of runs executed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Trace hashes of the distinct schedules, in first-seen order.
    pub fn distinct_hashes(&self) -> Vec<u64> {
        self.distinct_hashes.clone()
    }

    /// Distinct schedules that deadlocked.
    pub fn deadlocks(&self) -> usize {
        self.deadlocks as usize
    }

    /// Distinct schedules with at least one panicking thread.
    pub fn panics(&self) -> usize {
        self.panics as usize
    }

    fn commit(
        &mut self,
        cfg: &ExploreConfig,
        filter: &mut ScheduleFilter,
        i: u64,
        report: RunReport,
    ) {
        let hash = report.trace.stable_hash();
        let is_new = filter.insert(hash);
        self.runs += 1;
        if cfg.summary_cap.is_none_or(|cap| self.summaries.len() < cap) {
            self.summaries.push(ScheduleSummary {
                run_index: i,
                seed: cfg.base_seed.wrapping_add(i),
                trace_hash: hash,
                steps: report.steps,
                events: report.trace.len(),
                deadlocked: matches!(report.outcome, Outcome::Deadlock(_)),
                panicked: !report.panics.is_empty(),
            });
        }
        if is_new {
            self.distinct_hashes.push(hash);
            if matches!(report.outcome, Outcome::Deadlock(_)) {
                self.deadlocks += 1;
            }
            if !report.panics.is_empty() {
                self.panics += 1;
            }
            if cfg.report_cap.is_none_or(|cap| self.distinct.len() < cap) {
                self.distinct.push(report);
            }
        } else {
            self.dedup_hits += 1;
        }
    }
}

/// Fans a workload out across seeds and collects deduplicated schedules.
pub struct Explorer {
    config: ExploreConfig,
}

impl Explorer {
    /// Creates an explorer for the given campaign configuration.
    pub fn new(config: ExploreConfig) -> Self {
        Explorer { config }
    }

    /// Runs the campaign: `runs` kernels at seeds `base_seed..base_seed+runs`
    /// over `jobs` OS worker threads, each executing `workload` under its own
    /// [`Sim`]. The workload closure is invoked once per run on that run's
    /// root simulated thread.
    pub fn run(&self, workload: Arc<dyn Fn() + Send + Sync>) -> ExploreResult {
        let _s = sherlock_obs::span("explore.campaign");
        let cfg = &self.config;
        let runs = cfg.runs;
        let runs_counter = match cfg.strategy.name() {
            "pct" => counter!("explore.pct.runs"),
            "rr" => counter!("explore.rr.runs"),
            _ => counter!("explore.random.runs"),
        };
        let jobs = if cfg.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            cfg.jobs
        };
        let jobs = jobs.min(runs.max(1) as usize).max(1);

        let mut filter = match cfg.filter_bits {
            Some(bits) => ScheduleFilter::with_log2_bits(bits),
            None => ScheduleFilter::for_expected(runs),
        };
        let mut result = ExploreResult::default();

        let next = AtomicU64::new(0);
        let (tx, rx) = channel::<(u64, RunReport)>();

        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                let workload = Arc::clone(&workload);
                let sim_template = cfg.sim.clone();
                let (base_seed, strategy) = (cfg.base_seed, cfg.strategy);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= runs {
                        break;
                    }
                    let mut sim_cfg = sim_template.clone();
                    sim_cfg.seed = base_seed.wrapping_add(i);
                    sim_cfg.strategy = strategy;
                    let w = Arc::clone(&workload);
                    let report = Sim::new(sim_cfg).run(move || w());
                    if tx.send((i, report)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Streaming in-order commit: workers race to the channel, but
            // every run is folded into the result in run-index order, so the
            // distinct set is a deterministic function of (workload, config)
            // and memory stays bounded by worker skew rather than run count.
            let mut pending: BTreeMap<u64, RunReport> = BTreeMap::new();
            let mut next_commit: u64 = 0;
            for (i, report) in rx {
                pending.insert(i, report);
                while let Some(ready) = pending.remove(&next_commit) {
                    result.commit(cfg, &mut filter, next_commit, ready);
                    next_commit += 1;
                }
            }
        });

        result.filter_bytes = filter.bytes();
        result.filter_occupancy = filter.occupancy();
        result.est_fp_rate = filter.est_fp_rate();

        runs_counter.add(result.runs);
        counter!("explore.runs").add(result.runs);
        counter!("explore.distinct_traces").add(result.distinct_hashes.len() as u64);
        counter!("explore.duplicate_traces").add(result.dedup_hits);
        counter!("explore.dedup_hits").add(result.dedup_hits);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::TracedVar;
    use sherlock_trace::Time;

    fn workload() -> Arc<dyn Fn() + Send + Sync> {
        Arc::new(|| {
            let v = TracedVar::new("Explore", "x", 0u32);
            let v2 = v.clone();
            let h = crate::api::spawn("writer", move || v2.set(1));
            v.set(2);
            let _ = v.get();
            h.join();
        })
    }

    fn campaign(runs: u64, jobs: usize, strategy: StrategyKind) -> ExploreResult {
        let mut cfg = ExploreConfig::default();
        cfg.runs = runs;
        cfg.base_seed = 100;
        cfg.jobs = jobs;
        cfg.strategy = strategy;
        Explorer::new(cfg).run(workload())
    }

    #[test]
    fn explorer_is_deterministic_across_worker_counts() {
        let serial = campaign(16, 1, StrategyKind::RandomWalk);
        let parallel = campaign(16, 4, StrategyKind::RandomWalk);
        assert_eq!(serial.runs(), 16);
        assert_eq!(serial.distinct_hashes(), parallel.distinct_hashes());
        let seeds: Vec<u64> = serial.summaries.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, (100..116).collect::<Vec<u64>>());
    }

    #[test]
    fn explorer_dedups_identical_schedules() {
        // Same seed every run → one distinct schedule.
        let mut cfg = ExploreConfig::default();
        cfg.runs = 8;
        cfg.jobs = 2;
        // A single-threaded workload: every interleaving is identical.
        let one_thread: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            let v = TracedVar::new("Explore", "solo", 0u32);
            v.set(1);
            let _ = v.get();
        });
        let result = Explorer::new(cfg).run(one_thread);
        assert_eq!(result.runs(), 8);
        assert_eq!(result.distinct.len(), 1, "single-threaded runs must dedup");
        assert_eq!(result.dedup_hits, 7);
    }

    #[test]
    fn explorer_finds_multiple_schedules_on_racy_workload() {
        let result = campaign(24, 3, StrategyKind::RandomWalk);
        assert!(
            result.distinct.len() >= 2,
            "24 seeds of a racy two-thread workload must produce ≥ 2 interleavings, got {}",
            result.distinct.len()
        );
        // Summaries cover every run even when traces dedup.
        assert_eq!(result.summaries.len(), 24);
        assert_eq!(result.distinct_hashes.len(), result.distinct.len());
    }

    #[test]
    fn strategies_explore_different_schedule_sets() {
        let rw = campaign(12, 2, StrategyKind::RandomWalk);
        let rr = campaign(12, 2, StrategyKind::RoundRobin { quantum: 3 });
        // Both deterministic, but they need not agree with each other.
        let rw2 = campaign(12, 2, StrategyKind::RandomWalk);
        assert_eq!(rw.distinct_hashes(), rw2.distinct_hashes());
        assert!(!rr.distinct_hashes().is_empty());
    }

    #[test]
    fn deadlocked_runs_are_counted() {
        let mut cfg = ExploreConfig::default();
        cfg.runs = 2;
        cfg.jobs = 1;
        cfg.sim.idle_timeout = Time::from_millis(1);
        let blocked: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            let ev = crate::prims::EventWaitHandle::new(false);
            ev.wait_one();
        });
        let result = Explorer::new(cfg).run(blocked);
        assert_eq!(result.deadlocks(), 1, "deadlock dedups to one schedule");
        assert!(result.summaries.iter().all(|s| s.deadlocked));
    }

    #[test]
    fn retention_caps_bound_memory_without_losing_counts() {
        let mut cfg = ExploreConfig::default();
        cfg.runs = 32;
        cfg.jobs = 2;
        cfg.base_seed = 100;
        cfg.summary_cap = Some(4);
        cfg.report_cap = Some(1);
        let capped = Explorer::new(cfg).run(workload());
        let uncapped = campaign(32, 2, StrategyKind::RandomWalk);
        assert_eq!(capped.summaries.len(), 4);
        assert_eq!(capped.distinct.len(), 1);
        // Counts and the distinct-hash sequence are unaffected by retention.
        assert_eq!(capped.runs(), 32);
        assert_eq!(capped.distinct_hashes(), uncapped.distinct_hashes());
        assert_eq!(capped.deadlocks, uncapped.deadlocks);
        assert_eq!(capped.dedup_hits, uncapped.dedup_hits);
    }

    #[test]
    fn hash_only_mode_retains_no_reports() {
        let mut cfg = ExploreConfig::default();
        cfg.runs = 16;
        cfg.jobs = 1;
        cfg.base_seed = 100;
        cfg.report_cap = Some(0);
        let result = Explorer::new(cfg).run(workload());
        assert!(result.distinct.is_empty());
        assert!(!result.distinct_hashes.is_empty());
        assert!(result.filter_bytes > 0);
        assert!(result.est_fp_rate < 1e-3);
    }
}
