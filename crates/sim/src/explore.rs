//! Multi-seed schedule exploration.
//!
//! One simulated run replays exactly one interleaving per `(workload, seed)`;
//! the [`Explorer`] fans the same workload out across many seeds — one
//! kernel per seed, spread over a pool of OS worker threads, results funneled
//! back through a channel — and deduplicates the outcomes by
//! [`Trace::stable_hash`], so "how many *distinct* schedules did we
//! actually cover" is a first-class number rather than a guess.
//!
//! Determinism is preserved end-to-end: every run's seed is a pure function
//! of `(base_seed, run index)`, and results are re-sorted by run index before
//! deduplication, so the distinct-schedule set is independent of worker
//! count and OS scheduling of the workers themselves.
//!
//! [`Trace::stable_hash`]: sherlock_trace::Trace::stable_hash

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;

use sherlock_obs::counter;

use crate::config::SimConfig;
use crate::kernel::{Outcome, RunReport, Sim};
use crate::strategy::StrategyKind;

/// Configuration of one exploration campaign.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Number of schedules to run.
    pub runs: u64,
    /// Seed of run `i` is `base_seed + i` (wrapping).
    pub base_seed: u64,
    /// Scheduling strategy for every run.
    pub strategy: StrategyKind,
    /// Worker OS threads; 0 means `std::thread::available_parallelism`.
    pub jobs: usize,
    /// Template for each run's [`SimConfig`] (its `seed` and `strategy`
    /// fields are overwritten per run).
    pub sim: SimConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            runs: 64,
            base_seed: 0,
            strategy: StrategyKind::RandomWalk,
            jobs: 0,
            sim: SimConfig::default(),
        }
    }
}

/// Per-run summary kept for every explored schedule (distinct or not).
#[derive(Clone, Debug)]
pub struct ScheduleSummary {
    /// Index of the run within the campaign.
    pub run_index: u64,
    /// The scheduling seed the run used.
    pub seed: u64,
    /// [`Trace::stable_hash`] of the run's trace.
    ///
    /// [`Trace::stable_hash`]: sherlock_trace::Trace::stable_hash
    pub trace_hash: u64,
    /// Scheduled steps the run executed.
    pub steps: u64,
    /// Events in the run's trace.
    pub events: usize,
    /// Whether the run deadlocked.
    pub deadlocked: bool,
    /// Whether any simulated thread panicked.
    pub panicked: bool,
}

/// The result of one exploration campaign.
#[derive(Debug, Default)]
pub struct ExploreResult {
    /// One summary per run, sorted by run index.
    pub summaries: Vec<ScheduleSummary>,
    /// The first [`RunReport`] per distinct trace hash, in run-index order.
    pub distinct: Vec<RunReport>,
}

impl ExploreResult {
    /// Number of runs executed.
    pub fn runs(&self) -> u64 {
        self.summaries.len() as u64
    }

    /// Trace hashes of the distinct schedules, in first-seen order.
    pub fn distinct_hashes(&self) -> Vec<u64> {
        self.distinct
            .iter()
            .map(|r| r.trace.stable_hash())
            .collect()
    }

    /// Distinct schedules that deadlocked.
    pub fn deadlocks(&self) -> usize {
        self.distinct
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Deadlock(_)))
            .count()
    }

    /// Distinct schedules with at least one panicking thread.
    pub fn panics(&self) -> usize {
        self.distinct
            .iter()
            .filter(|r| !r.panics.is_empty())
            .count()
    }
}

/// Fans a workload out across seeds and collects deduplicated schedules.
pub struct Explorer {
    config: ExploreConfig,
}

impl Explorer {
    /// Creates an explorer for the given campaign configuration.
    pub fn new(config: ExploreConfig) -> Self {
        Explorer { config }
    }

    /// Runs the campaign: `runs` kernels at seeds `base_seed..base_seed+runs`
    /// over `jobs` OS worker threads, each executing `workload` under its own
    /// [`Sim`]. The workload closure is invoked once per run on that run's
    /// root simulated thread.
    pub fn run(&self, workload: Arc<dyn Fn() + Send + Sync>) -> ExploreResult {
        let _s = sherlock_obs::span("explore.campaign");
        let cfg = &self.config;
        let runs = cfg.runs;
        let runs_counter = match cfg.strategy.name() {
            "pct" => counter!("explore.pct.runs"),
            "rr" => counter!("explore.rr.runs"),
            _ => counter!("explore.random.runs"),
        };
        let jobs = if cfg.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            cfg.jobs
        };
        let jobs = jobs.min(runs.max(1) as usize).max(1);

        let next = AtomicU64::new(0);
        let (tx, rx) = channel::<(u64, RunReport)>();

        let collected: Vec<(u64, RunReport)> = std::thread::scope(|scope| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                let workload = Arc::clone(&workload);
                let sim_template = cfg.sim.clone();
                let (base_seed, strategy) = (cfg.base_seed, cfg.strategy);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= runs {
                        break;
                    }
                    let mut sim_cfg = sim_template.clone();
                    sim_cfg.seed = base_seed.wrapping_add(i);
                    sim_cfg.strategy = strategy;
                    let w = Arc::clone(&workload);
                    let report = Sim::new(sim_cfg).run(move || w());
                    if tx.send((i, report)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            rx.into_iter().collect()
        });

        // Workers race to the channel; re-keying by run index makes the
        // distinct set a deterministic function of (workload, config).
        let mut by_index: BTreeMap<u64, RunReport> = collected.into_iter().collect();
        let mut summaries = Vec::with_capacity(by_index.len());
        let mut seen: BTreeMap<u64, ()> = BTreeMap::new();
        let mut distinct = Vec::new();
        for (i, report) in std::mem::take(&mut by_index) {
            let hash = report.trace.stable_hash();
            summaries.push(ScheduleSummary {
                run_index: i,
                seed: cfg.base_seed.wrapping_add(i),
                trace_hash: hash,
                steps: report.steps,
                events: report.trace.len(),
                deadlocked: matches!(report.outcome, Outcome::Deadlock(_)),
                panicked: !report.panics.is_empty(),
            });
            if seen.insert(hash, ()).is_none() {
                distinct.push(report);
            }
        }
        runs_counter.add(summaries.len() as u64);
        counter!("explore.runs").add(summaries.len() as u64);
        counter!("explore.distinct_traces").add(distinct.len() as u64);
        counter!("explore.duplicate_traces").add(summaries.len() as u64 - distinct.len() as u64);
        ExploreResult {
            summaries,
            distinct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::TracedVar;
    use sherlock_trace::Time;

    fn workload() -> Arc<dyn Fn() + Send + Sync> {
        Arc::new(|| {
            let v = TracedVar::new("Explore", "x", 0u32);
            let v2 = v.clone();
            let h = crate::api::spawn("writer", move || v2.set(1));
            v.set(2);
            let _ = v.get();
            h.join();
        })
    }

    fn campaign(runs: u64, jobs: usize, strategy: StrategyKind) -> ExploreResult {
        let mut cfg = ExploreConfig::default();
        cfg.runs = runs;
        cfg.base_seed = 100;
        cfg.jobs = jobs;
        cfg.strategy = strategy;
        Explorer::new(cfg).run(workload())
    }

    #[test]
    fn explorer_is_deterministic_across_worker_counts() {
        let serial = campaign(16, 1, StrategyKind::RandomWalk);
        let parallel = campaign(16, 4, StrategyKind::RandomWalk);
        assert_eq!(serial.runs(), 16);
        assert_eq!(serial.distinct_hashes(), parallel.distinct_hashes());
        let seeds: Vec<u64> = serial.summaries.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, (100..116).collect::<Vec<u64>>());
    }

    #[test]
    fn explorer_dedups_identical_schedules() {
        // Same seed every run → one distinct schedule.
        let mut cfg = ExploreConfig::default();
        cfg.runs = 8;
        cfg.jobs = 2;
        // Strategy that ignores the seed entirely: quantum'd sweep with a
        // fixed rotation would still vary by seed, so pin the seed instead
        // by exploring one run repeatedly via base seeds... simplest: a
        // single-threaded workload, where every interleaving is identical.
        let one_thread: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            let v = TracedVar::new("Explore", "solo", 0u32);
            v.set(1);
            let _ = v.get();
        });
        let result = Explorer::new(cfg).run(one_thread);
        assert_eq!(result.runs(), 8);
        assert_eq!(result.distinct.len(), 1, "single-threaded runs must dedup");
    }

    #[test]
    fn explorer_finds_multiple_schedules_on_racy_workload() {
        let result = campaign(24, 3, StrategyKind::RandomWalk);
        assert!(
            result.distinct.len() >= 2,
            "24 seeds of a racy two-thread workload must produce ≥ 2 interleavings, got {}",
            result.distinct.len()
        );
        // Summaries cover every run even when traces dedup.
        assert_eq!(result.summaries.len(), 24);
    }

    #[test]
    fn strategies_explore_different_schedule_sets() {
        let rw = campaign(12, 2, StrategyKind::RandomWalk);
        let rr = campaign(12, 2, StrategyKind::RoundRobin { quantum: 3 });
        // Both deterministic, but they need not agree with each other.
        let rw2 = campaign(12, 2, StrategyKind::RandomWalk);
        assert_eq!(rw.distinct_hashes(), rw2.distinct_hashes());
        assert!(!rr.distinct_hashes().is_empty());
    }

    #[test]
    fn deadlocked_runs_are_counted() {
        let mut cfg = ExploreConfig::default();
        cfg.runs = 2;
        cfg.jobs = 1;
        cfg.sim.idle_timeout = Time::from_millis(1);
        let blocked: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            let ev = crate::prims::EventWaitHandle::new(false);
            ev.wait_one();
        });
        let result = Explorer::new(cfg).run(blocked);
        assert_eq!(result.deadlocks(), 1, "deadlock dedups to one schedule");
        assert!(result.summaries.iter().all(|s| s.deadlocked));
    }
}
