//! Compact probabilistic schedule-dedup set.
//!
//! A campaign that churns through millions of schedules cannot afford an
//! exact hash set of every `Trace::stable_hash` it has seen — that is O(1)
//! per query but O(distinct) memory with poor locality. [`ScheduleFilter`]
//! is a *blocked bloom filter* (Putze, Sanders & Singler, "Cache-, Hash- and
//! Space-Efficient Bloom Filters"): the bit array is an array of 64-byte
//! blocks, every element maps to exactly one block, and all `K` probe bits
//! land inside it — one cache line touched per insert/query instead of `K`
//! scattered lines.
//!
//! The price is one-sided error: `insert` can claim an unseen hash was seen
//! (a false positive — the campaign undercounts distinct schedules by that
//! rate), never the reverse. [`ScheduleFilter::est_fp_rate`] reports the
//! *measured* bound `occupancy^K` from the actual bit occupancy, and the
//! property test in this module bounds the realized rate against an exact
//! oracle. At the default sizing (16 bits/element) the rate stays below
//! ~1e-3; campaigns record it in their results rather than pretending the
//! count is exact.

/// Bits per 64-byte block.
const BLOCK_BITS: u64 = 512;
/// Probe bits per element. Six 9-bit indices fit in one 64-bit mix.
const K: u32 = 6;

/// SplitMix64 finalizer: full-avalanche mixing so the trace hash's bits are
/// equidistributed across block and probe indices.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A blocked bloom filter over 64-bit schedule hashes.
#[derive(Clone, Debug)]
pub struct ScheduleFilter {
    /// 64-byte blocks; block count is a power of two.
    blocks: Vec<[u64; 8]>,
    /// `blocks.len() - 1`, for masking the block index.
    block_mask: u64,
    /// Bits set so far (exact; maintained incrementally).
    bits_set: u64,
    /// Number of `insert` calls that found at least one unset bit.
    admitted: u64,
}

impl ScheduleFilter {
    /// Creates a filter of `2^log2_bits` bits (minimum one 512-bit block).
    /// `log2_bits = 24` (2 MiB) comfortably dedups a million schedules at
    /// ~1e-4 false-positive rate.
    pub fn with_log2_bits(log2_bits: u32) -> ScheduleFilter {
        let bits = 1u64 << log2_bits.clamp(9, 36);
        let nblocks = (bits / BLOCK_BITS).max(1) as usize;
        ScheduleFilter {
            blocks: vec![[0u64; 8]; nblocks],
            block_mask: nblocks as u64 - 1,
            bits_set: 0,
            admitted: 0,
        }
    }

    /// Sizes a filter for an expected number of elements at ~16 bits per
    /// element (clamped to [2^14, 2^28] bits — 2 KiB to 32 MiB).
    pub fn for_expected(elements: u64) -> ScheduleFilter {
        let want_bits = elements.saturating_mul(16).max(1);
        let log2 = 64 - want_bits.leading_zeros();
        ScheduleFilter::with_log2_bits(log2.clamp(14, 28))
    }

    /// Inserts a hash; returns `true` when it was (probably) new — i.e. at
    /// least one of its probe bits was unset. A `false` is either a genuine
    /// duplicate or a false positive, at a rate bounded by
    /// [`ScheduleFilter::est_fp_rate`].
    pub fn insert(&mut self, hash: u64) -> bool {
        let h1 = mix(hash);
        let block = &mut self.blocks[(h1 & self.block_mask) as usize];
        // Independent probe stream: remix so filters bigger than 2^9 bits
        // don't correlate block choice with probe positions.
        let mut probes = mix(h1 ^ 0x6a09_e667_f3bc_c909);
        let mut new = false;
        for _ in 0..K {
            let pos = (probes & (BLOCK_BITS - 1)) as usize;
            probes >>= 9;
            let bit = 1u64 << (pos & 63);
            let word = &mut block[pos >> 6];
            if *word & bit == 0 {
                *word |= bit;
                self.bits_set += 1;
                new = true;
            }
        }
        if new {
            self.admitted += 1;
        }
        new
    }

    /// Whether the hash has (probably) been inserted. Never false-negative.
    pub fn contains(&self, hash: u64) -> bool {
        let h1 = mix(hash);
        let block = &self.blocks[(h1 & self.block_mask) as usize];
        let mut probes = mix(h1 ^ 0x6a09_e667_f3bc_c909);
        for _ in 0..K {
            let pos = (probes & (BLOCK_BITS - 1)) as usize;
            probes >>= 9;
            if block[pos >> 6] & (1u64 << (pos & 63)) == 0 {
                return false;
            }
        }
        true
    }

    /// Inserts that found at least one unset bit (≈ distinct elements,
    /// undercounting by the false-positive rate).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Fraction of bits set, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.bits_set as f64 / self.total_bits() as f64
    }

    /// Measured false-positive bound: probability that all `K` probes of an
    /// unseen element land on set bits, assuming the probes are uniform —
    /// `occupancy^K` evaluated from the *actual* bit occupancy (not the
    /// idealized `(1 - e^{-kn/m})^k`, which assumes unblocked placement).
    pub fn est_fp_rate(&self) -> f64 {
        self.occupancy().powi(K as i32)
    }

    /// Total filter bits.
    pub fn total_bits(&self) -> u64 {
        self.blocks.len() as u64 * BLOCK_BITS
    }

    /// Heap footprint of the bit array in bytes.
    pub fn bytes(&self) -> usize {
        self.blocks.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::collections::HashSet;

    #[test]
    fn insert_then_contains_never_false_negative() {
        let mut f = ScheduleFilter::with_log2_bits(16);
        let mut rng = SplitMix64::new(0xf11);
        let hashes: Vec<u64> = (0..5_000).map(|_| rng.next_u64()).collect();
        for &h in &hashes {
            f.insert(h);
        }
        for &h in &hashes {
            assert!(f.contains(h), "inserted hash {h:#x} reported absent");
            assert!(!f.insert(h), "re-insert of {h:#x} claimed novelty");
        }
    }

    #[test]
    fn fp_rate_stays_within_measured_bound() {
        // Exact-set oracle: every `insert -> false` on a hash the oracle has
        // not seen is a false positive. The realized rate must stay within a
        // small multiple of the filter's own `est_fp_rate` report (sampling
        // noise allows the slack), and within an absolute ceiling.
        let mut f = ScheduleFilter::with_log2_bits(18); // 256 Kbit
        let mut oracle: HashSet<u64> = HashSet::new();
        let mut rng = SplitMix64::new(0xdead_beef);
        let mut false_positives = 0u64;
        let mut fresh = 0u64;
        for _ in 0..20_000 {
            let h = rng.next_u64();
            let oracle_new = oracle.insert(h);
            let filter_new = f.insert(h);
            if oracle_new {
                fresh += 1;
                if !filter_new {
                    false_positives += 1;
                }
            } else {
                assert!(!filter_new, "oracle duplicate {h:#x} claimed novelty");
            }
        }
        let measured = false_positives as f64 / fresh as f64;
        let reported = f.est_fp_rate();
        assert!(
            measured <= reported * 3.0 + 1e-3,
            "measured FP rate {measured:.5} exceeds 3x reported bound {reported:.5}"
        );
        assert!(
            measured < 0.02,
            "FP rate {measured:.5} above absolute ceiling at 13 bits/element"
        );
        // The filter's distinct estimate tracks the oracle to the same bound.
        let undercount = (oracle.len() as u64 - f.admitted()) as f64 / oracle.len() as f64;
        assert!(
            undercount < 0.02,
            "admitted() undercounts oracle by {undercount:.5}"
        );
    }

    #[test]
    fn occupancy_and_bytes_are_reported() {
        let mut f = ScheduleFilter::with_log2_bits(14);
        assert_eq!(f.total_bits(), 1 << 14);
        assert_eq!(f.bytes(), (1 << 14) / 8);
        assert_eq!(f.occupancy(), 0.0);
        let mut rng = SplitMix64::new(7);
        for _ in 0..500 {
            f.insert(rng.next_u64());
        }
        assert!(f.occupancy() > 0.0 && f.occupancy() < 0.5);
        assert!(f.est_fp_rate() < 0.05);
    }

    #[test]
    fn for_expected_scales_with_elements() {
        assert_eq!(ScheduleFilter::for_expected(100).total_bits(), 1 << 14);
        let mid = ScheduleFilter::for_expected(1_000_000);
        assert!(mid.total_bits() >= 1 << 24, "1M elements needs >= 16 Mbit");
        assert_eq!(
            ScheduleFilter::for_expected(u64::MAX / 32).total_bits(),
            1 << 28
        );
    }

    #[test]
    fn tiny_filters_clamp_to_one_block() {
        let mut f = ScheduleFilter::with_log2_bits(0);
        assert_eq!(f.total_bits(), 512);
        assert!(f.insert(1));
        assert!(f.contains(1));
    }
}
