//! Deterministic pseudo-randomness for the scheduler.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit counter advanced
//! by the golden-gamma constant and scrambled by two xor-shift-multiply
//! rounds. It passes BigCrush, costs a handful of ALU ops per draw, and —
//! unlike an external crate — its stream is fixed forever, which is what
//! makes a run a reproducible function of `(workload, SimConfig)`.

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)` using Lemire's multiply-shift reduction
    /// (bias is negligible for the small ranges the scheduler uses).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi ({lo} >= {hi})");
        let span = hi - lo;
        lo + (((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64)
    }

    /// Uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        usize::try_from(self.gen_range(0, len as u64)).expect("index fits usize")
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p.is_nan() || p <= 0.0 {
            return false;
        }
        // Compare against the top 53 bits mapped to [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_fixed() {
        // Reference outputs for seed 0 from the published SplitMix64 code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
        // Degenerate single-value range.
        assert_eq!(r.gen_range(5, 6), 5);
    }

    #[test]
    fn gen_index_covers_all_slots() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = SplitMix64::new(3);
        assert!(r.gen_bool(1.0));
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(0.0));
        assert!(!r.gen_bool(-1.0));
        assert!(!r.gen_bool(f64::NAN));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn gen_range_rejects_empty() {
        SplitMix64::new(0).gen_range(3, 3);
    }
}
