//! The cooperative virtual-time scheduler.
//!
//! Every simulated thread runs in isolation: exactly one executes at any
//! instant. The scheduler hands a single "go" token to one runnable thread,
//! which runs until its next traced operation (a *yield point*) and hands the
//! token back. A seeded RNG picks the next runnable thread, so a run is a
//! deterministic function of `(workload, SimConfig)` — the property the
//! paper's wall-clock executions lack and the reason inference results here
//! are exactly reproducible.
//!
//! Two transports carry the token (see [`crate::config::SimBackend`]):
//!
//! * **Fibers** (default on x86-64 unix): each simulated thread is a stackful
//!   coroutine on the scheduler's own OS thread; the handoff is a ~20 ns
//!   userspace stack swap (`crate::fiber`). This is what makes
//!   campaign-scale exploration (millions of schedules) affordable.
//! * **OS threads** (fallback + differential oracle): each simulated thread
//!   is a real OS thread parked on a channel; the handoff costs two OS
//!   context switches.
//!
//! The scheduler loop, RNG consumption, and trace emission are shared —
//! byte-identical traces across transports are asserted by
//! `tests/backend_parity.rs`.

use std::cell::{Cell, RefCell};

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

use sherlock_obs::counter;
use sherlock_trace::{AccessClass, OpRef, ThreadId, Time, Trace, TraceBuilder};

use crate::config::{SimBackend, SimConfig};
use crate::fiber;
use crate::rng::SplitMix64;
use crate::strategy::Strategy;

/// Panic payload used to unwind simulated threads when a run is aborted.
struct AbortToken;

#[derive(Clone, Copy)]
enum GoMsg {
    Run,
    Abort,
}

impl GoMsg {
    /// Encoding used when the token travels over a fiber switch.
    fn payload(self) -> usize {
        match self {
            GoMsg::Run => fiber::MSG_RUN,
            GoMsg::Abort => fiber::MSG_ABORT,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked,
    Sleeping(Time),
    Finished,
}

/// How the go token reaches one simulated thread.
enum Transport {
    Os {
        go: Sender<GoMsg>,
        handle: Option<std::thread::JoinHandle<()>>,
    },
    /// `None` while the scheduler holds the fiber mid-resume.
    Fiber(Option<fiber::Fiber>),
}

struct ThreadSlot {
    name: String,
    state: ThreadState,
    daemon: bool,
    transport: Transport,
    join_waiters: Vec<u32>,
}

pub(crate) struct KState {
    pub(crate) config: SimConfig,
    clock: Time,
    rng: SplitMix64,
    strategy: Box<dyn Strategy>,
    trace: TraceBuilder,
    threads: Vec<ThreadSlot>,
    next_object: u64,
    steps: u64,
    panics: Vec<PanicReport>,
    live_nondaemon: usize,
    /// Resolved once per run; `spawn_on` uses it to pick the transport.
    fibers: bool,
}

pub(crate) struct Kernel {
    pub(crate) state: Mutex<KState>,
    to_sched: Sender<u32>,
}

enum CtxKind {
    Os { go_rx: Receiver<GoMsg> },
    Fiber,
}

struct Ctx {
    kernel: Arc<Kernel>,
    /// Fixed for an OS-thread context; retargeted before every resume for
    /// the (shared, per-scheduler) fiber context.
    tid: Cell<u32>,
    kind: CtxKind,
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<Ctx>>> = const { RefCell::new(None) };
}

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    // Clone the Rc out and release the borrow *before* running `f`: in fiber
    // mode `f` may suspend back to the scheduler, which then needs to mutate
    // CURRENT while this frame is parked on the fiber stack.
    let ctx = CURRENT
        .with(|c| c.borrow().as_ref().map(Rc::clone))
        .expect("sherlock-sim operation used outside Sim::run");
    f(&ctx)
}

/// Whether the calling code is executing simulated code (either an OS-backed
/// sim thread or a fiber resumed by a scheduler on this thread). Used by the
/// panic hook; must never panic itself.
pub(crate) fn in_sim_context() -> bool {
    CURRENT
        .try_with(|c| match c.try_borrow() {
            Ok(b) => b.is_some(),
            // A held borrow means we are inside a kernel service — sim code.
            Err(_) => true,
        })
        .unwrap_or(false)
}

impl Ctx {
    /// Hands the token back to the scheduler and parks until re-scheduled.
    fn yield_to_scheduler(&self) {
        match &self.kind {
            CtxKind::Os { go_rx } => {
                self.kernel
                    .to_sched
                    .send(self.tid.get())
                    .expect("scheduler channel closed");
                match go_rx.recv() {
                    Ok(GoMsg::Run) => {}
                    Ok(GoMsg::Abort) | Err(_) => resume_unwind(Box::new(AbortToken)),
                }
            }
            CtxKind::Fiber => {
                if fiber::suspend(self.tid.get() as usize) == fiber::MSG_ABORT {
                    resume_unwind(Box::new(AbortToken));
                }
            }
        }
    }
}

/// A panic observed on a simulated thread (e.g. a failing test assertion —
/// the paper notes two seeded data races manifest exactly this way, §5.5).
#[derive(Clone, Debug)]
pub struct PanicReport {
    /// Thread the panic occurred on.
    pub thread: ThreadId,
    /// Thread name at spawn time.
    pub thread_name: String,
    /// Rendered panic message.
    pub message: String,
}

/// How a simulated run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// All non-daemon threads ran to completion.
    Completed,
    /// Every non-daemon thread was blocked with nothing left to wake it.
    Deadlock(Vec<ThreadId>),
    /// The run exceeded [`SimConfig::max_steps`].
    StepLimit,
}

/// The result of one simulated run.
#[derive(Debug)]
pub struct RunReport {
    /// The execution trace the Observer collected.
    pub trace: Trace,
    /// Virtual time at the end of the run.
    pub end_time: Time,
    /// Scheduled steps executed.
    pub steps: u64,
    /// Panics caught on simulated threads.
    pub panics: Vec<PanicReport>,
    /// How the run ended.
    pub outcome: Outcome,
    /// Spawn-time names of all simulated threads, indexed by tid — the
    /// deadlock report uses these to name the blocked threads.
    pub thread_names: Vec<String>,
}

impl RunReport {
    /// Whether the run completed with no panics.
    pub fn is_clean(&self) -> bool {
        self.outcome == Outcome::Completed && self.panics.is_empty()
    }

    /// A human-readable deadlock report naming every blocked non-daemon
    /// thread, or `None` when the run did not deadlock.
    pub fn deadlock_message(&self) -> Option<String> {
        let Outcome::Deadlock(blocked) = &self.outcome else {
            return None;
        };
        let names: Vec<String> = blocked
            .iter()
            .map(|t| {
                let idx = t.0 as usize;
                match self.thread_names.get(idx) {
                    Some(n) => format!("\"{n}\" (tid {})", t.0),
                    None => format!("tid {}", t.0),
                }
            })
            .collect();
        Some(format!(
            "deadlock: {} non-daemon thread(s) blocked with nothing to wake them: {}",
            blocked.len(),
            names.join(", ")
        ))
    }
}

/// Resolves the configured backend against the environment override and
/// platform support.
fn use_fibers(config: &SimConfig) -> bool {
    fn env_backend() -> Option<SimBackend> {
        static ENV: OnceLock<Option<SimBackend>> = OnceLock::new();
        *ENV.get_or_init(|| {
            std::env::var("SHERLOCK_SIM_BACKEND")
                .ok()
                .and_then(|s| SimBackend::parse(&s))
        })
    }
    let choice = match config.backend {
        SimBackend::Auto => env_backend().unwrap_or(SimBackend::Auto),
        explicit => explicit,
    };
    match choice {
        SimBackend::OsThreads => false,
        SimBackend::Fibers | SimBackend::Auto => fiber::is_supported(),
    }
}

/// A deterministic simulated execution.
///
/// ```
/// use sherlock_sim::{Sim, SimConfig, api};
/// use sherlock_trace::Time;
///
/// let report = Sim::new(SimConfig::with_seed(7)).run(|| {
///     let h = api::spawn("child", || api::sleep(Time::from_millis(1)));
///     h.join();
/// });
/// assert!(report.is_clean());
/// ```
pub struct Sim {
    config: SimConfig,
}

impl Sim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Sim { config }
    }

    /// Runs `root` as the first simulated thread, scheduling all threads it
    /// spawns until every non-daemon thread finishes (or the run deadlocks /
    /// exhausts its step budget). Returns the collected trace and outcome.
    pub fn run(self, root: impl FnOnce() + Send + 'static) -> RunReport {
        let (to_sched, sched_rx) = channel::<u32>();
        let fibers = use_fibers(&self.config);
        // Strategy state is built before the root spawn so `on_spawn`
        // notifications cover every thread, root included.
        let strategy = self.config.strategy.build(self.config.seed);
        let kernel = Arc::new(Kernel {
            state: Mutex::new(KState {
                clock: Time::ZERO,
                rng: SplitMix64::new(self.config.seed),
                strategy,
                trace: TraceBuilder::new(),
                threads: Vec::new(),
                next_object: 1,
                steps: 0,
                panics: Vec::new(),
                live_nondaemon: 0,
                fibers,
                config: self.config,
            }),
            to_sched,
        });
        // One shared context serves every fiber; its tid is retargeted
        // before each resume. OS-backed threads build their own contexts.
        let fiber_ctx = fibers.then(|| {
            Rc::new(Ctx {
                kernel: Arc::clone(&kernel),
                tid: Cell::new(0),
                kind: CtxKind::Fiber,
            })
        });
        spawn_on(&kernel, "root", false, root);

        let mut outcome = Outcome::Completed;
        let mut last_nondaemon_activity = Time::ZERO;
        let mut last_run: Option<u32> = None;
        loop {
            enum Act {
                Run(u32),
                AdvanceTo(Time),
                Done,
                Deadlock(Vec<ThreadId>),
                StepLimit,
            }
            let act = {
                let mut st = kernel.state.lock().expect("kernel state poisoned");
                if st.live_nondaemon == 0 {
                    Act::Done
                } else if st.steps >= st.config.max_steps {
                    Act::StepLimit
                } else {
                    let clock = st.clock;
                    for slot in &mut st.threads {
                        if let ThreadState::Sleeping(until) = slot.state {
                            if until <= clock {
                                slot.state = ThreadState::Runnable;
                            }
                        }
                    }
                    let nondaemon_live = st.threads.iter().any(|s| {
                        !s.daemon
                            && matches!(s.state, ThreadState::Runnable | ThreadState::Sleeping(_))
                    });
                    if nondaemon_live {
                        last_nondaemon_activity = clock;
                    }
                    let blocked_nondaemons = || {
                        st.threads
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| !s.daemon && s.state == ThreadState::Blocked)
                            .map(|(i, _)| ThreadId(i as u32))
                            .collect::<Vec<_>>()
                    };
                    if !nondaemon_live
                        && clock.saturating_sub(last_nondaemon_activity) > st.config.idle_timeout
                    {
                        Act::Deadlock(blocked_nondaemons())
                    } else {
                        let runnable: Vec<u32> = st
                            .threads
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.state == ThreadState::Runnable)
                            .map(|(i, _)| i as u32)
                            .collect();
                        let wake = st
                            .threads
                            .iter()
                            .filter_map(|s| match s.state {
                                ThreadState::Sleeping(u) => Some(u),
                                _ => None,
                            })
                            .min();
                        if runnable.is_empty() {
                            match wake {
                                Some(t) => Act::AdvanceTo(t),
                                None => Act::Deadlock(blocked_nondaemons()),
                            }
                        } else {
                            // Split borrows: the strategy and the kernel RNG
                            // live side by side in KState.
                            let st = &mut *st;
                            let idx = st.strategy.pick(&runnable, st.steps, &mut st.rng);
                            Act::Run(runnable[idx])
                        }
                    }
                }
            };
            match act {
                Act::Run(tid) => {
                    if last_run != Some(tid) {
                        counter!("kernel.context_switches").add(1);
                        last_run = Some(tid);
                    }
                    dispatch(&kernel, &sched_rx, fiber_ctx.as_ref(), tid, GoMsg::Run);
                }
                Act::AdvanceTo(t) => {
                    let mut st = kernel.state.lock().expect("kernel state poisoned");
                    st.clock = st.clock.max(t);
                }
                Act::Done => break,
                Act::Deadlock(b) => {
                    outcome = Outcome::Deadlock(b);
                    break;
                }
                Act::StepLimit => {
                    outcome = Outcome::StepLimit;
                    break;
                }
            }
        }

        abort_all(&kernel, &sched_rx, fiber_ctx.as_ref());

        let handles: Vec<_> = {
            let mut st = kernel.state.lock().expect("kernel state poisoned");
            st.threads
                .iter_mut()
                .filter_map(|s| match &mut s.transport {
                    Transport::Os { handle, .. } => handle.take(),
                    Transport::Fiber(_) => None,
                })
                .collect()
        };
        for h in handles {
            let _ = h.join();
        }

        // The shared fiber context holds the last outstanding kernel Arc.
        drop(fiber_ctx);
        let st = Arc::try_unwrap(kernel)
            .unwrap_or_else(|_| panic!("kernel still referenced after join"))
            .state
            .into_inner()
            .expect("kernel state poisoned");
        counter!("kernel.steps").add(st.steps);
        counter!("kernel.runs").add(1);
        if fibers {
            counter!("kernel.fiber_runs").add(1);
        }
        RunReport {
            trace: st.trace.finish(),
            end_time: st.clock,
            steps: st.steps,
            panics: st.panics,
            outcome,
            thread_names: st.threads.iter().map(|s| s.name.clone()).collect(),
        }
    }
}

/// Delivers one go token to `tid` and waits for the thread to hand it back
/// (by yielding or finishing). The kernel lock is *not* held across the
/// handoff — the target immediately re-enters kernel services.
fn dispatch(
    kernel: &Arc<Kernel>,
    sched_rx: &Receiver<u32>,
    fiber_ctx: Option<&Rc<Ctx>>,
    tid: u32,
    msg: GoMsg,
) {
    enum Via {
        Os(Sender<GoMsg>),
        Fiber(fiber::Fiber),
    }
    let via = {
        let mut st = kernel.state.lock().expect("kernel state poisoned");
        match &mut st.threads[tid as usize].transport {
            Transport::Os { go, .. } => Via::Os(go.clone()),
            Transport::Fiber(f) => Via::Fiber(f.take().expect("fiber resumed while running")),
        }
    };
    match via {
        Via::Os(go) => {
            go.send(msg).expect("sim thread channel closed");
            sched_rx.recv().expect("all sim threads vanished");
        }
        Via::Fiber(mut f) => {
            let ctx = fiber_ctx.expect("fiber transport without a fiber ctx");
            ctx.tid.set(tid);
            // Save/restore CURRENT so a nested Sim::run driven from inside a
            // fiber keeps its outer context.
            let prev = CURRENT.with(|c| c.borrow_mut().replace(Rc::clone(ctx)));
            let _ = f.resume(msg.payload());
            CURRENT.with(|c| *c.borrow_mut() = prev);
            let mut st = kernel.state.lock().expect("kernel state poisoned");
            st.threads[tid as usize].transport = Transport::Fiber(Some(f));
        }
    }
}

fn abort_all(kernel: &Arc<Kernel>, sched_rx: &Receiver<u32>, fiber_ctx: Option<&Rc<Ctx>>) {
    if fiber_ctx.is_some() {
        // Resume each unfinished fiber with the abort token until its stack
        // has fully unwound (a destructor that yields is re-aborted).
        loop {
            let next = {
                let st = kernel.state.lock().expect("kernel state poisoned");
                st.threads
                    .iter()
                    .position(|s| s.state != ThreadState::Finished)
                    .map(|i| i as u32)
            };
            let Some(tid) = next else { break };
            dispatch(kernel, sched_rx, fiber_ctx, tid, GoMsg::Abort);
        }
        return;
    }
    let pending: Vec<Sender<GoMsg>> = {
        let st = kernel.state.lock().expect("kernel state poisoned");
        st.threads
            .iter()
            .filter(|s| s.state != ThreadState::Finished)
            .filter_map(|s| match &s.transport {
                Transport::Os { go, .. } => Some(go.clone()),
                Transport::Fiber(_) => None,
            })
            .collect()
    };
    for go in &pending {
        let _ = go.send(GoMsg::Abort);
    }
    for _ in &pending {
        let _ = sched_rx.recv();
    }
}

/// Registers a new thread slot (state bookkeeping shared by both transports).
fn alloc_slot(st: &mut KState, name: &str, daemon: bool, transport: Transport) -> u32 {
    let tid = u32::try_from(st.threads.len()).expect("too many sim threads");
    st.threads.push(ThreadSlot {
        name: name.to_string(),
        state: ThreadState::Runnable,
        daemon,
        transport,
        join_waiters: Vec::new(),
    });
    if !daemon {
        st.live_nondaemon += 1;
    }
    st.strategy.on_spawn(tid);
    tid
}

pub(crate) fn spawn_on(
    kernel: &Arc<Kernel>,
    name: &str,
    daemon: bool,
    f: impl FnOnce() + Send + 'static,
) -> u32 {
    let fibers = kernel.state.lock().expect("kernel state poisoned").fibers;
    if fibers {
        spawn_fiber_on(kernel, name, daemon, f)
    } else {
        spawn_os_on(kernel, name, daemon, f)
    }
}

fn spawn_fiber_on(
    kernel: &Arc<Kernel>,
    name: &str,
    daemon: bool,
    f: impl FnOnce() + Send + 'static,
) -> u32 {
    let tname = name.to_string();
    // Mirrors the OS-thread body below: first token decides whether the
    // workload runs at all; the abort token unwinds via AbortToken inside
    // `catch_unwind`; finish bookkeeping always happens. CURRENT is set by
    // the scheduler around every resume, so `with_ctx` works here untouched.
    let fib = fiber::Fiber::new(move |first| {
        let panic_msg = if first == fiber::MSG_RUN {
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(()) => None,
                Err(p) if p.is::<AbortToken>() => None,
                Err(p) => Some(render_panic(&*p)),
            }
        } else {
            None
        };
        with_ctx(|ctx| finish_current(ctx, panic_msg, &tname));
    });
    let mut st = kernel.state.lock().expect("kernel state poisoned");
    alloc_slot(&mut st, name, daemon, Transport::Fiber(Some(fib)))
}

fn spawn_os_on(
    kernel: &Arc<Kernel>,
    name: &str,
    daemon: bool,
    f: impl FnOnce() + Send + 'static,
) -> u32 {
    let (go_tx, go_rx) = channel::<GoMsg>();
    let tid = {
        let mut st = kernel.state.lock().expect("kernel state poisoned");
        alloc_slot(
            &mut st,
            name,
            daemon,
            Transport::Os {
                go: go_tx,
                handle: None,
            },
        )
    };
    let k = Arc::clone(kernel);
    let tname = name.to_string();
    let handle = std::thread::Builder::new()
        .name(format!("sim-{tname}"))
        .spawn(move || {
            let ctx = Rc::new(Ctx {
                kernel: k,
                tid: Cell::new(tid),
                kind: CtxKind::Os { go_rx },
            });
            CURRENT.with(|c| *c.borrow_mut() = Some(Rc::clone(&ctx)));
            let first = match &ctx.kind {
                CtxKind::Os { go_rx } => go_rx.recv(),
                CtxKind::Fiber => unreachable!("os thread with fiber ctx"),
            };
            let panic_msg = match first {
                Ok(GoMsg::Run) => match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(()) => None,
                    Err(p) if p.is::<AbortToken>() => None,
                    Err(p) => Some(render_panic(&*p)),
                },
                _ => None,
            };
            finish_current(&ctx, panic_msg, &tname);
            CURRENT.with(|c| *c.borrow_mut() = None);
        })
        .expect("failed to spawn OS thread for sim thread");
    match &mut kernel.state.lock().expect("kernel state poisoned").threads[tid as usize].transport {
        Transport::Os { handle: h, .. } => *h = Some(handle),
        Transport::Fiber(_) => unreachable!("os spawn produced a fiber slot"),
    }
    tid
}

fn render_panic(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn finish_current(ctx: &Ctx, panic_msg: Option<String>, name: &str) {
    let tid = ctx.tid.get();
    {
        let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
        let slot = &mut st.threads[tid as usize];
        let was_finished = slot.state == ThreadState::Finished;
        slot.state = ThreadState::Finished;
        let daemon = slot.daemon;
        let waiters = std::mem::take(&mut slot.join_waiters);
        if !was_finished && !daemon {
            st.live_nondaemon -= 1;
        }
        for w in waiters {
            let ws = &mut st.threads[w as usize];
            if ws.state == ThreadState::Blocked {
                ws.state = ThreadState::Runnable;
            }
        }
        if let Some(msg) = panic_msg {
            st.panics.push(PanicReport {
                thread: ThreadId(tid),
                thread_name: name.to_string(),
                message: msg,
            });
        }
    }
    // Fibers return the token by returning from their entry closure; only
    // OS-backed threads must signal the scheduler explicitly.
    if let CtxKind::Os { .. } = ctx.kind {
        let _ = ctx.kernel.to_sched.send(tid);
    }
}

// ---------------------------------------------------------------------------
// Crate-internal kernel services used by `api` and the primitives.
// ---------------------------------------------------------------------------

impl KState {
    fn advance_clock(&mut self) {
        let min = self.config.min_op_cost.as_nanos();
        let max = self.config.max_op_cost.as_nanos().max(min + 1);
        let mut cost = self.rng.gen_range(min, max);
        // Real executions have heavy-tailed per-operation noise (cache
        // misses, GC pauses, preemption); without it, long methods would
        // average their jitter away (CLT) and show unrealistically uniform
        // durations, starving the Acquisition-Time-Varies statistic.
        if self.rng.gen_range(0, 16) == 0 {
            cost = cost.saturating_mul(20);
        }
        self.clock = self.clock.saturating_add(Time::from_nanos(cost));
        self.steps += 1;
    }
}

/// Current virtual time.
pub(crate) fn kernel_now() -> Time {
    with_ctx(|ctx| {
        ctx.kernel
            .state
            .lock()
            .expect("kernel state poisoned")
            .clock
    })
}

/// Index of the current simulated thread.
pub(crate) fn kernel_current_tid() -> u32 {
    with_ctx(|ctx| ctx.tid.get())
}

/// Name of a simulated thread.
pub(crate) fn kernel_thread_name(tid: u32) -> String {
    with_ctx(|ctx| {
        ctx.kernel
            .state
            .lock()
            .expect("kernel state poisoned")
            .threads[tid as usize]
            .name
            .clone()
    })
}

/// Allocates a fresh object identity.
pub(crate) fn kernel_alloc_object() -> u64 {
    with_ctx(|ctx| {
        let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
        let id = st.next_object;
        st.next_object += 1;
        id
    })
}

/// Spawns a new simulated thread from inside a running one.
pub(crate) fn kernel_spawn(name: &str, daemon: bool, f: impl FnOnce() + Send + 'static) -> u32 {
    with_ctx(|ctx| spawn_on(&ctx.kernel, name, daemon, f))
}

/// An untraced scheduling step: advances the clock and yields.
pub(crate) fn kernel_step() {
    with_ctx(|ctx| {
        {
            let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
            st.advance_clock();
        }
        ctx.yield_to_scheduler();
    })
}

/// Puts the current thread to sleep for `d` of virtual time.
pub(crate) fn kernel_sleep(d: Time) {
    with_ctx(|ctx| {
        {
            let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
            st.advance_clock();
            let until = st.clock.saturating_add(d);
            st.threads[ctx.tid.get() as usize].state = ThreadState::Sleeping(until);
        }
        ctx.yield_to_scheduler();
    })
}

/// Parks the current thread as Blocked and yields. Execution resumes after
/// some other thread calls [`kernel_wake`] on it. Because execution is fully
/// serialized, a primitive can register itself in a wait queue and then call
/// this without any lost-wakeup race: no other thread runs in between.
pub(crate) fn kernel_block_current() {
    with_ctx(|ctx| {
        {
            let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
            st.advance_clock();
            st.threads[ctx.tid.get() as usize].state = ThreadState::Blocked;
        }
        ctx.yield_to_scheduler();
    })
}

/// Marks a blocked thread runnable (no-op for other states).
pub(crate) fn kernel_wake(tid: u32) {
    with_ctx(|ctx| {
        let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
        let slot = &mut st.threads[tid as usize];
        if slot.state == ThreadState::Blocked {
            slot.state = ThreadState::Runnable;
        }
    })
}

/// Whether a simulated thread has finished.
pub(crate) fn kernel_is_finished(tid: u32) -> bool {
    with_ctx(|ctx| {
        ctx.kernel
            .state
            .lock()
            .expect("kernel state poisoned")
            .threads[tid as usize]
            .state
            == ThreadState::Finished
    })
}

/// Blocks the current thread until `target` finishes.
pub(crate) fn kernel_join(target: u32) {
    with_ctx(|ctx| loop {
        let done = {
            let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
            st.advance_clock();
            if st.threads[target as usize].state == ThreadState::Finished {
                true
            } else {
                let me = ctx.tid.get();
                st.threads[target as usize].join_waiters.push(me);
                st.threads[me as usize].state = ThreadState::Blocked;
                false
            }
        };
        ctx.yield_to_scheduler();
        if done {
            return;
        }
    })
}

/// The Observer hook: applies the instrumentation filter and delay plan,
/// advances the clock, emits the event, and yields.
///
/// Skipped methods still execute and consume a step — they are merely
/// invisible to the trace, exactly like methods the paper's heuristics
/// mistakenly skipped.
pub(crate) fn kernel_trace(op: &OpRef, object: u64, access: AccessClass) {
    with_ctx(|ctx| {
        let (skipped, delay, op_id) = {
            let st = ctx.kernel.state.lock().expect("kernel state poisoned");
            let skipped = match op {
                OpRef::MethodBegin { method, .. } | OpRef::MethodEnd { method, .. } => {
                    st.config.instrument.skips(method)
                }
                _ => false,
            };
            if skipped {
                (true, None, None)
            } else {
                let id = op.intern();
                (false, st.config.delay_plan.delay_entry(id), Some(id))
            }
        };

        if skipped {
            kernel_step_ctx(ctx);
            return;
        }
        let op_id = op_id.expect("non-skipped op interned");

        let access = {
            let st = ctx.kernel.state.lock().expect("kernel state poisoned");
            if matches!(op, OpRef::MethodBegin { .. } | OpRef::MethodEnd { .. })
                && !st.config.instrument.classify_unsafe_apis
            {
                AccessClass::None
            } else {
                access
            }
        };

        let delay_start = if let Some((d, probability)) = delay {
            let start = {
                let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
                let fire = st.rng.gen_bool(probability);
                if fire {
                    st.advance_clock();
                    let start = st.clock;
                    let until = st.clock.saturating_add(d);
                    st.threads[ctx.tid.get() as usize].state = ThreadState::Sleeping(until);
                    Some(start)
                } else {
                    None
                }
            };
            if start.is_some() {
                ctx.yield_to_scheduler();
            }
            start
        } else {
            None
        };

        {
            let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
            st.advance_clock();
            let t = st.clock;
            // The delay record's end is the delayed operation's own
            // timestamp, so window refinement bounds of the form
            // `[a, rec.end]` keep the delayed release inside the window.
            if let Some(start) = delay_start {
                counter!("perturber.delays_injected").add(1);
                sherlock_obs::histogram!("perturber.delay_ns")
                    .observe((t.saturating_sub(start)).as_nanos());
                st.trace.push_delay(ctx.tid.get(), op_id, start, t);
            }
            counter!("kernel.events_traced").add(1);
            st.trace
                .push_classified(t, ctx.tid.get(), op_id, object, access);
        }
        ctx.yield_to_scheduler();
    })
}

fn kernel_step_ctx(ctx: &Ctx) {
    {
        let mut st = ctx.kernel.state.lock().expect("kernel state poisoned");
        st.advance_clock();
    }
    ctx.yield_to_scheduler();
}
