//! Scoped suppression of simulated-thread panic output.
//!
//! Simulated threads panic on purpose: seeded races trip test assertions
//! (paper §5.5) and aborted runs unwind via a private token. The kernel
//! catches all of these, so their default-handler backtraces are pure noise —
//! but a blanket `panic::set_hook(|_| {})` (what the CLI and bench binaries
//! used to install) also silences *real* bugs on the driver thread. This hook
//! suppresses only simulated code: OS-backed sim threads are identified by
//! their `sim-`-prefixed thread name, fiber-backed ones by the kernel's
//! thread-local execution context (fibers run on the scheduler's own OS
//! thread, so the name check alone would miss them). Everything else
//! delegates to the previously installed hook.

use std::panic;
use std::sync::Once;

/// OS-thread-name prefix [`crate::Sim`] gives every simulated thread.
const SIM_THREAD_PREFIX: &str = "sim-";

/// Installs the scoped panic hook (idempotent; first call wins).
///
/// Panics on `sim-*` threads are suppressed from stderr and instead recorded
/// through the observability layer at debug level (`SHERLOCK_LOG=debug` shows
/// them); all other panics reach the hook that was active before this call.
pub fn install_sim_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let current = std::thread::current();
            let simulated = matches!(
                current.name(),
                Some(name) if name.starts_with(SIM_THREAD_PREFIX)
            ) || crate::kernel::in_sim_context();
            if simulated {
                let name = current.name().unwrap_or("fiber");
                sherlock_obs::counter!("kernel.panics_suppressed").add(1);
                sherlock_obs::debug!("sim.panic", "suppressed panic on {name}: {info}");
            } else {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn suppresses_sim_threads_and_delegates_others() {
        // Record which thread names reach the "previous" hook; other tests in
        // this binary may panic concurrently, so assert on specific names
        // rather than on a boolean.
        let delegated: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&delegated);
        panic::set_hook(Box::new(move |_| {
            let name = std::thread::current().name().unwrap_or("?").to_string();
            sink.lock().unwrap().push(name);
        }));
        install_sim_panic_hook();

        let suppressed_before = sherlock_obs::snapshot()
            .counters
            .get("kernel.panics_suppressed")
            .copied()
            .unwrap_or(0);

        std::thread::Builder::new()
            .name("sim-victim".to_string())
            .spawn(|| panic!("expected"))
            .unwrap()
            .join()
            .unwrap_err();
        std::thread::Builder::new()
            .name("plain-worker".to_string())
            .spawn(|| panic!("expected"))
            .unwrap()
            .join()
            .unwrap_err();

        let names = delegated.lock().unwrap().clone();
        assert!(
            !names.iter().any(|n| n == "sim-victim"),
            "sim-thread panic must not reach the previous hook: {names:?}"
        );
        assert!(
            names.iter().any(|n| n == "plain-worker"),
            "non-sim panic must delegate to the previous hook: {names:?}"
        );
        let suppressed_after = sherlock_obs::snapshot()
            .counters
            .get("kernel.panics_suppressed")
            .copied()
            .unwrap_or(0);
        assert!(suppressed_after > suppressed_before);
        let _ = panic::take_hook();
    }
}
