use std::collections::HashMap;

use sherlock_trace::{OpId, Time};

use crate::strategy::StrategyKind;

/// What the Observer instruments and how (paper §4.1).
///
/// The paper's instrumentation uses heuristics to identify and skip
/// compiler-generated and library code; those heuristics "mistakenly skipped
/// some application methods", producing the Instr.-Errors misclassification
/// category (Table 2/4). [`InstrumentConfig::skip_method_substrings`]
/// reproduces that behaviour mechanically: any method whose name contains one
/// of the substrings is invisible to the Observer.
#[derive(Clone, Debug)]
pub struct InstrumentConfig {
    /// Method-name fragments the Observer (incorrectly or not) skips.
    pub skip_method_substrings: Vec<String>,
    /// Whether call sites of thread-unsafe collection APIs are classified as
    /// read/write accesses for conflicting-pair formation. The paper
    /// instruments 14 `System.Collections.Generic` classes this way and notes
    /// the list is optional (≈3 % of inferred operations are lost without
    /// it).
    pub classify_unsafe_apis: bool,
}

impl Default for InstrumentConfig {
    fn default() -> Self {
        InstrumentConfig {
            // The paper's heuristic skips compiler-generated names; C#
            // lambda-lowering produces names like `<Run>b__40`. Our apps use
            // the same convention, and names carrying the `b__hidden` marker
            // are the ones the heuristic over-matches on.
            skip_method_substrings: vec!["b__hidden".to_string()],
            classify_unsafe_apis: true,
        }
    }
}

impl InstrumentConfig {
    /// Whether a method with this name is skipped by the heuristics.
    pub fn skips(&self, method: &str) -> bool {
        self.skip_method_substrings
            .iter()
            .any(|p| method.contains(p))
    }
}

/// Delays the Perturber asks the Observer to inject: a virtual-time pause
/// right before dynamic instances of each listed operation (paper §4.3).
///
/// By default every dynamic instance is delayed; a per-operation probability
/// below 1.0 reproduces the paper's probabilistic-injection variant
/// (footnote 1: "we also tried injecting the delay probabilistically, but
/// did not see much difference in inference results").
#[derive(Clone, Debug, Default)]
pub struct DelayPlan {
    delays: HashMap<OpId, (Time, f64)>,
}

impl DelayPlan {
    /// An empty plan (used for the first run).
    pub fn none() -> Self {
        DelayPlan::default()
    }

    /// Builds a plan injecting `duration` before each instance of `ops`.
    pub fn before_all(ops: impl IntoIterator<Item = OpId>, duration: Time) -> Self {
        Self::before_all_with_probability(ops, duration, 1.0)
    }

    /// Builds a plan delaying each dynamic instance independently with the
    /// given probability.
    pub fn before_all_with_probability(
        ops: impl IntoIterator<Item = OpId>,
        duration: Time,
        probability: f64,
    ) -> Self {
        DelayPlan {
            delays: ops
                .into_iter()
                .map(|op| (op, (duration, probability.clamp(0.0, 1.0))))
                .collect(),
        }
    }

    /// Adds or replaces an always-on delay for one operation.
    pub fn insert(&mut self, op: OpId, duration: Time) {
        self.delays.insert(op, (duration, 1.0));
    }

    /// The `(duration, probability)` entry for `op`, if any.
    pub fn delay_entry(&self, op: OpId) -> Option<(Time, f64)> {
        self.delays.get(&op).copied()
    }

    /// The delay duration for `op`, if any (ignores the probability).
    pub fn delay_for(&self, op: OpId) -> Option<Time> {
        self.delays.get(&op).map(|&(d, _)| d)
    }

    /// Number of delayed operations.
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }
}

/// Which transport carries simulated threads (see `crate::fiber`).
///
/// Both transports drive the *same* scheduler loop and consume the seeded
/// RNG in the same order, so traces are byte-identical across backends
/// (asserted by `tests/backend_parity.rs`); only the cost of a context
/// switch differs (~20 ns userspace stack swap vs. two OS context switches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// Fibers where supported (x86-64 unix), OS threads elsewhere. The
    /// `SHERLOCK_SIM_BACKEND` environment variable (`fibers`/`os`) overrides
    /// this variant only — an explicit config choice always wins.
    #[default]
    Auto,
    /// Stackful fibers: userspace context switching on pooled stacks.
    /// Falls back to OS threads on targets without the assembly switch.
    Fibers,
    /// One OS thread per simulated thread (the historical transport).
    OsThreads,
}

impl SimBackend {
    /// Parses `auto` / `fibers` / `fiber` / `os` / `os-threads` / `threads`.
    pub fn parse(s: &str) -> Option<SimBackend> {
        match s {
            "auto" => Some(SimBackend::Auto),
            "fiber" | "fibers" => Some(SimBackend::Fibers),
            "os" | "os-threads" | "threads" => Some(SimBackend::OsThreads),
            _ => None,
        }
    }
}

/// Full configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed of the scheduling RNG; runs with equal seeds and workloads
    /// produce identical traces.
    pub seed: u64,
    /// Minimum virtual cost of one scheduled step.
    pub min_op_cost: Time,
    /// Maximum virtual cost of one scheduled step (jitter above the minimum
    /// is drawn uniformly; the spread gives method durations the variance the
    /// Acquisition-Time-Varies hypothesis keys on).
    pub max_op_cost: Time,
    /// Upper bound on scheduled steps before the run is aborted.
    pub max_steps: u64,
    /// Virtual time all non-daemon threads may stay blocked (while daemons
    /// spin) before the run is declared deadlocked.
    pub idle_timeout: Time,
    /// Instrumentation behaviour.
    pub instrument: InstrumentConfig,
    /// Delays to inject.
    pub delay_plan: DelayPlan,
    /// Scheduling strategy. [`StrategyKind::RandomWalk`] reproduces the
    /// historical seeded-uniform scheduler byte-for-byte.
    pub strategy: StrategyKind,
    /// Thread transport. Traces are byte-identical across backends; this
    /// only selects the mechanics (and cost) of a context switch.
    pub backend: SimBackend,
}

impl SimConfig {
    /// A default configuration with the given scheduling seed.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            min_op_cost: Time::from_nanos(200),
            max_op_cost: Time::from_micros(2),
            max_steps: 3_000_000,
            idle_timeout: Time::from_secs(30),
            instrument: InstrumentConfig::default(),
            delay_plan: DelayPlan::none(),
            strategy: StrategyKind::RandomWalk,
            backend: SimBackend::Auto,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::with_seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sherlock_trace::OpRef;

    #[test]
    fn default_filter_skips_hidden_lambdas() {
        let cfg = InstrumentConfig::default();
        assert!(cfg.skips("<Run>b__hidden40"));
        assert!(!cfg.skips("<Run>b__40"));
        assert!(!cfg.skips("Broadcast"));
    }

    #[test]
    fn delay_plan_lookup() {
        let op = OpRef::app_end("Cfg", "m").intern();
        let other = OpRef::app_end("Cfg", "n").intern();
        let plan = DelayPlan::before_all([op], Time::from_millis(100));
        assert_eq!(plan.delay_for(op), Some(Time::from_millis(100)));
        assert_eq!(plan.delay_for(other), None);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
        assert!(DelayPlan::none().is_empty());
    }
}
