//! Workload-facing API: spawning, sleeping, and tracing hooks.
//!
//! Everything here must be called from inside a simulated thread (i.e. from
//! code running under [`Sim::run`](crate::Sim::run)); calling it elsewhere
//! panics with a descriptive message.

use sherlock_trace::{AccessClass, OpRef, Time};

use crate::kernel;

/// Handle to a spawned simulated thread.
///
/// Unlike `std::thread::JoinHandle`, joining takes `&self` — a thread may be
/// awaited from several places.
#[derive(Clone, Debug)]
pub struct JoinHandle {
    tid: u32,
}

impl JoinHandle {
    /// Blocks (in virtual time) until the thread finishes. Untraced; the
    /// traced equivalent is [`SimThread::join`](crate::prims::SimThread).
    pub fn join(&self) {
        kernel::kernel_join(self.tid);
    }

    /// Whether the thread has finished.
    pub fn is_finished(&self) -> bool {
        kernel::kernel_is_finished(self.tid)
    }

    /// The simulated thread index.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

/// Spawns a new simulated (non-daemon) thread. The run ends when all
/// non-daemon threads finish.
pub fn spawn(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle {
    JoinHandle {
        tid: kernel::kernel_spawn(name, false, f),
    }
}

/// Spawns a *daemon* thread (background service such as a garbage collector
/// or a dataflow consumer). Daemons do not keep the run alive and are aborted
/// once all non-daemon threads finish.
pub fn spawn_daemon(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle {
    JoinHandle {
        tid: kernel::kernel_spawn(name, true, f),
    }
}

/// Sleeps for `d` of virtual time.
pub fn sleep(d: Time) {
    kernel::kernel_sleep(d);
}

/// Current virtual time.
pub fn now() -> Time {
    kernel::kernel_now()
}

/// Index of the calling simulated thread.
pub fn current_thread() -> u32 {
    kernel::kernel_current_tid()
}

/// Name the calling thread was spawned with.
pub fn current_thread_name() -> String {
    kernel::kernel_thread_name(kernel::kernel_current_tid())
}

/// Yields to the scheduler without tracing anything (a plain preemption
/// point).
pub fn yield_now() {
    kernel::kernel_step();
}

/// Allocates a fresh object identity for a traced heap object.
pub fn alloc_object() -> u64 {
    kernel::kernel_alloc_object()
}

/// Emits a raw traced operation (advances the clock and yields). Most code
/// should prefer the typed primitives in [`crate::prims`]; this is the
/// low-level hook they are built on.
pub fn trace_op(op: &OpRef, object: u64, access: AccessClass) {
    kernel::kernel_trace(op, object, access);
}

/// Traces entry and exit of an *application* method around `body`
/// (paper §4.1: "For application methods, SherLock instruments entry and
/// exit points of their implementations").
pub fn app_method<R>(class: &str, method: &str, object: u64, body: impl FnOnce() -> R) -> R {
    trace_op(&OpRef::app_begin(class, method), object, AccessClass::None);
    let r = body();
    trace_op(&OpRef::app_end(class, method), object, AccessClass::None);
    r
}

/// Traces an opaque *library* call around `body` (paper §4.1: "For library
/// or system API calls, SherLock instruments immediately before and after
/// the call sites").
pub fn lib_call<R>(class: &str, method: &str, object: u64, body: impl FnOnce() -> R) -> R {
    trace_op(&OpRef::lib_begin(class, method), object, AccessClass::None);
    let r = body();
    trace_op(&OpRef::lib_end(class, method), object, AccessClass::None);
    r
}

/// Like [`lib_call`] but classifies the call site as a read- or write-like
/// access to `object`, making concurrent calls on the same object form
/// conflicting pairs (the paper's thread-unsafe collection API list).
pub fn lib_call_classified<R>(
    class: &str,
    method: &str,
    object: u64,
    access: AccessClass,
    body: impl FnOnce() -> R,
) -> R {
    kernel::kernel_trace(&OpRef::lib_begin(class, method), object, access);
    let r = body();
    kernel::kernel_trace(&OpRef::lib_end(class, method), object, AccessClass::None);
    r
}
