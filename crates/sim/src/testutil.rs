//! A minimal offline property-testing harness.
//!
//! The build environment has no registry access, so `proptest` cannot be a
//! dev-dependency; this module is the small subset the repo's property tests
//! actually need — a [`SplitMix64`]-driven generator ([`Gen`]), a greedy
//! bounded shrinker, and a [`check`] runner that panics with the *minimal*
//! failing input and a one-line reproduction recipe. Tests that previously
//! hid behind a `proptests` cargo feature run under plain `cargo test -q`
//! with this.
//!
//! ```
//! use sherlock_sim::testutil::{check, shrink_vec, Config};
//!
//! check(
//!     &Config::default(),
//!     |g| g.vec(0, 8, |g| g.u64_in(0, 100)),
//!     |v| shrink_vec(v),
//!     |v| {
//!         let sorted = {
//!             let mut s = v.clone();
//!             s.sort_unstable();
//!             s
//!         };
//!         if sorted.len() == v.len() {
//!             Ok(())
//!         } else {
//!             Err("sort changed the length".to_string())
//!         }
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::SplitMix64;

/// A seeded source of random test inputs.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform value in `[lo, hi)`; panics when the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo, hi)
    }

    /// A uniform index-sized value in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.gen_index(items.len())]
    }

    /// A vector with uniform length in `[min_len, max_len]`, elements drawn
    /// from `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len + 1);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of random cases to generate.
    pub cases: u64,
    /// Seed of the first case; case `i` uses `seed + i`.
    pub seed: u64,
    /// Upper bound on shrinking steps once a failure is found.
    pub max_shrink_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 48,
            seed: 0x7e57,
            max_shrink_steps: 500,
        }
    }
}

fn run_prop<T>(prop: &impl Fn(&T) -> Result<(), String>, input: &T) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(p) => Err(if let Some(s) = p.downcast_ref::<&str>() {
            format!("panicked: {s}")
        } else if let Some(s) = p.downcast_ref::<String>() {
            format!("panicked: {s}")
        } else {
            "panicked with a non-string payload".to_string()
        }),
    }
}

/// Checks `prop` against `cfg.cases` inputs drawn from `gen`. On failure the
/// input is greedily shrunk with `shrink` (first still-failing candidate
/// wins, bounded by `cfg.max_shrink_steps`) and the runner panics with the
/// minimal failing input plus the seed that reproduces it.
pub fn check<T: Clone + Debug>(
    cfg: &Config,
    mut gen: impl FnMut(&mut Gen) -> T,
    shrink: impl Fn(&T) -> Vec<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    for case in 0..cfg.cases {
        let case_seed = cfg.seed.wrapping_add(case);
        let input = gen(&mut Gen::new(case_seed));
        let Err(first_err) = run_prop(&prop, &input) else {
            continue;
        };

        let mut minimal = input;
        let mut err = first_err;
        let mut steps = 0;
        'shrinking: while steps < cfg.max_shrink_steps {
            for candidate in shrink(&minimal) {
                steps += 1;
                if let Err(e) = run_prop(&prop, &candidate) {
                    minimal = candidate;
                    err = e;
                    continue 'shrinking;
                }
                if steps >= cfg.max_shrink_steps {
                    break;
                }
            }
            break; // no candidate fails: minimal is locally minimal
        }
        panic!(
            "property failed (case {case}, reproduce with seed {case_seed:#x}):\n  \
             error: {err}\n  minimal input: {minimal:?}"
        );
    }
}

/// Standard shrinks for a vector: drop the first/second half, then drop each
/// element individually. Produces nothing for an empty vector.
pub fn shrink_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.is_empty() {
        return out;
    }
    let mid = v.len() / 2;
    if mid > 0 {
        out.push(v[mid..].to_vec());
        out.push(v[..mid].to_vec());
    }
    for i in 0..v.len() {
        let mut shorter = v.to_vec();
        shorter.remove(i);
        out.push(shorter);
    }
    out
}

/// Standard shrinks for an integer: toward `floor` by halving the distance.
pub fn shrink_u64(v: u64, floor: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v <= floor {
        return out;
    }
    out.push(floor);
    let half = floor + (v - floor) / 2;
    if half != floor && half != v {
        out.push(half);
    }
    if v - 1 != floor {
        out.push(v - 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        // Property side effects are visible: the runner is plain in-process
        // code, no forking.
        let seen = std::cell::Cell::new(0u64);
        check(
            &Config {
                cases: 10,
                ..Config::default()
            },
            |g| g.u64_in(0, 100),
            |_| Vec::new(),
            |_| {
                seen.set(seen.get() + 1);
                Ok(())
            },
        );
        assert_eq!(seen.get(), 10);
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        // Property: every element < 50. Failure shrinks to a single
        // offending element.
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                &Config::default(),
                |g| g.vec(0, 12, |g| g.u64_in(0, 100)),
                |v| shrink_vec(v),
                |v| {
                    if v.iter().all(|&x| x < 50) {
                        Ok(())
                    } else {
                        Err("element ≥ 50".to_string())
                    }
                },
            );
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string panic"),
        };
        assert!(msg.contains("reproduce with seed"), "{msg}");
        // Greedy vec shrinking reaches a single-element witness.
        let bracket = msg.find('[').map(|i| &msg[i..]).unwrap_or("");
        assert!(
            bracket.matches(',').count() == 0 && bracket.starts_with('['),
            "expected single-element minimal input, got: {msg}"
        );
    }

    #[test]
    fn panicking_property_is_a_failure() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                &Config {
                    cases: 1,
                    ..Config::default()
                },
                |g| g.u64(),
                |&v| shrink_u64(v, 0),
                |_| -> Result<(), String> { panic!("boom") },
            );
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string panic"),
        };
        assert!(msg.contains("panicked: boom"), "{msg}");
        assert!(msg.contains("minimal input: 0"), "shrinks to floor: {msg}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = Gen::new(9);
            (0..5).map(|_| g.u64_in(0, 1000)).collect()
        };
        let b: Vec<u64> = {
            let mut g = Gen::new(9);
            (0..5).map(|_| g.u64_in(0, 1000)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn shrink_helpers_propose_smaller_values() {
        assert!(shrink_vec::<u64>(&[]).is_empty());
        let shrinks = shrink_vec(&[1, 2, 3, 4]);
        assert!(shrinks.iter().all(|s| s.len() < 4));
        assert!(shrinks.contains(&vec![3, 4]));
        assert_eq!(shrink_u64(0, 0), Vec::<u64>::new());
        assert!(shrink_u64(100, 0).contains(&0));
        assert!(shrink_u64(100, 0).contains(&50));
        assert!(shrink_u64(100, 0).contains(&99));
    }
}
