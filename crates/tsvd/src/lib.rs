//! A simplified TSVD (Li et al., SOSP 2019): happens-before inference
//! between thread-unsafe API calls via delay injection.
//!
//! TSVD looks for *conflicting* calls into thread-unsafe collection APIs —
//! two calls on the same object from different threads, at least one
//! write-like — and injects delays before them. If delaying call `a` causes a
//! cascading delay of call `b` in another thread, TSVD infers `a` happens
//! before `b` and skips the pair when hunting thread-safety violations.
//!
//! The paper's §5.6 uses TSVD as a consumer of SherLock's output: SherLock's
//! inferred synchronizations identify more truly synchronized conflicting
//! API pairs (20) than TSVD's own quick delay heuristic (8 pairs, 7 true).
//! [`run_tsvd`] reproduces the heuristic; [`synchronized_pairs`] reproduces
//! the SherLock-enhanced analysis by checking orderedness with FastTrack
//! under an inferred [`SyncSpec`].

use std::collections::{BTreeMap, BTreeSet};

use sherlock_core::TestCase;
use sherlock_racer::{detect, SyncSpec};
use sherlock_sim::{DelayPlan, SimConfig};
use sherlock_trace::{AccessClass, MethodKind, OpId, OpRef, Time, Trace};

/// An ordered static pair of thread-unsafe API call sites observed
/// conflicting (same object, different threads, at least one write-like).
pub type ApiPair = (OpId, OpId);

/// Finds every conflicting thread-unsafe API call pair in a trace.
///
/// Only *classified* library call sites participate (the paper's 14
/// `System.Collections.Generic` classes); the returned pairs are ordered by
/// observation order and deduplicated statically.
pub fn conflicting_api_pairs(trace: &Trace) -> BTreeSet<ApiPair> {
    let lib_rw = |op: OpId| -> bool {
        matches!(
            op.resolve(),
            OpRef::MethodBegin {
                kind: MethodKind::Lib,
                ..
            }
        )
    };
    let mut by_object: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let events = trace.events();
    for (i, e) in events.iter().enumerate() {
        if e.access != AccessClass::None && lib_rw(e.op) {
            by_object.entry(e.object.0).or_default().push(i);
        }
    }
    let mut pairs = BTreeSet::new();
    for idxs in by_object.values() {
        for (k, &j) in idxs.iter().enumerate() {
            for &i in &idxs[..k] {
                let (a, b) = (&events[i], &events[j]);
                if a.thread != b.thread && a.access.conflicts_with(b.access) {
                    pairs.insert((a.op, b.op));
                }
            }
        }
    }
    pairs
}

/// TSVD's verdict for one conflicting pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TsvdPair {
    /// Earlier call site.
    pub a: OpId,
    /// Later call site.
    pub b: OpId,
    /// Whether TSVD's delay heuristic inferred `a` happens-before `b`.
    pub happens_before: bool,
}

/// Output of [`run_tsvd`].
#[derive(Clone, Debug, Default)]
pub struct TsvdReport {
    /// One verdict per conflicting static pair.
    pub pairs: Vec<TsvdPair>,
}

impl TsvdReport {
    /// Pairs with an inferred happens-before relation.
    pub fn hb_pairs(&self) -> impl Iterator<Item = ApiPair> + '_ {
        self.pairs
            .iter()
            .filter(|p| p.happens_before)
            .map(|p| (p.a, p.b))
    }
}

/// Runs the TSVD heuristic on a test: one plain run to discover conflicting
/// API pairs, then `rounds` delayed runs (a delay before every thread-unsafe
/// call) watching for cascading delays.
pub fn run_tsvd(test: &TestCase, rounds: usize, base_seed: u64, delay: Time) -> TsvdReport {
    let plain = test.run(SimConfig::with_seed(base_seed));
    let pairs = conflicting_api_pairs(&plain.trace);
    if pairs.is_empty() {
        return TsvdReport::default();
    }

    let delayed_ops: BTreeSet<OpId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    let mut hb: BTreeSet<ApiPair> = BTreeSet::new();

    for round in 0..rounds {
        let mut cfg = SimConfig::with_seed(base_seed.wrapping_add(round as u64 + 1));
        cfg.delay_plan = DelayPlan::before_all(delayed_ops.iter().copied(), delay);
        let run = test.run(cfg);
        let events = run.trace.events();
        for rec in run.trace.delays() {
            // Did another thread's conflicting call wait out this delay?
            // The observed gap allows for the target call's own injected
            // delay (both sides of a pair are delayed).
            let max_gap = delay.saturating_add(delay);
            for e in events {
                if e.thread != rec.thread
                    && e.time > rec.end
                    && e.time.saturating_sub(rec.end) < max_gap
                    && (pairs.contains(&(rec.op, e.op)) || pairs.contains(&(e.op, rec.op)))
                {
                    // Quiet = genuinely waiting through the delay's tail:
                    // the blocked thread may still have been reaching its
                    // blocking point early in the window, so only activity
                    // after the midpoint disproves propagation. A thread
                    // parked in its *own* injected delay does not count as
                    // waiting either.
                    let mid = Time::from_nanos((rec.start.as_nanos() + rec.end.as_nanos()) / 2);
                    let quiet = !events
                        .iter()
                        .any(|q| q.thread == e.thread && q.time > mid && q.time < rec.end)
                        && !run
                            .trace
                            .delays()
                            .iter()
                            .any(|d| d.thread == e.thread && d.start < rec.end && d.end > mid);
                    if quiet {
                        hb.insert((rec.op, e.op));
                    }
                }
            }
        }
    }

    TsvdReport {
        pairs: pairs
            .into_iter()
            .map(|(a, b)| TsvdPair {
                a,
                b,
                happens_before: hb.contains(&(a, b)) || hb.contains(&(b, a)),
            })
            .collect(),
    }
}

/// The SherLock-enhanced analysis (paper §5.6): a conflicting API pair is
/// *truly synchronized* when FastTrack under the given sync spec finds its
/// calls ordered (no race on the collection object).
pub fn synchronized_pairs(trace: &Trace, spec: &SyncSpec) -> BTreeSet<ApiPair> {
    let conflicting = conflicting_api_pairs(trace);
    let mut racy: BTreeSet<ApiPair> = BTreeSet::new();
    for race in detect(trace, spec) {
        if let Some(prior) = race.prior_op {
            racy.insert((prior, race.current_op));
            racy.insert((race.current_op, prior));
        }
    }
    conflicting
        .into_iter()
        .filter(|p| !racy.contains(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sherlock_sim::api;
    use sherlock_sim::prims::{EventWaitHandle, UnsafeList};

    fn add_op() -> OpId {
        OpRef::lib_begin("System.Collections.Generic.List", "Add").intern()
    }

    #[test]
    fn conflicting_pairs_found_across_threads() {
        let t = TestCase::new("pairs", || {
            let list: UnsafeList<u32> = UnsafeList::new();
            let l2 = list.clone();
            let h = api::spawn("w", move || l2.add(1));
            list.add(2);
            h.join();
        });
        let run = t.run(SimConfig::with_seed(3));
        let pairs = conflicting_api_pairs(&run.trace);
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(add_op(), add_op())));
    }

    #[test]
    fn same_thread_calls_do_not_conflict() {
        let t = TestCase::new("same-thread", || {
            let list: UnsafeList<u32> = UnsafeList::new();
            list.add(1);
            list.add(2);
        });
        let run = t.run(SimConfig::with_seed(4));
        assert!(conflicting_api_pairs(&run.trace).is_empty());
    }

    #[test]
    fn tsvd_infers_hb_for_event_ordered_calls() {
        let t = TestCase::new("ordered", || {
            let list: UnsafeList<u32> = UnsafeList::new();
            let ev = EventWaitHandle::new(false);
            let (l2, e2) = (list.clone(), ev.clone());
            let h = api::spawn("second", move || {
                e2.wait_one();
                l2.add(2);
            });
            list.add(1);
            ev.set();
            h.join();
        });
        let report = run_tsvd(&t, 3, 10, Time::from_millis(100));
        assert_eq!(report.pairs.len(), 1);
        assert!(
            report.pairs[0].happens_before,
            "delay before the first Add must cascade through the event"
        );
    }

    #[test]
    fn tsvd_sees_no_hb_for_unordered_calls() {
        let t = TestCase::new("unordered", || {
            let list: UnsafeList<u32> = UnsafeList::new();
            let l2 = list.clone();
            let h = api::spawn("w", move || l2.add(1));
            list.add(2);
            h.join();
        });
        let report = run_tsvd(&t, 3, 11, Time::from_millis(100));
        assert_eq!(report.pairs.len(), 1);
        assert!(!report.pairs[0].happens_before);
    }

    #[test]
    fn synchronized_pairs_uses_the_spec() {
        let t = TestCase::new("spec", || {
            let list: UnsafeList<u32> = UnsafeList::new();
            let ev = EventWaitHandle::new(false);
            let (l2, e2) = (list.clone(), ev.clone());
            let h = api::spawn("second", move || {
                e2.wait_one();
                l2.add(2);
            });
            list.add(1);
            ev.set();
            h.join();
        });
        let run = t.run(SimConfig::with_seed(12));
        // Under the manual spec (knows Set/WaitOne) the pair is synchronized.
        let sync = synchronized_pairs(&run.trace, &SyncSpec::manual());
        assert_eq!(sync.len(), 1);
        // Under the empty spec it is racy, hence not synchronized.
        let sync = synchronized_pairs(&run.trace, &SyncSpec::empty());
        assert!(sync.is_empty());
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let t = TestCase::new("empty", || {});
        let report = run_tsvd(&t, 2, 13, Time::from_millis(100));
        assert!(report.pairs.is_empty());
        assert_eq!(report.hb_pairs().count(), 0);
    }
}
