//! Integration test for the JSON-lines sink: installs it in this process,
//! emits spans/logs/metrics, and parses every line back.

use sherlock_obs as obs;
use sherlock_obs::json::Json;

#[test]
fn jsonl_sink_round_trips() {
    let path = std::env::temp_dir().join(format!("sherlock-obs-test-{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    obs::set_jsonl_file(path_str).expect("create jsonl sink");

    {
        let _outer = obs::span("test.jsonl.outer");
        let _inner = obs::span("test.jsonl.inner");
        obs::counter!("test.jsonl.counter").add(11);
    }
    obs::debug!("test", "escaped \"quote\" and backslash \\ and\nnewline");
    obs::set_log_level(None); // stderr stays quiet; jsonl still records
    obs::flush_jsonl();

    let text = std::fs::read_to_string(&path).expect("read jsonl");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 4,
        "expected meta+spans+log+metrics, got {lines:?}"
    );

    let mut types = Vec::new();
    let mut span_names = Vec::new();
    for line in &lines {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("invalid JSONL line {line:?}: {e}"));
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .expect("type field")
            .to_string();
        if ty == "span" {
            span_names.push(v.get("name").and_then(Json::as_str).unwrap().to_string());
            assert!(v.get("dur_us").and_then(Json::as_u64).is_some());
            assert!(v.get("start_us").and_then(Json::as_u64).is_some());
            assert!(v.get("depth").and_then(Json::as_u64).is_some());
        }
        if ty == "log" {
            assert!(v
                .get("msg")
                .and_then(Json::as_str)
                .unwrap()
                .contains("escaped \"quote\""));
        }
        if ty == "metrics" {
            let counters = v
                .get("data")
                .and_then(|d| d.get("counters"))
                .expect("counters");
            assert_eq!(
                counters.get("test.jsonl.counter").and_then(Json::as_u64),
                Some(11)
            );
        }
        types.push(ty);
    }
    assert_eq!(types[0], "meta");
    assert!(types.contains(&"log".to_string()));
    assert!(types.contains(&"metrics".to_string()));
    // Inner span closes (and is emitted) before outer.
    assert_eq!(span_names, vec!["test.jsonl.inner", "test.jsonl.outer"]);

    let _ = std::fs::remove_file(&path);
}
