//! Zero-dependency structured telemetry for SherLock-rs.
//!
//! The paper's evaluation hinges on quantities the pipeline must be able to
//! report about itself: per-round window and constraint growth (Fig. 4), LP
//! size and solve behaviour (Table 5), and instrumentation overhead (§6.6).
//! This crate is the measurement substrate — hand-rolled on `std::sync` +
//! `std::time` because the build environment has no registry access:
//!
//! * [`span`] — RAII nested spans with wall-clock timing, aggregated by name
//!   in a thread-safe process-wide registry;
//! * [`counter!`]/[`histogram!`] — named counters and fixed log-linear
//!   bucket histograms (`lp.pivots`, `windows.extracted`,
//!   `kernel.context_switches`, `perturber.delays_injected`, …);
//! * [`TraceCtx`]/[`trace_scope`]/[`event`] — request-scoped trace context
//!   (trace id + session + seq) carried in a thread-local and stamped onto
//!   every JSONL span/event line, so one serve request reconstructs into a
//!   single causal tree across worker threads;
//! * sinks — a leveled stderr logger (`SHERLOCK_LOG` / `--log`) and a
//!   JSON-lines file (`--trace-out FILE`), both off by default;
//! * [`snapshot`]/[`Snapshot`] — point-in-time metric captures with delta
//!   arithmetic; the inference driver attaches one to every report as its
//!   `telemetry` section.
//!
//! With no sink enabled the layer compiles down to relaxed atomic bumps and
//! one `Instant::now` pair per span — designed to stay under 5 % of
//! `sherlock infer` wall time.
//!
//! ```
//! use sherlock_obs as obs;
//!
//! obs::counter!("windows.extracted").add(3);
//! {
//!     let _solve = obs::span("phase.solve");
//!     obs::histogram!("simplex.rows").observe(120);
//! }
//! let snap = obs::snapshot();
//! assert!(snap.counters["windows.extracted"] >= 3);
//! assert!(snap.spans["phase.solve"].count >= 1);
//! ```

pub mod json;
mod metrics;
mod sink;
mod span;
mod trace_ctx;

pub use metrics::{
    bucket_bounds, bucket_index, counter, counter_named, fmt_ns, histogram, histogram_named,
    snapshot, span_stat, Counter, HistSnap, Histogram, Snapshot, SpanSnap, SpanStat, NUM_BUCKETS,
    SUBBUCKETS_PER_OCTAVE,
};
pub use sink::{
    flush_jsonl, init_from_env, jsonl_enabled, jsonl_line, log, log_enabled, set_jsonl_file,
    set_log_level, sync_jsonl, Level,
};
pub use span::{epoch_micros, span, SpanGuard};
pub use trace_ctx::{current_trace, event, mint_trace_id, trace_scope, TraceCtx, TraceScope};
