//! Pluggable telemetry sinks.
//!
//! Two sinks exist, both off by default so that an uninstrumented run pays
//! nothing beyond relaxed atomic bumps:
//!
//! * a human-readable **stderr logger**, gated by a level set from the
//!   `SHERLOCK_LOG` environment variable or the CLI's `--log <level>` flag;
//! * a **JSON-lines file** (`--trace-out FILE`) receiving one object per
//!   span, log record, and final metrics snapshot.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock};

use crate::json::write_escaped;
use crate::span::epoch_micros;

/// Verbosity of a log record (and the stderr gate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 1,
    /// Suspicious but non-fatal conditions.
    Warn = 2,
    /// High-level progress.
    Info = 3,
    /// Per-phase details (e.g. suppressed simulated-thread panics).
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Parses `error|warn|info|debug|trace|off` (or `0`–`5`).
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" | "1" => Some(Some(Level::Error)),
            "warn" | "warning" | "2" => Some(Some(Level::Warn)),
            "info" | "3" => Some(Some(Level::Info)),
            "debug" | "4" => Some(Some(Level::Debug)),
            "trace" | "5" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

static STDERR_LEVEL: AtomicU8 = AtomicU8::new(0); // 0 = off
static JSONL_ON: AtomicBool = AtomicBool::new(false);

fn jsonl_file() -> &'static Mutex<Option<BufWriter<File>>> {
    static FILE: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    FILE.get_or_init(|| Mutex::new(None))
}

/// Sets the stderr log level (`None` disables stderr logging).
pub fn set_log_level(level: Option<Level>) {
    STDERR_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Reads `SHERLOCK_LOG` and applies it as the stderr level; unparsable
/// values are ignored. Returns the applied level, if any.
pub fn init_from_env() -> Option<Level> {
    let raw = std::env::var("SHERLOCK_LOG").ok()?;
    let parsed = Level::parse(&raw)?;
    set_log_level(parsed);
    parsed
}

/// Whether a record at `level` would reach stderr.
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= STDERR_LEVEL.load(Ordering::Relaxed)
}

/// Emits one log record to the enabled sinks. Prefer the [`crate::debug!`]
/// family of macros, which skip formatting entirely when nothing listens.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let stderr = log_enabled(level);
    let jsonl = jsonl_enabled();
    if !stderr && !jsonl {
        return;
    }
    let msg = args.to_string();
    if stderr {
        eprintln!("[{:5} {target}] {msg}", level.name());
    }
    if jsonl {
        let mut line = String::with_capacity(96 + msg.len());
        line.push_str("{\"type\":\"log\",\"level\":\"");
        line.push_str(level.name());
        line.push_str("\",\"target\":");
        write_escaped(&mut line, target);
        line.push_str(",\"t_us\":");
        line.push_str(&epoch_micros().to_string());
        line.push_str(",\"msg\":");
        write_escaped(&mut line, &msg);
        line.push('}');
        jsonl_line(&line);
    }
}

/// Installs the crash-safety flushes exactly once: a panic hook (wrapping
/// whatever hook is already installed — including sim's scoped hook, in
/// either install order) and a libc `atexit` handler, both of which call
/// [`sync_jsonl`] so buffered telemetry from a crashing or exiting process
/// reaches disk. Installed lazily by [`set_jsonl_file`] — processes that
/// never open a sink never touch the panic hook.
fn install_crash_flush() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            sync_jsonl();
        }));
        #[cfg(unix)]
        {
            extern "C" {
                fn atexit(f: extern "C" fn()) -> i32;
            }
            extern "C" fn flush_at_exit() {
                sync_jsonl();
            }
            // std already links libc; registration failure only loses the
            // exit flush, which the panic hook and explicit flushes cover.
            unsafe {
                atexit(flush_at_exit);
            }
        }
    });
}

/// Opens (truncating) `path` as the JSON-lines sink and writes a meta line.
///
/// # Errors
///
/// Propagates the underlying file-creation error.
pub fn set_jsonl_file(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut guard = jsonl_file().lock().expect("jsonl sink poisoned");
    *guard = Some(BufWriter::new(file));
    JSONL_ON.store(true, Ordering::Release);
    drop(guard);
    install_crash_flush();
    let mut line = String::from(
        "{\"type\":\"meta\",\"producer\":\"sherlock-obs\",\"version\":1,\"epoch_us\":",
    );
    line.push_str(&epoch_micros().to_string());
    line.push('}');
    jsonl_line(&line);
    Ok(())
}

/// Whether the JSON-lines sink is installed.
pub fn jsonl_enabled() -> bool {
    JSONL_ON.load(Ordering::Acquire)
}

/// Appends one line (without trailing newline) to the JSON-lines sink.
pub fn jsonl_line(line: &str) {
    if !jsonl_enabled() {
        return;
    }
    let mut guard = jsonl_file().lock().expect("jsonl sink poisoned");
    if let Some(w) = guard.as_mut() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }
}

/// Writes a final `{"type":"metrics", ...}` snapshot line and flushes the
/// JSON-lines sink (keeping it open for further records).
pub fn flush_jsonl() {
    if !jsonl_enabled() {
        return;
    }
    let snap = crate::snapshot();
    let mut line = String::from("{\"type\":\"metrics\",\"t_us\":");
    line.push_str(&epoch_micros().to_string());
    line.push_str(",\"data\":");
    line.push_str(&snap.to_json().render());
    line.push('}');
    jsonl_line(&line);
    sync_jsonl();
}

/// Flushes the JSON-lines sink's buffer to disk without writing a metrics
/// record. Safe to call from a panic hook or `atexit` handler: it takes the
/// sink lock non-blockingly and gives up rather than deadlock if the
/// panicking thread already holds it (a poisoned or held lock loses at most
/// the final buffered lines).
pub fn sync_jsonl() {
    if !jsonl_enabled() {
        return;
    }
    if let Ok(mut guard) = jsonl_file().try_lock() {
        if let Some(w) = guard.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Debug, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Trace, $target, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("debug"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("3"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn levels_order() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
    }
}
