//! Counters and log-linear-bucket histograms with a process-wide registry.
//!
//! Everything is lock-free on the hot path: a counter bump is one relaxed
//! atomic add, a histogram observation is two. The registry itself is only
//! locked when a metric is first created or when a [`Snapshot`] is taken.
//! Metric handles are interned and leaked, so call sites can cache a
//! `&'static` handle (the [`counter!`](crate::counter!) and
//! [`histogram!`](crate::histogram!) macros do this with a `OnceLock`).
//!
//! Span *stack paths* (the `;`-joined ancestry of each closed span) are the
//! one exception: they are dynamically keyed, so closing a span takes one
//! short registry lock. Spans bracket phases, solves, and requests — never
//! inner loops — so this stays far off the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets under the log-linear scheme: values `0..=3`
/// get exact unit buckets `0..=3`; every octave `[2^o, 2^(o+1))` for
/// `o in 2..=63` is split into 4 equal sub-buckets (`4 + 62*4` total).
pub const NUM_BUCKETS: usize = 4 + 62 * 4;

/// Sub-buckets per octave. Four subdivisions bound the relative error of a
/// bucket-midpoint estimate by `1/8` (12.5 %) — comfortably inside the
/// <15 % target for serve p99 reporting, where plain power-of-two buckets
/// quantized everything between 128 ms and 256 ms to one value.
pub const SUBBUCKETS_PER_OCTAVE: usize = 4;

/// The bucket index a value lands in (log-linear: exact below 4, then 4
/// sub-buckets per power-of-two octave).
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let o = 63 - v.leading_zeros() as usize; // 2..=63
        4 + (o - 2) * 4 + ((v >> (o - 2)) & 3) as usize
    }
}

/// The inclusive `(low, high)` value range of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= NUM_BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index out of range");
    if i < 4 {
        (i as u64, i as u64)
    } else {
        let k = i - 4;
        let o = 2 + k / 4;
        let width = 1u64 << (o - 2);
        let lo = (1u64 << o) + (k % 4) as u64 * width;
        (lo, lo + (width - 1))
    }
}

/// A histogram over `u64` values with fixed log-linear buckets.
///
/// Bucketing is a `leading_zeros` plus a shift — no search, no
/// configuration, and every possible `u64` (including `0` and `u64::MAX`)
/// lands in exactly one bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    fn snap(&self) -> HistSnap {
        HistSnap {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Aggregate timing of one span name (see [`crate::span`]).
#[derive(Debug, Default)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    pub(crate) fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Completed spans under this name.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds across completed spans.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    spans: Mutex<BTreeMap<&'static str, &'static SpanStat>>,
    /// Aggregates keyed by `;`-joined span ancestry (collapsed stacks):
    /// `(count, total_ns, max_ns)` per path.
    stacks: Mutex<BTreeMap<String, (u64, u64, u64)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
        stacks: Mutex::new(BTreeMap::new()),
    })
}

/// Interns the counter `name`, returning its process-wide handle.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry()
        .counters
        .lock()
        .expect("metric registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Interns a counter under a runtime-constructed name (e.g. a per-arm
/// series like `explore.arm.pct_d3.runs`). The name string is leaked on
/// first use and reused afterwards, so the cost is bounded by the number of
/// *distinct* names — callers must keep the name space small (labels, not
/// payloads). Prefer [`counter!`](crate::counter!) for static names.
pub fn counter_named(name: &str) -> &'static Counter {
    let mut map = registry()
        .counters
        .lock()
        .expect("metric registry poisoned");
    if let Some(c) = map.get(name) {
        return c;
    }
    let key: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.entry(key).or_insert_with(|| Box::leak(Box::default()))
}

/// Interns the histogram `name`, returning its process-wide handle.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .expect("metric registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Interns a histogram under a runtime-constructed name. Same leak-once
/// contract as [`counter_named`].
pub fn histogram_named(name: &str) -> &'static Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .expect("metric registry poisoned");
    if let Some(h) = map.get(name) {
        return h;
    }
    let key: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.entry(key).or_insert_with(|| Box::leak(Box::default()))
}

/// Interns the span aggregate `name` (used by the span layer).
pub fn span_stat(name: &'static str) -> &'static SpanStat {
    let mut map = registry().spans.lock().expect("metric registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Folds one closed span into its stack-path aggregate (span layer only).
pub(crate) fn stack_record(path: String, ns: u64) {
    let mut map = registry().stacks.lock().expect("metric registry poisoned");
    let cell = map.entry(path).or_insert((0, 0, 0));
    cell.0 += 1;
    cell.1 += ns;
    cell.2 = cell.2.max(ns);
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnap {
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistSnap {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) from the log-linear
    /// buckets: the midpoint of the bucket holding the
    /// `ceil(q·count)`-th smallest observation, clamped to [`max`]. Exact
    /// for `q = 1` and for values below 4 (unit buckets); within 12.5 %
    /// otherwise — four sub-buckets per octave bound the midpoint error by
    /// half a bucket width, an eighth of the value.
    ///
    /// [`max`]: HistSnap::max
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i.min(NUM_BUCKETS - 1));
                return (lo + (hi - lo) / 2).min(self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> Json {
        let mut members = vec![
            ("count".to_string(), Json::from(self.count)),
            ("sum".to_string(), Json::from(self.sum)),
            ("max".to_string(), Json::from(self.max)),
        ];
        // Only nonzero buckets, as {"lt": exclusive_upper_bound, "n": count}
        // pairs; the top bucket has no finite upper bound.
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (_, hi) = bucket_bounds(i.min(NUM_BUCKETS - 1));
                let lt = if hi == u64::MAX {
                    Json::Null
                } else {
                    Json::from(hi + 1)
                };
                vec![("lt".to_string(), lt), ("n".to_string(), Json::from(n))]
                    .into_iter()
                    .collect()
            })
            .collect();
        members.push(("buckets".to_string(), Json::Arr(buckets)));
        Json::Obj(members)
    }

    /// The quantile summary serve's `metrics` verb ships per histogram.
    pub fn summary_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_string(), Json::from(self.count)),
            ("mean".to_string(), Json::Num(self.mean())),
            ("p50".to_string(), Json::from(self.quantile(0.50))),
            ("p90".to_string(), Json::from(self.quantile(0.90))),
            ("p99".to_string(), Json::from(self.quantile(0.99))),
            ("max".to_string(), Json::from(self.max)),
        ])
    }
}

/// Point-in-time copy of one span (or stack-path) aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnap {
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time copy of every registered metric — the repo's telemetry
/// interchange type: [`crate::snapshot`] produces it, the driver attaches it
/// to inference reports, and sinks serialize it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanSnap>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistSnap>,
    /// Span aggregates by `;`-joined stack path (collapsed-stack data).
    pub stacks: BTreeMap<String, SpanSnap>,
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&k, c)| (k.to_string(), c.get()))
        .collect();
    let spans = reg
        .spans
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&k, s)| {
            (
                k.to_string(),
                SpanSnap {
                    count: s.count(),
                    total_ns: s.total_ns(),
                    max_ns: s.max_ns.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&k, h)| (k.to_string(), h.snap()))
        .collect();
    let stacks = reg
        .stacks
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(k, &(count, total_ns, max_ns))| {
            (
                k.clone(),
                SpanSnap {
                    count,
                    total_ns,
                    max_ns,
                },
            )
        })
        .collect();
    Snapshot {
        counters,
        spans,
        histograms,
        stacks,
    }
}

impl Snapshot {
    /// The metrics accumulated since `earlier`: every counter, span, and
    /// histogram value minus its value in the earlier snapshot (metrics
    /// absent earlier are kept whole). All metrics are monotone, so the
    /// difference is well defined; if a process restart (or an out-of-order
    /// snapshot pair) makes an "earlier" value larger, the difference
    /// saturates at zero instead of underflowing.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (
                    k.clone(),
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .filter(|(_, v)| *v > 0)
            .collect();
        let span_delta = |current: &BTreeMap<String, SpanSnap>,
                          old: &BTreeMap<String, SpanSnap>| {
            current
                .iter()
                .map(|(k, s)| {
                    let e = old.get(k).copied().unwrap_or_default();
                    (
                        k.clone(),
                        SpanSnap {
                            count: s.count.saturating_sub(e.count),
                            total_ns: s.total_ns.saturating_sub(e.total_ns),
                            max_ns: s.max_ns, // max is not differentiable; keep current
                        },
                    )
                })
                .filter(|(_, s): &(String, SpanSnap)| s.count > 0)
                .collect()
        };
        let spans = span_delta(&self.spans, &earlier.spans);
        let stacks = span_delta(&self.stacks, &earlier.stacks);
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let e = earlier.histograms.get(k).cloned().unwrap_or_default();
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| n.saturating_sub(e.buckets.get(i).copied().unwrap_or(0)))
                    .collect();
                (
                    k.clone(),
                    HistSnap {
                        count: h.count.saturating_sub(e.count),
                        sum: h.sum.wrapping_sub(e.sum),
                        max: h.max,
                        buckets,
                    },
                )
            })
            .filter(|(_, h): &(String, HistSnap)| h.count > 0)
            .collect();
        Snapshot {
            counters,
            spans,
            histograms,
            stacks,
        }
    }

    /// The counters whose names start with `prefix`, in name order — used by
    /// subsystem summaries (e.g. `sherlock explore` prints every
    /// `explore.`-prefixed counter it accumulated).
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Serializes the snapshot (the `"telemetry"` JSON schema documented in
    /// README.md: `counters`, `spans`, `histograms`, and `stacks` objects by
    /// name).
    pub fn to_json(&self) -> Json {
        let counters: Json = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect();
        let span_obj = |map: &BTreeMap<String, SpanSnap>| -> Json {
            map.iter()
                .map(|(k, s)| {
                    let obj: Json = vec![
                        ("count", Json::from(s.count)),
                        ("total_ns", Json::from(s.total_ns)),
                        ("max_ns", Json::from(s.max_ns)),
                    ]
                    .into_iter()
                    .collect();
                    (k.clone(), obj)
                })
                .collect()
        };
        let histograms: Json = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        vec![
            ("counters", counters),
            ("spans", span_obj(&self.spans)),
            ("histograms", histograms),
            ("stacks", span_obj(&self.stacks)),
        ]
        .into_iter()
        .collect()
    }

    /// Renders the stack-path aggregates in collapsed-stack ("folded")
    /// format — one `path;of;frames value` line per stack, where the value
    /// is the stack's **self** time in microseconds (total minus direct
    /// children), the input `inferno`/speedscope/`flamegraph.pl` expect.
    /// Frames that spent all their time in children still get a zero line
    /// so the hierarchy stays visible to tools that sum leaves only.
    pub fn render_folded(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (path, s) in &self.stacks {
            let child_total: u64 = self
                .stacks
                .iter()
                .filter(|(p, _)| {
                    p.len() > path.len() + 1
                        && p.starts_with(path.as_str())
                        && p.as_bytes()[path.len()] == b';'
                        && !p[path.len() + 1..].contains(';')
                })
                .map(|(_, c)| c.total_ns)
                .sum();
            let self_us = s.total_ns.saturating_sub(child_total) / 1_000;
            let _ = writeln!(out, "{path} {self_us}");
        }
        out
    }

    /// Renders a human-readable per-phase time/count breakdown (the
    /// `sherlock infer --profile` table). `wall_ns` is the caller-measured
    /// wall time the phase percentages are computed against.
    pub fn render_profile(&self, wall_ns: u64) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12} {:>7}",
            "phase", "count", "total", "mean", "% wall"
        );
        let mut phase_total = 0u64;
        for (name, s) in &self.spans {
            if !name.starts_with("phase.") {
                continue;
            }
            phase_total += s.total_ns;
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>12} {:>12} {:>6.1}%",
                name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.total_ns.checked_div(s.count).unwrap_or(0)),
                pct(s.total_ns, wall_ns),
            );
        }
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12} {:>6.1}%",
            "(sum of phases)",
            "",
            fmt_ns(phase_total),
            "",
            pct(phase_total, wall_ns),
        );
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12}",
            "(wall clock)",
            "",
            fmt_ns(wall_ns)
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\n{:<40} {:>14}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<40} {v:>14}");
            }
        }
        out
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Interns a counter once per call site and caches the handle in a static,
/// making repeated access a single relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// Interns a histogram once per call site and caches the handle in a static.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // Exact unit buckets below 4.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        // First subdivided octave [4, 8): still unit-wide.
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(7), 7);
        // Octave [8, 16): 4 sub-buckets of width 2.
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(10), 9);
        assert_eq!(bucket_index(15), 11);
        assert_eq!(bucket_index(16), 12);
        // The top of the range stays in bounds.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert!(bucket_index(1 << 63) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        // Bounds are contiguous, non-overlapping, and cover everything.
        let mut expected_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts where {} ended", i - 1);
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if hi == u64::MAX {
                assert_eq!(i, NUM_BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("top bucket never reached u64::MAX");
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        // Log-linear guarantee: bucket width ≤ lo/4 for every bucket with
        // lo ≥ 4, so a midpoint estimate is within 12.5 % of any member.
        for i in 8..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo + 1;
            assert!(
                width <= lo / 4 + 1,
                "bucket {i} [{lo}, {hi}] too wide ({width})"
            );
        }
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::default();
        for v in [0, 1, 1, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), u64::MAX);
        let s = h.snap();
        assert_eq!(s.buckets[0], 1); // the 0
        assert_eq!(s.buckets[1], 2); // the 1s
        assert_eq!(s.buckets[3], 1); // the 3
        assert_eq!(s.buckets[bucket_index(1024)], 1);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1); // u64::MAX
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn counters_increment_concurrently() {
        let c = counter("test.concurrent");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn named_interning_matches_static_interning() {
        let a = counter_named("test.named.a") as *const Counter;
        let b = counter_named("test.named.a") as *const Counter;
        assert_eq!(a, b, "same dynamic name must intern to one handle");
        // A dynamic name and a static name that agree are the same counter.
        counter_named("test.named.shared").add(2);
        counter("test.named.shared").add(3);
        assert_eq!(counter_named("test.named.shared").get(), 5);
        histogram_named("test.named.hist").observe(7);
        assert_eq!(snapshot().histograms["test.named.hist"].count, 1);
        assert_eq!(snapshot().counters["test.named.a"], 0);
    }

    #[test]
    fn interning_returns_same_handle() {
        let a = counter("test.interned") as *const Counter;
        let b = counter("test.interned") as *const Counter;
        assert_eq!(a, b);
        let c = counter!("test.interned.macro");
        c.add(2);
        assert_eq!(counter("test.interned.macro").get(), 2);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let c = counter("test.delta");
        c.add(5);
        let before = snapshot();
        c.add(7);
        histogram("test.delta.hist").observe(9);
        let d = snapshot().delta(&before);
        assert_eq!(d.counters.get("test.delta"), Some(&7));
        assert_eq!(
            d.histograms.get("test.delta.hist").map(|h| h.count),
            Some(1)
        );
        // Unchanged metrics are dropped from the delta.
        assert!(!d.counters.contains_key("test.concurrent") || d.counters["test.concurrent"] > 0);
    }

    #[test]
    fn counters_with_prefix_filters_and_sorts() {
        counter("test.prefix.b").add(2);
        counter("test.prefix.a").add(1);
        counter("test.other").add(9);
        let got = snapshot().counters_with_prefix("test.prefix.");
        let names: Vec<&str> = got.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["test.prefix.a", "test.prefix.b"]);
    }

    #[test]
    fn quantiles_from_buckets() {
        let q = histogram("test.quantile");
        for v in 1..=100u64 {
            q.observe(v);
        }
        let hs = snapshot().histograms["test.quantile"].clone();
        assert_eq!(hs.quantile(0.0), 1, "q0 lands in the first unit bucket");
        assert_eq!(hs.quantile(1.0), 100, "q1 is clamped to max");
        // p50 of 1..=100 is 50; the log-linear midpoint must be within
        // 12.5 % (bucket [48, 55] → midpoint 51).
        let p50 = hs.quantile(0.5);
        assert!(
            (p50 as f64 - 50.0).abs() / 50.0 <= 0.125,
            "p50 ~ 50 ± 12.5%, got {p50}"
        );
        assert_eq!(HistSnap::default().quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn quantile_error_stays_under_15_percent() {
        // The satellite target: a latency-shaped distribution near the old
        // 128..256 ms dead zone must report p99 within 15 %.
        let h = histogram("test.quantile.p99");
        for i in 0..1000u64 {
            // ~99 % of mass at ~3 ms, the tail spread 150..172 ms, with the
            // rank-990 (p99) observation being the first tail value.
            let v = if i < 989 {
                3_000_000
            } else {
                150_000_000 + (i - 989) * 2_000_000
            };
            h.observe(v);
        }
        let hs = snapshot().histograms["test.quantile.p99"].clone();
        let p99 = hs.quantile(0.99) as f64;
        let exact = 150_000_000.0;
        assert!(
            (p99 - exact).abs() / exact < 0.15,
            "p99 {p99} deviates >15% from {exact}"
        );
    }

    #[test]
    fn snapshot_json_shape() {
        counter("test.json").add(3);
        let j = snapshot().to_json();
        assert_eq!(
            j.get("counters")
                .unwrap()
                .get("test.json")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert!(j.get("spans").is_some());
        assert!(j.get("histograms").is_some());
        assert!(j.get("stacks").is_some());
    }

    #[test]
    fn folded_rendering_subtracts_children() {
        let mut snap = Snapshot::default();
        let s = |count, total_ns| SpanSnap {
            count,
            total_ns,
            max_ns: total_ns,
        };
        snap.stacks.insert("root".to_string(), s(1, 10_000_000));
        snap.stacks.insert("root;a".to_string(), s(2, 6_000_000));
        snap.stacks.insert("root;a;b".to_string(), s(2, 1_000_000));
        snap.stacks.insert("root;c".to_string(), s(1, 3_000_000));
        let folded = snap.render_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "root 1000",     // 10ms − (6ms + 3ms) = 1ms self
                "root;a 5000",   // 6ms − 1ms = 5ms self
                "root;a;b 1000", // leaf: all self
                "root;c 3000",
            ]
        );
    }
}
