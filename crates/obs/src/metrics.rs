//! Counters and fixed-bucket histograms with a process-wide registry.
//!
//! Everything is lock-free on the hot path: a counter bump is one relaxed
//! atomic add, a histogram observation is two. The registry itself is only
//! locked when a metric is first created or when a [`Snapshot`] is taken.
//! Metric handles are interned and leaked, so call sites can cache a
//! `&'static` handle (the [`counter!`](crate::counter!) and
//! [`histogram!`](crate::histogram!) macros do this with a `OnceLock`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, and bucket 64 holds `[2^63, u64::MAX]`.
pub const NUM_BUCKETS: usize = 65;

/// A histogram over `u64` values with fixed power-of-two buckets.
///
/// The bucket index of `v` is the number of significant bits in `v`
/// (`0 → 0`, `1 → 1`, `2..4 → 2..3`, …), so bucketing is a single
/// `leading_zeros` — no search, no configuration, and every possible `u64`
/// (including `0` and `u64::MAX`) lands in exactly one bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    fn snap(&self) -> HistSnap {
        HistSnap {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Aggregate timing of one span name (see [`crate::span`]).
#[derive(Debug, Default)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    pub(crate) fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Completed spans under this name.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds across completed spans.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    spans: Mutex<BTreeMap<&'static str, &'static SpanStat>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
    })
}

/// Interns the counter `name`, returning its process-wide handle.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry()
        .counters
        .lock()
        .expect("metric registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Interns the histogram `name`, returning its process-wide handle.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .expect("metric registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Interns the span aggregate `name` (used by the span layer).
pub fn span_stat(name: &'static str) -> &'static SpanStat {
    let mut map = registry().spans.lock().expect("metric registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnap {
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistSnap {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) from the power-of-two
    /// buckets: the inclusive upper bound of the bucket holding the
    /// `ceil(q·count)`-th smallest observation, clamped to [`max`].
    /// Exact for 0 and 1; within one power of two otherwise — precise
    /// enough for the latency summaries `sherlock-serve` reports
    /// (p50/p95/p99 of `serve.request_ns`).
    ///
    /// [`max`]: HistSnap::max
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket 0 holds exactly 0; bucket i ≥ 1 holds [2^(i-1), 2^i);
                // bucket 64 is unbounded above.
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> Json {
        let mut members = vec![
            ("count".to_string(), Json::from(self.count)),
            ("sum".to_string(), Json::from(self.sum)),
            ("max".to_string(), Json::from(self.max)),
        ];
        // Only nonzero buckets, as {"lt": upper_bound, "n": count} pairs;
        // the last bucket has no finite upper bound.
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lt = if i >= 64 {
                    Json::Null
                } else {
                    Json::from(1u64 << i)
                };
                vec![("lt".to_string(), lt), ("n".to_string(), Json::from(n))]
                    .into_iter()
                    .collect()
            })
            .collect();
        members.push(("buckets".to_string(), Json::Arr(buckets)));
        Json::Obj(members)
    }
}

/// Point-in-time copy of one span aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnap {
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time copy of every registered metric — the repo's telemetry
/// interchange type: [`crate::snapshot`] produces it, the driver attaches it
/// to inference reports, and sinks serialize it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanSnap>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistSnap>,
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&k, c)| (k.to_string(), c.get()))
        .collect();
    let spans = reg
        .spans
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&k, s)| {
            (
                k.to_string(),
                SpanSnap {
                    count: s.count(),
                    total_ns: s.total_ns(),
                    max_ns: s.max_ns.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&k, h)| (k.to_string(), h.snap()))
        .collect();
    Snapshot {
        counters,
        spans,
        histograms,
    }
}

impl Snapshot {
    /// The metrics accumulated since `earlier`: every counter, span, and
    /// histogram value minus its value in the earlier snapshot (metrics
    /// absent earlier are kept whole). All metrics are monotone, so the
    /// difference is well defined.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v - earlier.counters.get(k).copied().unwrap_or(0)))
            .filter(|(_, v)| *v > 0)
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| {
                let e = earlier.spans.get(k).copied().unwrap_or_default();
                (
                    k.clone(),
                    SpanSnap {
                        count: s.count - e.count,
                        total_ns: s.total_ns - e.total_ns,
                        max_ns: s.max_ns, // max is not differentiable; keep current
                    },
                )
            })
            .filter(|(_, s)| s.count > 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let e = earlier.histograms.get(k).cloned().unwrap_or_default();
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| n - e.buckets.get(i).copied().unwrap_or(0))
                    .collect();
                (
                    k.clone(),
                    HistSnap {
                        count: h.count - e.count,
                        sum: h.sum.wrapping_sub(e.sum),
                        max: h.max,
                        buckets,
                    },
                )
            })
            .filter(|(_, h): &(String, HistSnap)| h.count > 0)
            .collect();
        Snapshot {
            counters,
            spans,
            histograms,
        }
    }

    /// The counters whose names start with `prefix`, in name order — used by
    /// subsystem summaries (e.g. `sherlock explore` prints every
    /// `explore.`-prefixed counter it accumulated).
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Serializes the snapshot (the `"telemetry"` JSON schema documented in
    /// README.md: `counters`, `spans`, and `histograms` objects by name).
    pub fn to_json(&self) -> Json {
        let counters: Json = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect();
        let spans: Json = self
            .spans
            .iter()
            .map(|(k, s)| {
                let obj: Json = vec![
                    ("count", Json::from(s.count)),
                    ("total_ns", Json::from(s.total_ns)),
                    ("max_ns", Json::from(s.max_ns)),
                ]
                .into_iter()
                .collect();
                (k.clone(), obj)
            })
            .collect();
        let histograms: Json = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        vec![
            ("counters", counters),
            ("spans", spans),
            ("histograms", histograms),
        ]
        .into_iter()
        .collect()
    }

    /// Renders a human-readable per-phase time/count breakdown (the
    /// `sherlock infer --profile` table). `wall_ns` is the caller-measured
    /// wall time the phase percentages are computed against.
    pub fn render_profile(&self, wall_ns: u64) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12} {:>7}",
            "phase", "count", "total", "mean", "% wall"
        );
        let mut phase_total = 0u64;
        for (name, s) in &self.spans {
            if !name.starts_with("phase.") {
                continue;
            }
            phase_total += s.total_ns;
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>12} {:>12} {:>6.1}%",
                name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.total_ns.checked_div(s.count).unwrap_or(0)),
                pct(s.total_ns, wall_ns),
            );
        }
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12} {:>6.1}%",
            "(sum of phases)",
            "",
            fmt_ns(phase_total),
            "",
            pct(phase_total, wall_ns),
        );
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12}",
            "(wall clock)",
            "",
            fmt_ns(wall_ns)
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\n{:<40} {:>14}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<40} {v:>14}");
            }
        }
        out
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Interns a counter once per call site and caches the handle in a static,
/// making repeated access a single relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// Interns a histogram once per call site and caches the handle in a static.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 62) - 1), 62);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::default();
        for v in [0, 1, 1, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), u64::MAX);
        let s = h.snap();
        assert_eq!(s.buckets[0], 1); // the 0
        assert_eq!(s.buckets[1], 2); // the 1s
        assert_eq!(s.buckets[2], 1); // the 3
        assert_eq!(s.buckets[11], 1); // 1024 ∈ [2^10, 2^11)
        assert_eq!(s.buckets[64], 1); // u64::MAX
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn counters_increment_concurrently() {
        let c = counter("test.concurrent");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn interning_returns_same_handle() {
        let a = counter("test.interned") as *const Counter;
        let b = counter("test.interned") as *const Counter;
        assert_eq!(a, b);
        let c = counter!("test.interned.macro");
        c.add(2);
        assert_eq!(counter("test.interned.macro").get(), 2);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let c = counter("test.delta");
        c.add(5);
        let before = snapshot();
        c.add(7);
        histogram("test.delta.hist").observe(9);
        let d = snapshot().delta(&before);
        assert_eq!(d.counters.get("test.delta"), Some(&7));
        assert_eq!(
            d.histograms.get("test.delta.hist").map(|h| h.count),
            Some(1)
        );
        // Unchanged metrics are dropped from the delta.
        assert!(!d.counters.contains_key("test.concurrent") || d.counters["test.concurrent"] > 0);
    }

    #[test]
    fn counters_with_prefix_filters_and_sorts() {
        counter("test.prefix.b").add(2);
        counter("test.prefix.a").add(1);
        counter("test.other").add(9);
        let got = snapshot().counters_with_prefix("test.prefix.");
        let names: Vec<&str> = got.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["test.prefix.a", "test.prefix.b"]);
    }

    #[test]
    fn quantiles_from_buckets() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000, 5000] {
            h.observe(v);
        }
        let snap = snapshot();
        // Use a fresh named histogram to avoid cross-test registry noise.
        let q = histogram("test.quantile");
        for v in 1..=100u64 {
            q.observe(v);
        }
        drop(snap);
        let hs = snapshot().histograms["test.quantile"].clone();
        assert_eq!(hs.quantile(0.0), 1, "q0 lands in the first bucket");
        assert_eq!(hs.quantile(1.0), 100, "q1 is clamped to max");
        // p50 of 1..=100 is 50; bucket upper bound 63 is within 2x.
        let p50 = hs.quantile(0.5);
        assert!((50..=63).contains(&p50), "p50 ~ 50..63, got {p50}");
        assert_eq!(HistSnap::default().quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn snapshot_json_shape() {
        counter("test.json").add(3);
        let j = snapshot().to_json();
        assert_eq!(
            j.get("counters")
                .unwrap()
                .get("test.json")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert!(j.get("spans").is_some());
        assert!(j.get("histograms").is_some());
    }
}
