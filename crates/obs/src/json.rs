//! A minimal JSON value tree, writer, and recursive-descent parser.
//!
//! The build environment has no registry access, so SherLock-rs cannot use
//! `serde`; this module is the hand-rolled substitute every crate shares for
//! machine-readable output (trace files, inference reports, JSONL telemetry,
//! `BENCH_*.json`). It implements the full RFC 8259 escape set on the writer
//! side and accepts standard JSON (including `\uXXXX` escapes and surrogate
//! pairs) on the parser side.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Numbers are stored as `f64`; the integers SherLock serializes (virtual
/// times, counters, object ids) stay well under 2^53, where `f64` is exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match), or `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a nonnegative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax error, with a byte
    /// offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + 1 {
                        out.push_str("  ");
                    }
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..indent + 1 {
                        out.push_str("  ");
                    }
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl<K: Into<String>, V: Into<Json>> FromIterator<(K, V)> for Json {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Json {
        Json::Obj(
            iter.into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }
}

impl<V: Into<Json>> From<Vec<V>> for Json {
    fn from(items: Vec<V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<V: Clone + Into<Json>> From<&BTreeMap<String, V>> for Json {
    fn from(map: &BTreeMap<String, V>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), v.clone().into()))
                .collect(),
        )
    }
}

/// Writes `n` the way JSON expects: integers without a fraction, everything
/// else via Rust's shortest-roundtrip float formatting. Non-finite values
/// (which JSON cannot represent) render as `null`.
fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Appends `s` as a JSON string literal (with surrounding quotes), escaping
/// quotes, backslashes, and control characters per RFC 8259.
pub fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_quotes_backslashes_controls() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\r\u{08}\u{0C}\u{01}ü");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\r\\b\\f\\u0001ü\"");
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "quote:\" backslash:\\ newline:\n nul:\u{0} bell:\u{7} unicode:héλ🙂";
        let rendered = Json::Str(nasty.to_string()).render();
        assert_eq!(
            Json::parse(&rendered).unwrap(),
            Json::Str(nasty.to_string())
        );
    }

    #[test]
    fn parses_standard_document() {
        let v =
            Json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": true}, "e": "s"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("s"));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""é🙂""#).unwrap(),
            Json::Str("é🙂".to_string())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#""\q""#).is_err());
    }

    #[test]
    fn numbers_render_as_integers_when_integral() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn render_parse_round_trip() {
        let v: Json = vec![
            ("name", Json::from("windows.extracted")),
            ("value", Json::from(42u64)),
            ("nested", Json::Arr(vec![Json::Bool(false), Json::Null])),
        ]
        .into_iter()
        .collect();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }
}
