//! RAII nested spans with wall-clock timing.
//!
//! [`span`] returns a guard; dropping it records the elapsed wall time into
//! the span's process-wide aggregate ([`crate::Snapshot::spans`]) and, when a
//! JSONL sink is installed, emits one `{"type":"span", ...}` line. Nesting is
//! tracked per thread: each guard knows its depth, so a trace consumer can
//! reconstruct the tree from `(thread, depth, start_us, dur_us)`.

use std::cell::Cell;
use std::time::Instant;

use crate::metrics::{span_stat, SpanStat};
use crate::sink;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Microseconds since the process's telemetry epoch (first use).
pub fn epoch_micros() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Live guard for one span; see [`span`].
pub struct SpanGuard {
    name: &'static str,
    stat: &'static SpanStat,
    start: Instant,
    start_us: u64,
    depth: usize,
}

/// Opens a span named `name`; the returned guard closes it on drop.
///
/// ```
/// {
///     let _solve = sherlock_obs::span("phase.solve");
///     // ... timed work ...
/// } // recorded here
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        name,
        stat: span_stat(name),
        start: Instant::now(),
        start_us: epoch_micros(),
        depth,
    }
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let ns = self.start.elapsed().as_nanos() as u64;
        self.stat.record(ns);
        if sink::jsonl_enabled() {
            let mut line = String::with_capacity(128);
            line.push_str("{\"type\":\"span\",\"name\":");
            crate::json::write_escaped(&mut line, self.name);
            line.push_str(",\"thread\":");
            let t = std::thread::current();
            crate::json::write_escaped(&mut line, t.name().unwrap_or("?"));
            use std::fmt::Write;
            let _ = write!(
                line,
                ",\"depth\":{},\"start_us\":{},\"dur_us\":{}}}",
                self.depth,
                self.start_us,
                ns / 1_000,
            );
            sink::jsonl_line(&line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot;

    #[test]
    fn spans_nest_and_time_monotonically() {
        let before = snapshot();
        {
            let outer = span("test.outer");
            assert_eq!(outer.depth, 0);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let inner = span("test.inner");
                assert_eq!(inner.depth, 1);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let d = snapshot().delta(&before);
        let outer = d.spans.get("test.outer").copied().unwrap();
        let inner = d.spans.get("test.inner").copied().unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The outer span strictly contains the inner one.
        assert!(outer.total_ns >= inner.total_ns);
        // Both saw their sleeps.
        assert!(inner.total_ns >= 1_000_000);
        assert!(outer.total_ns >= 3_000_000);
    }

    #[test]
    fn depth_recovers_after_drop() {
        {
            let _a = span("test.depth.a");
            {
                let _b = span("test.depth.b");
            }
            let c = span("test.depth.c");
            assert_eq!(c.depth, 1);
        }
        let d = span("test.depth.d");
        assert_eq!(d.depth, 0);
    }

    #[test]
    fn epoch_is_monotone() {
        let a = epoch_micros();
        let b = epoch_micros();
        assert!(b >= a);
    }
}
