//! RAII nested spans with wall-clock timing.
//!
//! [`span`] returns a guard; dropping it records the elapsed wall time into
//! the span's process-wide aggregate ([`crate::Snapshot::spans`]) **and**
//! into the per-stack-path aggregate ([`crate::Snapshot::stacks`], keyed by
//! the `;`-joined ancestry, e.g. `serve.request;phase.solve;lp.simplex`) —
//! the collapsed-stack data behind [`crate::Snapshot::render_folded`]. When
//! a JSONL sink is installed, dropping also emits one
//! `{"type":"span", ...}` line carrying the thread, depth, timing, and the
//! active [`crate::TraceCtx`] fields (`trace_id`/`session`/`seq`), so a
//! consumer can reconstruct the span tree of one request from
//! `(trace_id, thread, depth, start_us, dur_us)`.

use std::cell::RefCell;
use std::time::Instant;

use crate::metrics::{span_stat, stack_record, SpanStat};
use crate::sink;
use crate::trace_ctx::current_trace;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Microseconds since the process's telemetry epoch (first use).
pub fn epoch_micros() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Live guard for one span; see [`span`].
pub struct SpanGuard {
    name: &'static str,
    stat: &'static SpanStat,
    start: Instant,
    start_us: u64,
    depth: usize,
}

/// Opens a span named `name`; the returned guard closes it on drop.
///
/// ```
/// {
///     let _solve = sherlock_obs::span("phase.solve");
///     // ... timed work ...
/// } // recorded here
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    let depth = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.len() - 1
    });
    SpanGuard {
        name,
        stat: span_stat(name),
        start: Instant::now(),
        start_us: epoch_micros(),
        depth,
    }
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nesting depth at open time (0 = root).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.stat.record(ns);
        // The `;`-joined ancestry including this span, for the folded view.
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let path = s.join(";");
            s.pop();
            path
        });
        stack_record(path, ns);
        if sink::jsonl_enabled() {
            let mut line = String::with_capacity(160);
            line.push_str("{\"type\":\"span\",\"name\":");
            crate::json::write_escaped(&mut line, self.name);
            line.push_str(",\"thread\":");
            let t = std::thread::current();
            crate::json::write_escaped(&mut line, t.name().unwrap_or("?"));
            use std::fmt::Write;
            let _ = write!(
                line,
                ",\"depth\":{},\"start_us\":{},\"dur_us\":{}",
                self.depth,
                self.start_us,
                ns / 1_000,
            );
            if let Some(ctx) = current_trace() {
                ctx.write_fields(&mut line);
            }
            line.push('}');
            sink::jsonl_line(&line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot;

    #[test]
    fn spans_nest_and_time_monotonically() {
        let before = snapshot();
        {
            let outer = span("test.outer");
            assert_eq!(outer.depth, 0);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let inner = span("test.inner");
                assert_eq!(inner.depth, 1);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let d = snapshot().delta(&before);
        let outer = d.spans.get("test.outer").copied().unwrap();
        let inner = d.spans.get("test.inner").copied().unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The outer span strictly contains the inner one.
        assert!(outer.total_ns >= inner.total_ns);
        // Both saw their sleeps.
        assert!(inner.total_ns >= 1_000_000);
        assert!(outer.total_ns >= 3_000_000);
    }

    #[test]
    fn depth_recovers_after_drop() {
        {
            let _a = span("test.depth.a");
            {
                let _b = span("test.depth.b");
            }
            let c = span("test.depth.c");
            assert_eq!(c.depth, 1);
        }
        let d = span("test.depth.d");
        assert_eq!(d.depth, 0);
    }

    #[test]
    fn stacks_aggregate_by_path() {
        let before = snapshot();
        {
            let _a = span("test.stack.root");
            {
                let _b = span("test.stack.leaf");
            }
            {
                let _b = span("test.stack.leaf");
            }
        }
        let d = snapshot().delta(&before);
        let root = d.stacks.get("test.stack.root").copied().unwrap();
        let leaf = d
            .stacks
            .get("test.stack.root;test.stack.leaf")
            .copied()
            .unwrap();
        assert_eq!(root.count, 1);
        assert_eq!(leaf.count, 2);
        assert!(root.total_ns >= leaf.total_ns);
    }

    #[test]
    fn epoch_is_monotone() {
        let a = epoch_micros();
        let b = epoch_micros();
        assert!(b >= a);
    }
}
