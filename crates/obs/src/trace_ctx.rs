//! Request-scoped trace context and structured flight-recorder events.
//!
//! A [`TraceCtx`] names one causal unit of work — a serve request, a CLI
//! invocation, a bench iteration: a process-unique `trace_id` plus the
//! session key and per-connection sequence number when there is one. The
//! context is carried in a thread-local and installed with RAII scopes
//! ([`trace_scope`]), so it survives hops across worker threads as long as
//! each hop re-enters the scope: the serve reader mints the id at
//! connection accept, stamps it on every admitted job, and the worker that
//! picks the job up re-enters the scope before touching the session.
//!
//! While a scope is active, every JSONL span line and every [`event`]
//! record carries `trace_id` (+ `session`/`seq` when set), which is what
//! lets a consumer reconstruct one request end-to-end across the admission
//! queue, per-session mailboxes, and worker pool — the spans form a tree
//! (via `thread`/`depth`/`start_us`) and the tree is keyed by `trace_id`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{write_escaped, Json};
use crate::sink;
use crate::span::epoch_micros;

/// The causal identity of one unit of work.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceCtx {
    /// Process-unique trace id (see [`mint_trace_id`]); 0 means "unset".
    pub trace_id: u64,
    /// Session key the work targets, when there is one.
    pub session: Option<String>,
    /// Request sequence number within the trace (per-connection order).
    pub seq: Option<u64>,
}

impl TraceCtx {
    /// A freshly minted root context with no session/seq.
    pub fn mint() -> TraceCtx {
        TraceCtx {
            trace_id: mint_trace_id(),
            session: None,
            seq: None,
        }
    }

    /// This context with the session key set.
    #[must_use]
    pub fn with_session(mut self, session: impl Into<String>) -> TraceCtx {
        self.session = Some(session.into());
        self
    }

    /// This context with the sequence number set.
    #[must_use]
    pub fn with_seq(mut self, seq: u64) -> TraceCtx {
        self.seq = Some(seq);
        self
    }

    /// Appends `,"trace_id":N[,"session":S][,"seq":N]` to a JSONL line
    /// under construction.
    pub(crate) fn write_fields(&self, line: &mut String) {
        use std::fmt::Write;
        let _ = write!(line, ",\"trace_id\":{}", self.trace_id);
        if let Some(s) = &self.session {
            line.push_str(",\"session\":");
            write_escaped(line, s);
        }
        if let Some(seq) = self.seq {
            let _ = write!(line, ",\"seq\":{seq}");
        }
    }
}

/// Mints a process-unique trace id (monotone from 1; never 0).
pub fn mint_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
}

/// The trace context active on this thread, if any.
pub fn current_trace() -> Option<TraceCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Live guard for one installed context; see [`trace_scope`].
pub struct TraceScope {
    previous: Option<TraceCtx>,
}

/// Installs `ctx` as this thread's trace context until the returned guard
/// drops (the previous context, if any, is restored — scopes nest).
pub fn trace_scope(ctx: TraceCtx) -> TraceScope {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    TraceScope { previous }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let prev = self.previous.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Emits one structured flight-recorder record to the JSONL sink:
/// `{"type":"event","name":...,"t_us":...,"thread":...,<trace ctx>,<fields>}`.
///
/// No-op (one atomic load) when the sink is disabled, so callers on warm
/// paths may build `fields` lazily behind [`crate::jsonl_enabled`] but need
/// not for per-solve/per-request cadence.
pub fn event(name: &str, fields: &[(&str, Json)]) {
    if !sink::jsonl_enabled() {
        return;
    }
    let mut line = String::with_capacity(128);
    line.push_str("{\"type\":\"event\",\"name\":");
    write_escaped(&mut line, name);
    use std::fmt::Write;
    let _ = write!(line, ",\"t_us\":{}", epoch_micros());
    line.push_str(",\"thread\":");
    let t = std::thread::current();
    write_escaped(&mut line, t.name().unwrap_or("?"));
    if let Some(ctx) = current_trace() {
        ctx.write_fields(&mut line);
    }
    for (k, v) in fields {
        line.push(',');
        write_escaped(&mut line, k);
        line.push(':');
        line.push_str(&v.render());
    }
    line.push('}');
    sink::jsonl_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_trace(), None);
        let outer = TraceCtx::mint().with_session("s1");
        {
            let _a = trace_scope(outer.clone());
            assert_eq!(current_trace(), Some(outer.clone()));
            {
                let inner = TraceCtx::mint().with_seq(4);
                let _b = trace_scope(inner.clone());
                assert_eq!(current_trace(), Some(inner));
            }
            assert_eq!(current_trace(), Some(outer.clone()));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn ctx_fields_render_as_json_suffix() {
        let ctx = TraceCtx {
            trace_id: 7,
            session: Some("a\"b".to_string()),
            seq: Some(2),
        };
        let mut line = String::from("{\"x\":1");
        ctx.write_fields(&mut line);
        line.push('}');
        let doc = Json::parse(&line).expect("valid json");
        assert_eq!(doc.get("trace_id").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("session").unwrap().as_str(), Some("a\"b"));
        assert_eq!(doc.get("seq").unwrap().as_u64(), Some(2));
    }
}
