//! App-8 — `Query` (modeled on System.Linq.Dynamic, paper Table 1/9).
//!
//! A tiny dynamic-class factory: a static constructor builds the factory,
//! a `ReaderWriterLock` guards the class table, and worker tasks are spawned
//! through `TaskFactory.StartNew`. The interesting wrinkle is
//! `UpgradeToWriterLock`, which releases a reader lock *and* acquires the
//! writer lock inside one API — the violation of SherLock's Single-Role
//! assumption behind the paper's Double-Roles false positives (§5.5).

use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{RwLock, SimThread, StaticCtor, Task, TracedVar};
use sherlock_trace::Time;

use crate::app::{app_begin, app_end, lib_site, App, GroundTruth, SyncGroup};

const FACTORY: &str = "System.Linq.Dynamic.ClassFactory";
const TESTS: &str = "System.Linq.Dynamic.Test.DynamicExpressionTests";
const RW: &str = "System.Threading.ReaderWriterLock";

#[derive(Clone)]
struct ClassFactory {
    cctor: StaticCtor,
    table: TracedVar<u64>,
    class_count: TracedVar<u32>,
    module_builder: TracedVar<u32>,
    generated_types: TracedVar<u32>,
    lock: RwLock,
}

impl ClassFactory {
    fn new() -> Self {
        ClassFactory {
            cctor: StaticCtor::new(FACTORY),
            table: TracedVar::new(FACTORY, "classTable", 0),
            class_count: TracedVar::new(FACTORY, "classCount", 0),
            module_builder: TracedVar::new(FACTORY, "moduleBuilder", 0),
            generated_types: TracedVar::new(FACTORY, "generatedTypes", 0),
            lock: RwLock::new(),
        }
    }

    /// Looks a dynamic class up, creating it under the writer lock on miss —
    /// the paper's `GetDynamicClass` ("first access after static ctor").
    fn get_dynamic_class(&self, signature: u64) -> u32 {
        // CLR semantics: the static constructor completes before any method
        // of the class enters, so the ensure-blocking happens at the call
        // site and GetDynamicClass-Begin follows .cctor-End.
        self.cctor.ensure(|| {
            self.table.set(0x1234);
            self.module_builder.set(1);
            self.generated_types.set(0);
        });
        let this = self.clone();
        api::app_method(FACTORY, "GetDynamicClass", self.table.object(), move || {
            let _ = this.module_builder.get();
            let _ = this.generated_types.get();
            this.lock.acquire_reader_lock();
            let present = this.table.get() & signature != 0;
            let count = if !present {
                this.lock.upgrade_to_writer_lock();
                this.table.set(this.table.get() | signature);
                let c = this.class_count.update(|c| c + 1);
                this.lock.downgrade_from_writer_lock();
                c
            } else {
                this.class_count.get()
            };
            this.lock.release_reader_lock();
            count
        })
    }
}

fn tests() -> Vec<TestCase> {
    let mut tests = Vec::new();

    // The paper's CreateClass_TheadSafe [sic] test: several threads create
    // classes concurrently through the reader/writer lock.
    tests.push(TestCase::new("create_class_thread_safe", || {
        let factory = ClassFactory::new();
        let mut threads = Vec::new();
        for i in 0..3u64 {
            let f = factory.clone();
            threads.push(SimThread::start(
                TESTS,
                "<CreateClass_TheadSafe>",
                move || {
                    f.get_dynamic_class(1 << i);
                    f.get_dynamic_class(1 << i); // hit path takes reader only
                },
            ));
        }
        for t in threads {
            t.join();
        }
    }));

    // Dynamic queries dispatched through TaskFactory.StartNew (Table 9 lists
    // StartNew as this app's release).
    tests.push(TestCase::new("start_new_parses_queries", || {
        let factory = ClassFactory::new();
        let result = TracedVar::new(TESTS, "parseResult", 0u32);
        let duration = TracedVar::new(TESTS, "parseDuration", 0u32);
        let plan = TracedVar::new(TESTS, "queryPlan", 0u64);
        plan.set(0xCAFE); // prepared by the test before dispatch
        let (f2, r2, d2, p2) = (
            factory.clone(),
            result.clone(),
            duration.clone(),
            plan.clone(),
        );
        let task = Task::start_new(TESTS, "ParseWorker", move || {
            assert_eq!(p2.get(), 0xCAFE);
            let c = f2.get_dynamic_class(0b1000);
            r2.set(c);
            d2.set(17);
        });
        task.wait();
        for _ in 0..3 {
            assert!(result.get() >= 1);
            assert_eq!(duration.get(), 17);
        }
    }));

    // A second StartNew dispatch over different fields: the shared
    // TaskFactory ops become the economical cross-test explanation.
    tests.push(TestCase::new("start_new_compiles_expressions", || {
        let compiled = TracedVar::new(TESTS, "compiledCount", 0u32);
        let cache_hits = TracedVar::new(TESTS, "expressionCacheHits", 0u32);
        let (c2, h2) = (compiled.clone(), cache_hits.clone());
        let task = Task::start_new(TESTS, "CompileWorker", move || {
            c2.set(3);
            h2.set(1);
        });
        task.wait();
        for _ in 0..3 {
            assert_eq!(compiled.get(), 3);
            assert_eq!(cache_hits.get(), 1);
        }
    }));

    // A single-threaded parser path: realistic tests that produce no
    // conflicting accesses at all.
    tests.push(TestCase::new("parser_single_threaded", || {
        let factory = ClassFactory::new();
        let c = factory.get_dynamic_class(0b1);
        assert_eq!(c, 1);
        api::sleep(Time::from_millis(1));
        assert_eq!(factory.get_dynamic_class(0b1), 1);
    }));

    tests
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    t.sync_groups = vec![
        SyncGroup::new(
            "create new Task",
            Role::Release,
            lib_site("System.Threading.Tasks.TaskFactory", "StartNew"),
        ),
        SyncGroup::new(
            "end of static constructor",
            Role::Release,
            app_end(FACTORY, ".cctor"),
        ),
        SyncGroup::new(
            "release lock (downgrade/release writer)",
            Role::Release,
            [
                lib_site(RW, "DowngradeFromWriterLock"),
                lib_site(RW, "ReleaseWriterLock"),
                lib_site(RW, "ReleaseReaderLock"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "first access after static constructor",
            Role::Acquire,
            app_begin(FACTORY, "GetDynamicClass"),
        ),
        SyncGroup::new(
            "start of thread",
            Role::Acquire,
            [
                app_begin(TESTS, "<CreateClass_TheadSafe>"),
                app_begin(TESTS, "ParseWorker"),
                app_begin(TESTS, "CompileWorker"),
                lib_site("System.Threading.Tasks.Task", "Wait"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of worker delegates (join edge)",
            Role::Release,
            [
                app_end(TESTS, "ParseWorker"),
                app_end(TESTS, "CompileWorker"),
                app_end(TESTS, "<CreateClass_TheadSafe>"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "require lock (upgrade/acquire writer)",
            Role::Acquire,
            [
                lib_site(RW, "UpgradeToWriterLock"),
                lib_site(RW, "AcquireWriterLock"),
                lib_site(RW, "AcquireReaderLock"),
            ]
            .concat(),
        ),
    ];
    // `UpgradeToWriterLock` also *releases* — SherLock's Single-Role
    // assumption forbids inferring both, so one side shows up as a
    // misclassification (the Double-Roles row of paper Table 4); whatever is
    // inferred instead of the suppressed side lands in Not-Sync.
    t.delegates = vec![
        (TESTS.into(), "<CreateClass_TheadSafe>".into()),
        (TESTS.into(), "ParseWorker".into()),
    ];
    t
}

/// Builds App-8.
pub fn app() -> App {
    App {
        id: "App-8",
        name: "Query",
        loc: include_str!("app8_query.rs").lines().count(),
        tests: tests(),
        truth: truth(),
    }
}

#[cfg(test)]
mod tests_mod {
    use super::*;
    use sherlock_sim::SimConfig;

    #[test]
    fn all_tests_run_clean() {
        for (i, t) in app().tests.iter().enumerate() {
            let r = t.run(SimConfig::with_seed(800 + i as u64));
            assert!(r.is_clean(), "test {} failed: {:?}", t.name(), r.panics);
        }
    }

    #[test]
    fn factory_counts_distinct_classes() {
        let r = sherlock_sim::Sim::new(SimConfig::with_seed(808)).run(|| {
            let f = ClassFactory::new();
            assert_eq!(f.get_dynamic_class(0b1), 1);
            assert_eq!(f.get_dynamic_class(0b10), 2);
            assert_eq!(f.get_dynamic_class(0b1), 2);
        });
        assert!(r.is_clean(), "{:?}", r.panics);
    }
}
