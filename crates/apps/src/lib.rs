//! The benchmark suite for SherLock-rs: eight applications modeled on the
//! paper's Table 1 suite, each with a unit-test workload and a
//! machine-readable ground truth.
//!
//! The paper evaluates on open-source C# projects; this crate substitutes
//! synthetic applications exercising the same synchronization idioms those
//! projects contain (per paper Tables 8–9): monitor locks, fork/join
//! threads, tasks and continuations, thread pools, events and semaphores,
//! reader-writer locks (including the Single-Role-violating
//! `UpgradeToWriterLock`), dataflow blocks, flag variables and spin loops,
//! static constructors, finalizers/dispose, `GetOrAdd` delegates,
//! test-framework initialization ordering — plus seeded data races and
//! instrumentation-hidden helpers that reproduce the paper's
//! misclassification categories.
//!
//! # Example
//!
//! ```
//! use sherlock_apps::all_apps;
//!
//! let apps = all_apps();
//! assert_eq!(apps.len(), 8);
//! assert!(apps.iter().all(|a| a.num_tests() >= 3));
//! ```

mod app;

pub mod app1_telemetry;
pub mod app2_datetime;
pub mod app3_assertions;
pub mod app4_k8sclient;
pub mod app5_broker;
pub mod app6_httpclient;
pub mod app7_statsd;
pub mod app8_query;

pub use app::{
    app_begin, app_end, field_read, field_write, lib_site, App, GroundTruth, SyncGroup, Verdict,
};

/// Builds the full suite, App-1 through App-8.
pub fn all_apps() -> Vec<App> {
    vec![
        app1_telemetry::app(),
        app2_datetime::app(),
        app3_assertions::app(),
        app4_k8sclient::app(),
        app5_broker::app(),
        app6_httpclient::app(),
        app7_statsd::app(),
        app8_query::app(),
    ]
}

/// Looks an application up by its paper id (`"App-3"`) or name.
pub fn app_by_id(id: &str) -> Option<App> {
    all_apps()
        .into_iter()
        .find(|a| a.id.eq_ignore_ascii_case(id) || a.name.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_ids_are_paper_ordered() {
        let ids: Vec<_> = all_apps().iter().map(|a| a.id).collect();
        assert_eq!(
            ids,
            ["App-1", "App-2", "App-3", "App-4", "App-5", "App-6", "App-7", "App-8"]
        );
    }

    #[test]
    fn lookup_by_id_and_name() {
        assert_eq!(app_by_id("App-5").unwrap().name, "Broker");
        assert_eq!(app_by_id("statsd").unwrap().id, "App-7");
        assert!(app_by_id("App-9").is_none());
    }

    #[test]
    fn every_app_has_ground_truth() {
        for a in all_apps() {
            assert!(!a.truth.sync_groups.is_empty(), "{} has no truth", a.id);
            assert!(a.loc > 50, "{} suspiciously small", a.id);
        }
    }

    #[test]
    fn seeded_races_only_where_documented() {
        for a in all_apps() {
            let has_races = !a.truth.race_locations.is_empty();
            let expected = matches!(a.id, "App-1" | "App-5" | "App-7");
            assert_eq!(has_races, expected, "{}", a.id);
        }
    }
}
