//! App-7 — `Statsd` (modeled on Stastd, paper Table 1/Fig 3.A/3.D).
//!
//! A metrics daemon: a dataflow block parses posted events on its own
//! consumer thread (Fig. 3.A — `Post` releases into the handler, `Receive`
//! acquires the handler's output), task continuations chain aggregation
//! after parsing (Fig. 3.D), and two seeded racy counters — one of which
//! fails a test assertion under unlucky interleavings, matching the paper's
//! observation that two seeded races are *harmful* (§5.5).

use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{DataflowBlock, Task, TracedVar, UnsafeList};
use sherlock_trace::{OpRef, Time};

use crate::app::{
    app_begin, app_end, field_read, field_write, lib_site, App, GroundTruth, SyncGroup,
};

const PARSER: &str = "Stastd.MessageParser";
const AGG: &str = "Stastd.Aggregator";
const STATS: &str = "Stastd.Statistics";
const DATAFLOW: &str = "System.Threading.Tasks.Dataflow.DataflowBlock";

fn tests() -> Vec<TestCase> {
    let mut tests = Vec::new();

    // Fig. 3.A: _block.Post(e) … Messagehandler(e) … _block.Receive().
    tests.push(TestCase::new("dataflow_parse_pipeline", || {
        let parsed = TracedVar::new(PARSER, "parsedCount", 0u32);
        let bytes = TracedVar::new(PARSER, "byteTotal", 0u32);
        let (p2, b2) = (parsed.clone(), bytes.clone());
        let block = DataflowBlock::new(PARSER, "Messagehandler", move |x: u32| {
            p2.update(|c| c + 1);
            b2.update(|b| b + x);
            x * 10
        });
        for i in 1..=3 {
            block.post(i);
        }
        let mut total = 0;
        for _ in 0..3 {
            total += block.receive();
        }
        assert_eq!(total, 60);
        api::sleep(Time::from_millis(18)); // flush interval
        for _ in 0..4 {
            assert_eq!(parsed.get(), 3);
            assert_eq!(bytes.get(), 6);
        }
    }));

    // Fig. 3.D: task a1, then a2 = a1.ContinueWith(...).
    tests.push(TestCase::new("continuation_aggregation", || {
        let bucket = TracedVar::new(AGG, "bucketTotal", 0u32);
        let samples = TracedVar::new(AGG, "bucketSamples", 0u32);
        let (b1, s1) = (bucket.clone(), samples.clone());
        let a1 = Task::run(AGG, "<ParseMetrics>a1", move || {
            b1.set(21);
            s1.set(3);
        });
        let (b2, s2) = (bucket.clone(), samples.clone());
        let a2 = a1.continue_with(AGG, "<AggregateMetrics>a2", move || {
            let v = b2.get();
            let _ = s2.get();
            b2.set(v * 2);
        });
        a2.wait();
        assert_eq!(bucket.get(), 42);
        assert_eq!(samples.get(), 3);
    }));

    // Seeded race pair #1: flushCount is updated unsynchronized from the
    // flusher thread and the main thread. The assertion can fail when an
    // update is lost — a *harmful* race.
    tests.push(TestCase::new("racy_flush_count", || {
        let flush_count = TracedVar::new(STATS, "flushCount", 0u32);
        let metrics_log: UnsafeList<u32> = UnsafeList::new();
        let (f2, m2) = (flush_count.clone(), metrics_log.clone());
        let t = Task::run(STATS, "FlushWorker", move || {
            f2.update(|x| x + 1);
            m2.add(1); // unsynchronized List.Add — a thread-safety violation
        });
        flush_count.update(|x| x + 1);
        metrics_log.add(2);
        t.wait();
        // Harmful: lost updates make this fire under some interleavings.
        sherlock_sim::prims::testfx::Assert::are_equal(
            flush_count.get(),
            2,
            "flush count lost an update",
        );
    }));

    // Seeded race pair #2: the gauge snapshot is written by a task and the
    // main thread concurrently (write/write), behind task-ordered setup that
    // Manual_dr cannot see.
    tests.push(TestCase::new("racy_gauge_snapshot", || {
        let snapshot = TracedVar::new(STATS, "snapshotBuffer", 0u32);
        let s2 = snapshot.clone();
        let setup = Task::run(STATS, "SnapshotSetup", move || {
            s2.set(1);
        });
        setup.wait();
        snapshot.get();
        let gauge = TracedVar::new(STATS, "gaugeValue", 0u32);
        let g2 = gauge.clone();
        let t = Task::run(STATS, "GaugeWriter", move || {
            for i in 0..4 {
                g2.set(i);
            }
        });
        for i in 10..14 {
            gauge.set(i);
        }
        t.wait();
    }));

    // Dataflow feeding a continuation: both idioms in one pipeline.
    tests.push(TestCase::new("pipeline_with_continuation", || {
        let sink = TracedVar::new(AGG, "sinkTotal", 0u32);
        let water_mark = TracedVar::new(AGG, "sinkWaterMark", 0u32);
        let block = DataflowBlock::new(PARSER, "Messagehandler2", |x: u32| x + 1);
        block.post(9);
        let received = block.receive();
        let (s2, w2) = (sink.clone(), water_mark.clone());
        let publish = Task::run(AGG, "<Publish>a1", move || {
            s2.set(received);
            w2.set(received + 1);
        });
        let (s3, w3) = (sink.clone(), water_mark.clone());
        let verify = publish.continue_with(AGG, "<Verify>a2", move || {
            assert_eq!(s3.get(), 10);
            assert_eq!(w3.get(), 11);
        });
        verify.wait();
    }));

    tests
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    t.sync_groups = vec![
        SyncGroup::new(
            "post event (producer)",
            Role::Release,
            lib_site(DATAFLOW, "Post"),
        ),
        SyncGroup::new(
            "receive result (consumer)",
            Role::Acquire,
            lib_site(DATAFLOW, "Receive"),
        ),
        SyncGroup::new(
            "start of message handler",
            Role::Acquire,
            [
                app_begin(PARSER, "Messagehandler"),
                app_begin(PARSER, "Messagehandler2"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of message handler",
            Role::Release,
            [
                app_end(PARSER, "Messagehandler"),
                app_end(PARSER, "Messagehandler2"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of antecedent task (a1)",
            Role::Release,
            [
                app_end(AGG, "<ParseMetrics>a1"),
                app_end(AGG, "<Publish>a1"),
                lib_site("System.Threading.Tasks.Task", "ContinueWith"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "start of continuation (a2)",
            Role::Acquire,
            [
                app_begin(AGG, "<AggregateMetrics>a2"),
                app_begin(AGG, "<Verify>a2"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "create new task",
            Role::Release,
            lib_site("System.Threading.Tasks.Task", "Run"),
        ),
        SyncGroup::new(
            "task wait returns",
            Role::Acquire,
            lib_site("System.Threading.Tasks.Task", "Wait"),
        ),
        SyncGroup::new(
            "start of task delegates",
            Role::Acquire,
            [
                app_begin(AGG, "<ParseMetrics>a1"),
                app_begin(AGG, "<Publish>a1"),
            ]
            .concat(),
        ),
    ];
    for (class, field) in [(STATS, "flushCount"), (STATS, "gaugeValue")] {
        t.racy_ops.insert(OpRef::field_read(class, field).intern());
        t.racy_ops.insert(OpRef::field_write(class, field).intern());
        t.race_locations.insert(format!("{class}::{field}"));
    }
    t.sync_groups.push(SyncGroup::new(
        "start of stats task delegates",
        Role::Acquire,
        [
            app_begin(STATS, "FlushWorker"),
            app_begin(STATS, "GaugeWriter"),
            app_begin(STATS, "SnapshotSetup"),
        ]
        .concat(),
    ));
    t.sync_groups.push(SyncGroup::new(
        "end of stats task delegates",
        Role::Release,
        [
            app_end(STATS, "FlushWorker"),
            app_end(STATS, "GaugeWriter"),
            app_end(STATS, "SnapshotSetup"),
        ]
        .concat(),
    ));
    t.sync_groups.push(SyncGroup::new(
        "snapshot buffer publication",
        Role::Release,
        field_write(STATS, "snapshotBuffer"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "snapshot buffer consumption",
        Role::Acquire,
        field_read(STATS, "snapshotBuffer"),
    ));
    // parsedCount is protected by handler atomicity (single consumer
    // thread); its accesses can still surface in windows.
    t.sync_groups.push(SyncGroup::new(
        "parsed counter publication",
        Role::Release,
        field_write(PARSER, "parsedCount"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "parsed counter check",
        Role::Acquire,
        field_read(PARSER, "parsedCount"),
    ));
    t
}

/// Builds App-7.
pub fn app() -> App {
    App {
        id: "App-7",
        name: "Statsd",
        loc: include_str!("app7_statsd.rs").lines().count(),
        tests: tests(),
        truth: truth(),
    }
}

#[cfg(test)]
mod tests_mod {
    use super::*;
    use sherlock_sim::SimConfig;

    #[test]
    fn non_racy_tests_run_clean() {
        for (i, t) in app().tests.iter().enumerate() {
            if t.name().starts_with("racy_") {
                continue; // seeded races may fail assertions by design
            }
            let r = t.run(SimConfig::with_seed(700 + i as u64));
            assert!(r.is_clean(), "test {} failed: {:?}", t.name(), r.panics);
        }
    }

    #[test]
    fn racy_tests_complete_even_when_assertions_fire() {
        use sherlock_sim::Outcome;
        let a = app();
        for t in a.tests.iter().filter(|t| t.name().starts_with("racy_")) {
            for seed in 0..5 {
                let r = t.run(SimConfig::with_seed(7000 + seed));
                assert_eq!(r.outcome, Outcome::Completed, "{}", t.name());
            }
        }
    }
}
