//! App-1 — `Telemetry` (modeled on ApplicationInsights, paper Table 1/Fig 3.E).
//!
//! The largest application of the suite: a telemetry pipeline with a
//! test-fixture initialization ordering (`TestInitialize` happens before
//! every test method — Fig. 3.E), a monitor-protected channel buffer,
//! task-based senders signalling through an `EventWaitHandle`, a dev-mode
//! flag, and — deliberately — several *unsynchronized* diagnostics counters:
//! the seeded data races behind App-1's ten "Data Racy" misclassifications
//! (paper Table 2).

use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{
    testfx, EventWaitHandle, Interlocked, Monitor, SimThread, Task, TracedVar, UnsafeList,
};
use sherlock_trace::{OpRef, Time};

use crate::app::{
    app_begin, app_end, field_read, field_write, lib_site, App, GroundTruth, SyncGroup,
};

const CONFIG: &str = "Microsoft.ApplicationInsights.TelemetryConfiguration";
const CHANNEL: &str = "Microsoft.ApplicationInsights.InMemoryChannel";
const SENDER: &str = "Microsoft.ApplicationInsights.TelemetrySender";
const DIAG: &str = "Microsoft.ApplicationInsights.DiagnosticsTelemetry";
const FIXTURE: &str = "TelemetryClientTests";

/// The monitor-protected channel buffer.
#[derive(Clone)]
struct Channel {
    monitor: Monitor,
    buffered: TracedVar<u32>,
    capacity_hits: TracedVar<u32>,
    items: UnsafeList<u32>,
}

impl Channel {
    fn new() -> Self {
        Channel {
            monitor: Monitor::new(),
            buffered: TracedVar::new(CHANNEL, "bufferedItems", 0),
            capacity_hits: TracedVar::new(CHANNEL, "capacityHits", 0),
            items: UnsafeList::new(),
        }
    }

    fn send(&self, n: u32) {
        let this = self.clone();
        api::app_method(CHANNEL, "Send", self.buffered.object(), move || {
            this.monitor.with_lock(|| {
                let b = this.buffered.update(|x| x + n);
                // The thread-unsafe item list is safe only under the lock.
                this.items.add(n);
                if b > 8 {
                    this.capacity_hits.update(|x| x + 1);
                }
            });
        });
    }

    fn flush(&self) -> u32 {
        let this = self.clone();
        api::app_method(CHANNEL, "Flush", self.buffered.object(), move || {
            this.monitor.with_lock(|| {
                let b = this.buffered.get();
                let _ = this.items.len();
                this.items.clear();
                this.buffered.set(0);
                b
            })
        })
    }
}

fn tests() -> Vec<TestCase> {
    let mut tests = Vec::new();

    // Fig. 3.E: TestInitialize configures the client; the framework
    // guarantees it completes before any test method runs.
    tests.push(TestCase::new("fixture_basic_start_operation", || {
        let ikey = TracedVar::new(CONFIG, "instrumentationKey", 0u64);
        let endpoint = TracedVar::new(CONFIG, "endpointAddress", 0u64);
        let quota = TracedVar::new(CONFIG, "samplingQuota", 0u64);
        let cap = TracedVar::new(CONFIG, "channelCapacity", 0u64);
        let (k, e, q, c) = (ikey.clone(), endpoint.clone(), quota.clone(), cap.clone());
        let (k2, e2) = (ikey.clone(), endpoint.clone());
        let (q3, c3) = (quota.clone(), cap.clone());
        let handles = testfx::run_fixture(
            FIXTURE,
            "TestInitialize",
            move || {
                api::sleep(Time::from_millis(1));
                k.set(0xABCD);
                e.set(0x1111);
                q.set(50);
                c.set(512);
            },
            vec![
                (
                    "BasicStartOperationWithActivity".to_string(),
                    Box::new(move || {
                        // Telemetry code reads its configuration on every
                        // operation — a popular, frequently-read variable.
                        for _ in 0..6 {
                            assert_eq!(k2.get(), 0xABCD);
                            assert_eq!(e2.get(), 0x1111);
                        }
                    }),
                ),
                (
                    "StartOperationWithoutActivity".to_string(),
                    Box::new(move || {
                        for _ in 0..6 {
                            assert_eq!(q3.get(), 50);
                            assert_eq!(c3.get(), 512);
                        }
                    }),
                ),
            ],
        );
        for h in handles {
            h.join();
        }
    }));

    // Concurrent senders on the monitor-protected channel.
    tests.push(TestCase::new("channel_concurrent_send", || {
        let channel = Channel::new();
        let batch_size = TracedVar::new(SENDER, "batchSize", 0u32);
        let flush_interval = TracedVar::new(SENDER, "flushInterval", 0u32);
        let endpoint = TracedVar::new(SENDER, "senderEndpoint", 0u64);
        batch_size.set(4);
        flush_interval.set(30);
        endpoint.set(0xBEEF);
        let mut tasks = Vec::new();
        for _ in 0..3 {
            let c = channel.clone();
            let (b, f, e) = (batch_size.clone(), flush_interval.clone(), endpoint.clone());
            tasks.push(Task::run(SENDER, "SendLoop", move || {
                let n = b.get();
                let _ = f.get();
                let _ = e.get();
                for _ in 0..n {
                    c.send(1);
                }
            }));
        }
        for t in &tasks {
            t.wait();
        }
        assert_eq!(channel.flush(), 12);
    }));

    // The transmission sender signals completion via an event.
    tests.push(TestCase::new("sender_transmission_complete", || {
        let sent = TracedVar::new(SENDER, "transmittedBytes", 0u32);
        let status = TracedVar::new(SENDER, "transmissionStatus", 0u32);
        let done = EventWaitHandle::new(false);
        let (s2, st2, d2) = (sent.clone(), status.clone(), done.clone());
        Task::run(SENDER, "TransmitAsync", move || {
            api::sleep(Time::from_millis(2));
            s2.set(512);
            st2.set(200);
            d2.set();
        });
        done.wait_one();
        api::sleep(Time::from_millis(25)); // response processing
        for _ in 0..4 {
            assert_eq!(sent.get(), 512);
            assert_eq!(status.get(), 200);
        }
    }));

    // A flush notification through the same EventWaitHandle APIs as the
    // sender test but over different payload fields: the shared API ops are
    // the economical explanation across both tests.
    tests.push(TestCase::new("flush_notification", || {
        let flushed = TracedVar::new(CHANNEL, "flushedBytes", 0u32);
        let flush_gen = TracedVar::new(CHANNEL, "flushGeneration", 0u32);
        let done = EventWaitHandle::new(false);
        let (f2, g2, d2) = (flushed.clone(), flush_gen.clone(), done.clone());
        Task::run(SENDER, "FlushAsync", move || {
            api::sleep(Time::from_millis(1));
            f2.set(2048);
            g2.set(3);
            d2.set();
        });
        done.wait_one();
        api::sleep(Time::from_millis(12));
        for _ in 0..4 {
            assert_eq!(flushed.get(), 2048);
            assert_eq!(flush_gen.get(), 3);
        }
    }));

    // Developer-mode flag consumed by a polling worker.
    tests.push(TestCase::new("developer_mode_flag", || {
        let dev_mode = TracedVar::new(CONFIG, "developerMode", false);
        let d2 = dev_mode.clone();
        let toggler = SimThread::start(CONFIG, "EnableDeveloperMode", move || {
            api::sleep(Time::from_millis(2));
            d2.set(true);
        });
        dev_mode.spin_until(Time::from_millis(1), |v| v);
        toggler.join();
    }));

    // Seeded race #1: the metric preaggregation counter is written from a
    // *task* and the main thread with no synchronization at all. The task
    // also hands a session buffer to the main thread through Task.Wait —
    // ordering a manual annotator misses (the TPL is not on the classic
    // list), so Manual_dr's first report is the *false* sessionBuffer race,
    // masking the true metricCount race behind it (paper §5.4).
    tests.push(TestCase::new("racy_metric_counter", || {
        // Phase A: a task-ordered handoff Manual_dr cannot see — its first
        // (false) report lands here and masks the real race behind it.
        let session = TracedVar::new(SENDER, "sessionBuffer", 0u32);
        let s2 = session.clone();
        let setup = Task::run(DIAG, "SessionSetup", move || {
            s2.set(1);
        });
        setup.wait();
        session.get();
        // Phase B: the true write/write race, genuinely concurrent.
        let count = TracedVar::new(DIAG, "metricCount", 0u32);
        let c2 = count.clone();
        let t = Task::run(DIAG, "AggregateWorker", move || {
            for i in 0..3 {
                c2.set(i);
            }
        });
        for i in 10..13 {
            count.set(i);
        }
        t.wait();
    }));

    // Seeded race #2: lastError written by two faulting tasks concurrently
    // (write/write), again behind task-ordered setup.
    tests.push(TestCase::new("racy_last_error", || {
        let ready = TracedVar::new(SENDER, "faultInjector", 0u32);
        let r2 = ready.clone();
        let setup = Task::run(DIAG, "FaultSetup", move || {
            r2.set(1);
        });
        setup.wait();
        ready.get();
        let last_error = TracedVar::new(DIAG, "lastError", 0u32);
        let e2 = last_error.clone();
        let t = Task::run(DIAG, "FaultingWorker", move || {
            e2.set(0xE);
        });
        last_error.set(0xF);
        last_error.set(0x10);
        t.wait();
    }));

    // Seeded race #3: two threads both claim the active activity id
    // (write/write with no ordering whatsoever).
    tests.push(TestCase::new("racy_activity_id", || {
        let config = TracedVar::new(SENDER, "activityConfig", 0u32);
        let c2 = config.clone();
        let setup = Task::run(DIAG, "ActivityConfigSetup", move || {
            c2.set(3);
        });
        setup.wait();
        config.get();
        let activity = TracedVar::new(DIAG, "activityId", 0u32);
        let a2 = activity.clone();
        let t = Task::run(DIAG, "ActivityStarter", move || {
            a2.set(1);
        });
        activity.set(2);
        t.wait();
    }));

    // An Interlocked statistics counter: atomic increments from several
    // threads with *no* happens-before intent — the paper's introductory
    // example of an atomic that must NOT be inferred as synchronization.
    tests.push(TestCase::new("interlocked_statistics", || {
        let tracked = Interlocked::new(0);
        let mut tasks = Vec::new();
        for _ in 0..3 {
            let t2 = tracked.clone();
            tasks.push(Task::run(SENDER, "TrackLoop", move || {
                for _ in 0..4 {
                    t2.increment();
                }
            }));
        }
        for t in &tasks {
            t.wait();
        }
        assert_eq!(tracked.read(), 12);
    }));

    // A fixture variant whose test bodies also use the channel, mixing the
    // framework edge with the monitor edges.
    tests.push(TestCase::new("fixture_channel_interaction", || {
        let channel = Channel::new();
        let c1 = channel.clone();
        let c2 = channel.clone();
        let handles = testfx::run_fixture(
            FIXTURE,
            "TestInitialize",
            move || {
                c1.send(2);
            },
            vec![(
                "FlushSendsBufferedItems".to_string(),
                Box::new(move || {
                    assert!(c2.flush() >= 2);
                }),
            )],
        );
        for h in handles {
            h.join();
        }
    }));

    tests
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    t.sync_groups = vec![
        SyncGroup::new(
            "end of TestInitialize (framework ordering)",
            Role::Release,
            app_end(FIXTURE, "TestInitialize"),
        ),
        SyncGroup::new(
            "start of test methods (framework ordering)",
            Role::Acquire,
            [
                app_begin(FIXTURE, "BasicStartOperationWithActivity"),
                app_begin(FIXTURE, "StartOperationWithoutActivity"),
                app_begin(FIXTURE, "FlushSendsBufferedItems"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "release lock",
            Role::Release,
            lib_site("System.Threading.Monitor", "Exit"),
        ),
        SyncGroup::new(
            "acquire lock",
            Role::Acquire,
            lib_site("System.Threading.Monitor", "Enter"),
        ),
        SyncGroup::new(
            "create new task",
            Role::Release,
            lib_site("System.Threading.Tasks.Task", "Run"),
        ),
        SyncGroup::new(
            "task wait returns",
            Role::Acquire,
            lib_site("System.Threading.Tasks.Task", "Wait"),
        ),
        SyncGroup::new(
            "start of task delegates",
            Role::Acquire,
            [
                app_begin(SENDER, "SendLoop"),
                app_begin(SENDER, "TransmitAsync"),
                app_begin(SENDER, "FlushAsync"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of task delegates",
            Role::Release,
            [
                app_end(SENDER, "SendLoop"),
                app_end(SENDER, "TransmitAsync"),
                app_end(SENDER, "FlushAsync"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "release semaphore (event set)",
            Role::Release,
            lib_site("System.Threading.EventWaitHandle", "Set"),
        ),
        SyncGroup::new(
            "wait for semaphore (event wait)",
            Role::Acquire,
            lib_site("System.Threading.WaitHandle", "WaitOne"),
        ),
        SyncGroup::new(
            "write flag (developer mode)",
            Role::Release,
            field_write(CONFIG, "developerMode"),
        ),
        SyncGroup::new(
            "read flag (developer mode)",
            Role::Acquire,
            field_read(CONFIG, "developerMode"),
        ),
        SyncGroup::new(
            "start of thread delegates",
            Role::Acquire,
            app_begin(CONFIG, "EnableDeveloperMode"),
        ),
        SyncGroup::new(
            "end of thread delegates (join edge)",
            Role::Release,
            app_end(CONFIG, "EnableDeveloperMode"),
        ),
        SyncGroup::new(
            "join returns",
            Role::Acquire,
            lib_site("System.Threading.Thread", "Join"),
        ),
    ];
    for (class, field) in [
        (DIAG, "metricCount"),
        (DIAG, "lastError"),
        (DIAG, "activityId"),
    ] {
        t.racy_ops.insert(OpRef::field_read(class, field).intern());
        t.racy_ops.insert(OpRef::field_write(class, field).intern());
        t.race_locations.insert(format!("{class}::{field}"));
    }
    // The racy worker delegates are genuine task fork/join edges.
    t.sync_groups.push(SyncGroup::new(
        "start of racy-test task delegates",
        Role::Acquire,
        [
            app_begin(DIAG, "AggregateWorker"),
            app_begin(DIAG, "FaultingWorker"),
            app_begin(DIAG, "ActivityStarter"),
            app_begin(DIAG, "SessionSetup"),
            app_begin(DIAG, "FaultSetup"),
            app_begin(DIAG, "ActivityConfigSetup"),
        ]
        .concat(),
    ));
    t.sync_groups.push(SyncGroup::new(
        "end of racy-test task delegates",
        Role::Release,
        [
            app_end(DIAG, "AggregateWorker"),
            app_end(DIAG, "FaultingWorker"),
            app_end(DIAG, "ActivityStarter"),
            app_end(DIAG, "SessionSetup"),
            app_end(DIAG, "FaultSetup"),
            app_end(DIAG, "ActivityConfigSetup"),
        ]
        .concat(),
    ));
    // The setup handoff fields are task-protected payloads.
    t.sync_groups.push(SyncGroup::new(
        "task payload publication",
        Role::Release,
        [
            field_write(SENDER, "sessionBuffer"),
            field_write(SENDER, "faultInjector"),
            field_write(SENDER, "activityConfig"),
        ]
        .concat(),
    ));
    t.sync_groups.push(SyncGroup::new(
        "task payload consumption",
        Role::Acquire,
        [
            field_read(SENDER, "sessionBuffer"),
            field_read(SENDER, "faultInjector"),
            field_read(SENDER, "activityConfig"),
        ]
        .concat(),
    ));
    t.volatile_fields = vec![(CONFIG.into(), "developerMode".into())];
    t.delegates = vec![(CONFIG.into(), "EnableDeveloperMode".into())];
    t
}

/// Builds App-1.
pub fn app() -> App {
    App {
        id: "App-1",
        name: "Telemetry",
        loc: include_str!("app1_telemetry.rs").lines().count(),
        tests: tests(),
        truth: truth(),
    }
}

#[cfg(test)]
mod tests_mod {
    use super::*;
    use sherlock_sim::SimConfig;

    #[test]
    fn all_tests_run_clean() {
        for (i, t) in app().tests.iter().enumerate() {
            let r = t.run(SimConfig::with_seed(100 + i as u64));
            assert!(r.is_clean(), "test {} failed: {:?}", t.name(), r.panics);
        }
    }

    #[test]
    fn channel_flush_returns_buffered_total() {
        let r = sherlock_sim::Sim::new(SimConfig::with_seed(199)).run(|| {
            let c = Channel::new();
            c.send(3);
            c.send(4);
            assert_eq!(c.flush(), 7);
            assert_eq!(c.flush(), 0);
        });
        assert!(r.is_clean(), "{:?}", r.panics);
    }
}
