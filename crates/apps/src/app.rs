use std::collections::BTreeSet;

use sherlock_core::{InferenceReport, Role, TestCase};
use sherlock_racer::SyncSpec;
use sherlock_trace::{OpId, OpRef};

/// How an inferred operation scores against an application's ground truth —
/// the four columns of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// A real synchronization ("Syncs").
    TrueSync,
    /// An access participating in a seeded true data race, misread as
    /// synchronization ("Data Racy").
    DataRacy,
    /// A misclassification attributable to the instrumentation heuristics
    /// hiding the real synchronization ("Instr. Errors").
    InstrError,
    /// A plain false positive ("Not Sync").
    NotSync,
}

/// One semantically distinct synchronization the application performs, with
/// every trace-level operation that legitimately evidences it.
///
/// SherLock observes synchronization at instruction granularity; e.g. the
/// Monitor release may surface as `Exit-Begin` or `Exit-End` depending on
/// where the window boundary falls — both are the same synchronization.
#[derive(Clone, Debug)]
pub struct SyncGroup {
    /// Short description (mirrors the right column of paper Tables 8–9).
    pub description: String,
    /// The role this synchronization plays.
    pub role: Role,
    /// Acceptable operations evidencing it.
    pub ops: Vec<OpId>,
}

impl SyncGroup {
    /// Builds a group.
    pub fn new(description: &str, role: Role, ops: Vec<OpId>) -> Self {
        SyncGroup {
            description: description.to_string(),
            role,
            ops,
        }
    }

    /// Whether `(op, role)` evidences this synchronization.
    pub fn matches(&self, op: OpId, role: Role) -> bool {
        self.role == role && self.ops.contains(&op)
    }
}

/// Both trace events of a library API call site (`Begin` and `End`).
pub fn lib_site(class: &str, method: &str) -> Vec<OpId> {
    vec![
        OpRef::lib_begin(class, method).intern(),
        OpRef::lib_end(class, method).intern(),
    ]
}

/// An application method's entry op.
pub fn app_begin(class: &str, method: &str) -> Vec<OpId> {
    vec![OpRef::app_begin(class, method).intern()]
}

/// An application method's exit op.
pub fn app_end(class: &str, method: &str) -> Vec<OpId> {
    vec![OpRef::app_end(class, method).intern()]
}

/// A field's write op.
pub fn field_write(class: &str, field: &str) -> Vec<OpId> {
    vec![OpRef::field_write(class, field).intern()]
}

/// A field's read op.
pub fn field_read(class: &str, field: &str) -> Vec<OpId> {
    vec![OpRef::field_read(class, field).intern()]
}

/// Ground truth for one application, assembled by its author.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// The application's real synchronizations.
    pub sync_groups: Vec<SyncGroup>,
    /// Operations participating in seeded true data races.
    pub racy_ops: BTreeSet<OpId>,
    /// Classes whose real synchronizations are invisible because the
    /// Observer's name heuristics skip them.
    pub hidden_classes: BTreeSet<String>,
    /// `Class::field` locations of seeded true races.
    pub race_locations: BTreeSet<String>,
    /// Fields a manual annotator would mark volatile (they are declared so
    /// in the "source").
    pub volatile_fields: Vec<(String, String)>,
    /// Thread delegates a manual annotator can see at `new Thread(...)`
    /// sites.
    pub delegates: Vec<(String, String)>,
}

impl GroundTruth {
    /// Scores one inferred operation.
    pub fn classify(&self, op: OpId, role: Role) -> Verdict {
        if self.sync_groups.iter().any(|g| g.matches(op, role)) {
            Verdict::TrueSync
        } else if self.racy_ops.contains(&op) {
            Verdict::DataRacy
        } else if self.hidden_classes.contains(op.resolve().class()) {
            Verdict::InstrError
        } else {
            Verdict::NotSync
        }
    }

    /// How many distinct synchronizations the report covers (for recall).
    pub fn groups_covered(&self, report: &InferenceReport) -> usize {
        self.sync_groups
            .iter()
            .filter(|g| report.inferred.iter().any(|i| g.matches(i.op, i.role)))
            .count()
    }

    /// Whether a race report location corresponds to a seeded true race.
    pub fn is_true_race(&self, location: &str) -> bool {
        let loc = location.split('@').next().unwrap_or(location);
        self.race_locations.contains(loc)
    }

    /// The Manual_dr specification for this app: the classic API baseline
    /// plus the app's visible volatile/delegate annotations (paper §5.4).
    pub fn manual_spec(&self) -> SyncSpec {
        let mut spec = SyncSpec::manual();
        for (c, f) in &self.volatile_fields {
            spec = spec.with_volatile(c, f);
        }
        for (c, m) in &self.delegates {
            spec = spec.with_delegate(c, m);
        }
        spec
    }

    /// The complete ground-truth specification: the manual baseline plus
    /// every operation evidencing a real synchronization in
    /// [`GroundTruth::sync_groups`] — including the task/pool/continuation
    /// idioms Manual_dr famously misses. This is the oracle side of the
    /// differential race detector: a spec with *no* missing happens-before
    /// edges, so any race it reports on a seeded location is real.
    pub fn full_spec(&self) -> SyncSpec {
        let mut spec = self.manual_spec();
        for g in &self.sync_groups {
            for &op in &g.ops {
                match g.role {
                    Role::Acquire => {
                        spec = spec.with_acquire(op);
                    }
                    Role::Release => {
                        spec = spec.with_release(op);
                    }
                }
            }
        }
        spec
    }
}

/// One benchmark application: metadata, unit tests, and ground truth
/// (one row of paper Table 1).
pub struct App {
    /// Paper-style id (`App-1` … `App-8`).
    pub id: &'static str,
    /// Human name.
    pub name: &'static str,
    /// Source size (lines of the Rust module implementing it).
    pub loc: usize,
    /// The unit-test suite SherLock observes.
    pub tests: Vec<TestCase>,
    /// Ground truth for scoring.
    pub truth: GroundTruth,
}

impl App {
    /// Number of unit tests.
    pub fn num_tests(&self) -> usize {
        self.tests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_precedence_true_sync_first() {
        let op = OpRef::field_write("GT", "flag").intern();
        let mut t = GroundTruth::default();
        t.sync_groups.push(SyncGroup::new(
            "write flag",
            Role::Release,
            field_write("GT", "flag"),
        ));
        t.racy_ops.insert(op);
        assert_eq!(t.classify(op, Role::Release), Verdict::TrueSync);
        // Wrong role falls through to the racy bucket.
        assert_eq!(t.classify(op, Role::Acquire), Verdict::DataRacy);
    }

    #[test]
    fn hidden_class_maps_to_instr_error() {
        let mut t = GroundTruth::default();
        t.hidden_classes.insert("Shadowed".to_string());
        let op = OpRef::app_end("Shadowed", "Other").intern();
        assert_eq!(t.classify(op, Role::Release), Verdict::InstrError);
        let op = OpRef::app_end("Visible", "Other").intern();
        assert_eq!(t.classify(op, Role::Release), Verdict::NotSync);
    }

    #[test]
    fn matches_requires_both_role_and_membership() {
        let g = SyncGroup::new("exit", Role::Release, lib_site("M", "Exit"));
        let exit_begin = OpRef::lib_begin("M", "Exit").intern();
        let enter_begin = OpRef::lib_begin("M", "Enter").intern();
        assert!(g.matches(exit_begin, Role::Release));
        // Same op in the opposite role is NOT this synchronization: a
        // release site misread as an acquire is a misclassification.
        assert!(!g.matches(exit_begin, Role::Acquire));
        // Right role, op outside the group.
        assert!(!g.matches(enter_begin, Role::Release));
    }

    #[test]
    fn lib_site_group_accepts_either_window_boundary() {
        // Window boundaries fall on either event of a call site: inference
        // may surface Exit-Begin or Exit-End for the same release (see the
        // SyncGroup doc comment). Both must count as the one synchronization.
        let g = SyncGroup::new("monitor release", Role::Release, lib_site("M", "Exit"));
        assert!(g.matches(OpRef::lib_begin("M", "Exit").intern(), Role::Release));
        assert!(g.matches(OpRef::lib_end("M", "Exit").intern(), Role::Release));
    }

    #[test]
    fn end_only_group_rejects_the_begin_event() {
        // A group listing only the End event (e.g. a factory completing)
        // must not credit the Begin: before the method body ran, nothing
        // has been released yet.
        let g = SyncGroup::new("factory done", Role::Release, app_end("F", "Make"));
        assert!(g.matches(OpRef::app_end("F", "Make").intern(), Role::Release));
        assert!(!g.matches(OpRef::app_begin("F", "Make").intern(), Role::Release));
    }

    #[test]
    fn true_race_lookup_strips_object() {
        let mut t = GroundTruth::default();
        t.race_locations.insert("GT::counter".to_string());
        assert!(t.is_true_race("GT::counter@17"));
        assert!(!t.is_true_race("GT::other@17"));
    }

    #[test]
    fn manual_spec_includes_annotations() {
        let mut t = GroundTruth::default();
        t.volatile_fields.push(("Buf".into(), "eof".into()));
        t.delegates.push(("Worker".into(), "Run".into()));
        let spec = t.manual_spec();
        assert!(spec.is_release(OpRef::field_write("Buf", "eof").intern()));
        assert!(spec.is_acquire(OpRef::app_begin("Worker", "Run").intern()));
        assert!(spec.is_acquire(OpRef::lib_end("System.Threading.Monitor", "Enter").intern()));
    }

    #[test]
    fn full_spec_extends_manual_with_group_ops() {
        let mut t = GroundTruth::default();
        t.sync_groups.push(SyncGroup::new(
            "task completion",
            Role::Release,
            lib_site("System.Threading.Tasks.Task", "Run"),
        ));
        t.sync_groups.push(SyncGroup::new(
            "task wait",
            Role::Acquire,
            lib_site("System.Threading.Tasks.Task", "Wait"),
        ));
        let full = t.full_spec();
        // Group ops of both roles land in the right sets…
        assert!(full.is_release(OpRef::lib_begin("System.Threading.Tasks.Task", "Run").intern()));
        assert!(full.is_acquire(OpRef::lib_end("System.Threading.Tasks.Task", "Wait").intern()));
        // …and the manual baseline is still present.
        assert!(full.is_acquire(OpRef::lib_end("System.Threading.Monitor", "Enter").intern()));
        // manual_spec alone does not know the task APIs.
        assert!(!t
            .manual_spec()
            .is_release(OpRef::lib_begin("System.Threading.Tasks.Task", "Run").intern()));
    }

    #[test]
    fn lib_site_helper_interns_both_ends() {
        let ops = lib_site("C", "M");
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].resolve(), OpRef::lib_begin("C", "M"));
        assert_eq!(ops[1].resolve(), OpRef::lib_end("C", "M"));
    }
}
