//! App-6 — `HttpClient` (modeled on RestSharp, paper Table 1/8).
//!
//! An HTTP client with its test web server: work queued through
//! `ThreadPool.QueueUserWorkItem`, request/response rendezvous through
//! `EventWaitHandle.Set`/`WaitHandle.WaitOne`, a producer/consumer stream
//! (`Stream.CopyTo` → `Stream.Read`), and lambda-lowered handler names like
//! `<Run>b__40` — visible to the Observer, unlike the `b__hidden` ones.

use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{
    CountdownEvent, EventWaitHandle, Monitor, SimThread, Task, ThreadPool, TracedVar, UnsafeList,
};
use sherlock_trace::Time;

use crate::app::{
    app_begin, app_end, field_read, field_write, lib_site, App, GroundTruth, SyncGroup,
};

const HTTP: &str = "RestSharp.Http";
const CLIENT: &str = "RestSharp.RestClient";
const SERVER: &str = "RestSharp.Tests.Shared.Fixtures.WebServer";
const HANDLERS: &str = "RestSharp.Tests.Shared.Fixtures.Handlers";
const STREAM: &str = "System.IO.Stream";

/// A monitor-protected byte stream bridging producer and consumer.
#[derive(Clone)]
struct BodyStream {
    monitor: Monitor,
    bytes: TracedVar<u32>,
    complete: TracedVar<bool>,
}

impl BodyStream {
    fn new() -> Self {
        BodyStream {
            monitor: Monitor::new(),
            bytes: TracedVar::new(HTTP, "bodyBytes", 0),
            complete: TracedVar::new(HTTP, "bodyComplete", false),
        }
    }

    /// Producer side: `Stream.CopyTo` call site.
    fn copy_to(&self, n: u32) {
        let this = self.clone();
        api::lib_call(STREAM, "CopyTo", self.bytes.object(), move || {
            this.monitor.with_lock(|| {
                this.bytes.update(|b| b + n);
            });
        });
        self.complete.set(true);
    }

    /// Consumer side: `Stream.Read` call site.
    fn read(&self) -> u32 {
        let this = self.clone();
        api::lib_call(STREAM, "Read", self.bytes.object(), move || {
            this.monitor.with_lock(|| this.bytes.get())
        })
    }
}

fn tests() -> Vec<TestCase> {
    let mut tests = Vec::new();

    // An async request on the thread pool; completion signalled through an
    // event wait handle (Table 8's QueueUserWorkItem / Set / WaitOne rows).
    tests.push(TestCase::new("async_request_round_trip", || {
        let response = TracedVar::new(CLIENT, "responseCode", 0u32);
        let done = EventWaitHandle::new(false);
        let (r2, d2) = (response.clone(), done.clone());
        ThreadPool::queue_user_work_item(HANDLERS, "<Generic>b__30", move || {
            api::sleep(Time::from_millis(2));
            r2.set(200);
            d2.set();
        });
        done.wait_one();
        api::sleep(Time::from_millis(20)); // deserialize response
        assert_eq!(response.get(), 200);
    }));

    // The request body streamed from producer to consumer.
    tests.push(TestCase::new("write_request_body_stream", || {
        let stream = BodyStream::new();
        let s2 = stream.clone();
        let producer = Task::run(HTTP, "<WriteRequestBodyAsync>b__2", move || {
            for _ in 0..3 {
                s2.copy_to(128);
            }
        });
        let s3 = stream.clone();
        let consumer = Task::run(HTTP, "<WriteRequestBodyAsync>b__0", move || {
            s3.complete.spin_until(Time::from_millis(1), |v| v);
            assert!(s3.read() >= 128);
        });
        producer.wait();
        consumer.wait();
    }));

    // The test web server accepting one request: server loop thread +
    // request handler thread, rendezvous through events.
    tests.push(TestCase::new("web_server_handles_request", || {
        let request_ready = EventWaitHandle::new(false);
        let response_ready = EventWaitHandle::new(false);
        let request = TracedVar::new(SERVER, "pendingRequest", 0u32);
        let response = TracedVar::new(SERVER, "pendingResponse", 0u32);
        let request_log: UnsafeList<u32> = UnsafeList::new();

        let (rq, rr, req2, resp2, log2) = (
            request_ready.clone(),
            response_ready.clone(),
            request.clone(),
            response.clone(),
            request_log.clone(),
        );
        let server = SimThread::start(SERVER, "<Run>b__40", move || {
            rq.wait_one();
            let r = req2.get();
            log2.add(r); // thread-unsafe log, safe thanks to the events
            resp2.set(r + 1000);
            rr.set();
        });

        request.set(42);
        request_ready.set();
        response_ready.wait_one();
        assert_eq!(response.get(), 1042);
        assert_eq!(request_log.get(0), Some(42));
        server.join();
    }));

    // BeginGetResponse releases toward the server thread's callback.
    tests.push(TestCase::new("begin_get_response_callback", || {
        let payload = TracedVar::new(HTTP, "requestPayload", 0u32);
        let p2 = payload.clone();
        payload.set(7);
        api::lib_call(
            "System.Net.WebRequest",
            "BeginGetResponse",
            payload.object(),
            || {
                SimThread::start(
                    HTTP,
                    "<WriteRequestBodyAsync>gRequestStreamCallback1",
                    move || {
                        assert_eq!(p2.get(), 7);
                    },
                )
            },
        )
        .join();
    }));

    // One long test with well-separated request phases (Near sensitivity).
    tests.push(TestCase::new("two_requests_far_apart", || {
        let stream = BodyStream::new();
        let s2 = stream.clone();
        let t = Task::run(HTTP, "<GetStyleMethodInternalAsync>b__0", move || {
            s2.copy_to(64);
        });
        t.wait();
        api::sleep(Time::from_secs(3));
        let s3 = stream.clone();
        let t = Task::run(HTTP, "<GetStyleMethodInternalAsync>b__0", move || {
            assert!(s3.read() >= 64);
        });
        t.wait();
    }));

    // Parallel downloads joined by a CountdownEvent before assembling the
    // combined response.
    tests.push(TestCase::new("parallel_downloads_countdown", || {
        let countdown = CountdownEvent::new(3);
        let chunks = TracedVar::new(CLIENT, "downloadedChunks", 0u32);
        let bytes = TracedVar::new(CLIENT, "downloadedBytes", 0u32);
        for i in 0..3u32 {
            let (c2, ch2, by2) = (countdown.clone(), chunks.clone(), bytes.clone());
            ThreadPool::queue_user_work_item(CLIENT, "<DownloadPart>b__7", move || {
                api::sleep(Time::from_micros(300 * u64::from(i + 1)));
                ch2.update(|c| c + 1);
                by2.update(|b| b + 1024);
                c2.signal();
            });
        }
        countdown.wait();
        api::sleep(Time::from_millis(12)); // assemble response
        for _ in 0..3 {
            assert_eq!(chunks.get(), 3);
            assert_eq!(bytes.get(), 3072);
        }
    }));

    tests
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    t.sync_groups = vec![
        SyncGroup::new(
            "create new task (thread pool)",
            Role::Release,
            lib_site("System.Threading.ThreadPool", "QueueUserWorkItem"),
        ),
        SyncGroup::new(
            "end of task (generic handler)",
            Role::Release,
            app_end(HANDLERS, "<Generic>b__30"),
        ),
        SyncGroup::new(
            "release semaphore (event set)",
            Role::Release,
            lib_site("System.Threading.EventWaitHandle", "Set"),
        ),
        SyncGroup::new(
            "wait for semaphore",
            Role::Acquire,
            lib_site("System.Threading.WaitHandle", "WaitOne"),
        ),
        SyncGroup::new(
            "producer (CopyTo)",
            Role::Release,
            [
                lib_site(STREAM, "CopyTo"),
                field_write(HTTP, "bodyComplete"),
                app_end(HTTP, "<WriteRequestBodyAsync>b__2"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "consumer (Read)",
            Role::Acquire,
            [lib_site(STREAM, "Read"), field_read(HTTP, "bodyComplete")].concat(),
        ),
        SyncGroup::new(
            "start of task/message handlers",
            Role::Acquire,
            [
                app_begin(HANDLERS, "<Generic>b__30"),
                app_begin(HTTP, "<WriteRequestBodyAsync>b__0"),
                app_begin(HTTP, "<WriteRequestBodyAsync>b__2"),
                app_begin(HTTP, "<GetStyleMethodInternalAsync>b__0"),
                app_begin(SERVER, "<Run>b__40"),
                app_begin(HTTP, "<WriteRequestBodyAsync>gRequestStreamCallback1"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "send network request (producer)",
            Role::Release,
            lib_site("System.Net.WebRequest", "BeginGetResponse"),
        ),
        SyncGroup::new(
            "release lock",
            Role::Release,
            lib_site("System.Threading.Monitor", "Exit"),
        ),
        SyncGroup::new(
            "acquire lock",
            Role::Acquire,
            lib_site("System.Threading.Monitor", "Enter"),
        ),
        SyncGroup::new(
            "end of task (client execute)",
            Role::Release,
            [
                app_end(HTTP, "<GetStyleMethodInternalAsync>b__0"),
                app_end(SERVER, "<Run>b__40"),
                app_end(HTTP, "<WriteRequestBodyAsync>gRequestStreamCallback1"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "join/wait returns",
            Role::Acquire,
            [
                lib_site("System.Threading.Thread", "Join"),
                lib_site("System.Threading.Tasks.Task", "Wait"),
            ]
            .concat(),
        ),
    ];
    t.sync_groups.push(SyncGroup::new(
        "countdown signal (fan-in release)",
        Role::Release,
        lib_site("System.Threading.CountdownEvent", "Signal"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "countdown wait (fan-in acquire)",
        Role::Acquire,
        lib_site("System.Threading.CountdownEvent", "Wait"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "start of download parts",
        Role::Acquire,
        app_begin(CLIENT, "<DownloadPart>b__7"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "end of download parts",
        Role::Release,
        app_end(CLIENT, "<DownloadPart>b__7"),
    ));
    t.delegates = vec![
        (SERVER.into(), "<Run>b__40".into()),
        (
            HTTP.into(),
            "<WriteRequestBodyAsync>gRequestStreamCallback1".into(),
        ),
    ];
    t
}

/// Builds App-6.
pub fn app() -> App {
    App {
        id: "App-6",
        name: "HttpClient",
        loc: include_str!("app6_httpclient.rs").lines().count(),
        tests: tests(),
        truth: truth(),
    }
}

#[cfg(test)]
mod tests_mod {
    use super::*;
    use sherlock_sim::SimConfig;

    #[test]
    fn all_tests_run_clean() {
        for (i, t) in app().tests.iter().enumerate() {
            let r = t.run(SimConfig::with_seed(600 + i as u64));
            assert!(r.is_clean(), "test {} failed: {:?}", t.name(), r.panics);
        }
    }

    #[test]
    fn body_stream_accumulates() {
        let r = sherlock_sim::Sim::new(SimConfig::with_seed(666)).run(|| {
            let s = BodyStream::new();
            s.copy_to(10);
            s.copy_to(20);
            assert_eq!(s.read(), 30);
        });
        assert!(r.is_clean(), "{:?}", r.panics);
    }
}
