//! App-4 — `K8sClient` (modeled on KubernetesClient, paper Table 1/9).
//!
//! A client library whose synchronization mix is the richest of the suite:
//! a `ByteBuffer` with a volatile `endOfFile` flag and monitor-protected
//! internals (paper Fig. 3.B), await-style tasks whose completion releases
//! into `TaskAwaiter::GetResult`-like acquires, config-merging methods, and
//! a status flag on `KubernetesException`. One watch-loop helper carries a
//! compiler-generated name that the Observer's heuristics mistakenly skip,
//! reproducing the paper's Instr.-Errors category.

use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{BlockingCollection, Monitor, SimThread, Task, TracedVar};
use sherlock_trace::Time;

use crate::app::{
    app_begin, app_end, field_read, field_write, lib_site, App, GroundTruth, SyncGroup,
};

const BUFFER: &str = "k8s.ByteBuffer";
const CONFIG: &str = "k8s.KubernetesClientConfiguration";
const EXCEPTION: &str = "k8s.KubernetesException";
const DEMUX: &str = "k8s.StreamDemuxer";
const MUXED: &str = "k8s.MuxedStream";
const WATCH: &str = "k8s.WatchLoop";

/// A producer/consumer byte buffer with monitor-protected internals and a
/// volatile end-of-file flag.
#[derive(Clone)]
struct ByteBuffer {
    monitor: Monitor,
    size: TracedVar<u32>,
    chunks: TracedVar<u32>,
    end_of_file: TracedVar<bool>,
}

impl ByteBuffer {
    fn new() -> Self {
        ByteBuffer {
            monitor: Monitor::new(),
            size: TracedVar::new(BUFFER, "size", 0),
            chunks: TracedVar::new(BUFFER, "chunks", 0),
            end_of_file: TracedVar::new(BUFFER, "endOfFile", false),
        }
    }

    fn write(&self, n: u32) {
        let this = self.clone();
        api::app_method(BUFFER, "Write", self.size.object(), move || {
            this.monitor.with_lock(|| {
                this.size.update(|s| s + n);
                this.chunks.update(|c| c + 1);
            });
        });
    }

    fn write_end(&self) {
        let this = self.clone();
        api::app_method(BUFFER, "WriteEnd", self.size.object(), move || {
            this.end_of_file.set(true);
        });
    }

    fn read(&self) -> u32 {
        let this = self.clone();
        api::app_method(BUFFER, "Read", self.size.object(), move || {
            this.monitor.with_lock(|| {
                let _ = this.chunks.get();
                this.size.get()
            })
        })
    }
}

fn tests() -> Vec<TestCase> {
    let mut tests = Vec::new();

    // Fig. 3.B verbatim: T1 flushes and sets endOfFile; T2 spin-waits.
    tests.push(TestCase::new("byte_buffer_end_of_file", || {
        let buf = ByteBuffer::new();
        let b2 = buf.clone();
        let writer = SimThread::start(BUFFER, "FlushWorker", move || {
            for _ in 0..3 {
                b2.write(16);
            }
            api::sleep(Time::from_millis(4));
            b2.write_end();
        });
        buf.end_of_file.spin_until(Time::from_millis(2), |v| v);
        api::sleep(Time::from_millis(20)); // post-EOF bookkeeping
        assert_eq!(buf.read(), 48);
        writer.join();
    }));

    // Await-style config loading: the async task's completion releases into
    // the awaiting reader (Table 9's "end of await task" rows).
    tests.push(TestCase::new("load_kube_config_async", || {
        let merged = TracedVar::new(CONFIG, "mergedConfig", 0u32);
        let contexts = TracedVar::new(CONFIG, "contextCount", 0u32);
        let server = TracedVar::new(CONFIG, "serverUrl", 0u64);
        let (m2, c2, s2) = (merged.clone(), contexts.clone(), server.clone());
        let load = Task::run(CONFIG, "LoadKubeConfigAsync", move || {
            api::app_method(CONFIG, "MergeKubeConfig", m2.object(), || {
                api::sleep(Time::from_millis(2));
                m2.set(7);
                c2.set(2);
                s2.set(0x6443);
            });
        });
        load.wait();
        let got = api::app_method(
            CONFIG,
            "GetKubernetesClientConfiguration",
            merged.object(),
            || {
                // Client code consults the merged config repeatedly.
                for _ in 0..4 {
                    assert_eq!(contexts.get(), 2);
                    assert_eq!(server.get(), 0x6443);
                }
                merged.get()
            },
        );
        assert_eq!(got, 7);
    }));

    // A muxed stream read feeding a demuxer dispose via a continuation.
    tests.push(TestCase::new("demuxer_dispose_after_read", || {
        let frames = TracedVar::new(MUXED, "frames", 0u32);
        let bytes = TracedVar::new(MUXED, "bytesTotal", 0u32);
        let (f2, b2) = (frames.clone(), bytes.clone());
        let read = Task::run(MUXED, "Read", move || {
            f2.set(3);
            b2.set(4096);
        });
        let (f3, b3) = (frames.clone(), bytes.clone());
        let dispose = read.continue_with(DEMUX, "Dispose", move || {
            for _ in 0..3 {
                assert_eq!(f3.get(), 3);
                assert_eq!(b3.get(), 4096);
            }
        });
        dispose.wait();
    }));

    // An error-status flag crossing the watch loop.
    tests.push(TestCase::new("watch_loop_status_flag", || {
        let status = TracedVar::new(EXCEPTION, "Status", 0u32);
        let s2 = status.clone();
        let watcher = SimThread::start(WATCH, "RunWatch", move || {
            api::sleep(Time::from_millis(3));
            s2.set(410); // HTTP Gone
        });
        status.spin_until(Time::from_millis(2), |v| v != 0);
        assert_eq!(status.get(), 410);
        watcher.join();
    }));

    // The instrumentation-error scenario: the real release is the exit of a
    // compiler-generated pump helper (skipped by the Observer's name
    // heuristics); the handoff itself is an untraced framework latch. The
    // neighbourhood SherLock can see is the payload field in the same class.
    tests.push(TestCase::new("hidden_pump_helper", || {
        let payload = TracedVar::new(WATCH, "pumpBuffer", 0u32);
        let latch = sherlock_sim::prims::EventWaitHandle::new(false);
        let (p2, l2) = (payload.clone(), latch.clone());
        let pump = SimThread::start(WATCH, "PumpOwner", move || {
            api::app_method(WATCH, "<Pump>b__hidden0", p2.object(), || {
                p2.set(99);
            });
            // The latch lives inside skipped framework code as well.
            api::app_method(WATCH, "<Pump>b__hidden1", p2.object(), || {
                l2.set_untraced();
            });
        });
        latch.wait_one_untraced();
        assert_eq!(payload.get(), 99);
        pump.join();
    }));

    // The watch-event queue: a bounded BlockingCollection bridging the
    // watcher thread and the event processor.
    tests.push(TestCase::new("watch_event_queue", || {
        let queue: BlockingCollection<u32> = BlockingCollection::with_capacity(2);
        let processed = TracedVar::new(WATCH, "processedEvents", 0u32);
        let last_kind = TracedVar::new(WATCH, "lastEventKind", 0u32);
        let (q2, p2, k2) = (queue.clone(), processed.clone(), last_kind.clone());
        let processor = SimThread::start(WATCH, "ProcessEvents", move || {
            while let Some(kind) = q2.take() {
                p2.update(|n| n + 1);
                k2.set(kind);
            }
        });
        for kind in [1u32, 2, 3] {
            queue.add(kind);
        }
        queue.complete_adding();
        processor.join();
        for _ in 0..3 {
            assert_eq!(processed.get(), 3);
            assert_eq!(last_kind.get(), 3);
        }
    }));

    tests
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    t.sync_groups = vec![
        SyncGroup::new(
            "write flag: file is ready",
            Role::Release,
            [
                field_write(BUFFER, "endOfFile"),
                app_end(BUFFER, "WriteEnd"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "read flag: file is ready",
            Role::Acquire,
            field_read(BUFFER, "endOfFile"),
        ),
        SyncGroup::new(
            "release a lock",
            Role::Release,
            lib_site("System.Threading.Monitor", "Exit"),
        ),
        SyncGroup::new(
            "acquire a lock",
            Role::Acquire,
            lib_site("System.Threading.Monitor", "Enter"),
        ),
        SyncGroup::new(
            "end of await task (config load)",
            Role::Release,
            [
                app_end(CONFIG, "LoadKubeConfigAsync"),
                app_end(CONFIG, "MergeKubeConfig"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "wait for an await task",
            Role::Acquire,
            [
                lib_site("System.Threading.Tasks.Task", "Wait"),
                app_begin(CONFIG, "GetKubernetesClientConfiguration"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of await task (muxed read)",
            Role::Release,
            app_end(MUXED, "Read"),
        ),
        SyncGroup::new(
            "await task beginning (dispose)",
            Role::Acquire,
            app_begin(DEMUX, "Dispose"),
        ),
        SyncGroup::new(
            "write flag: meet error",
            Role::Release,
            field_write(EXCEPTION, "Status"),
        ),
        SyncGroup::new(
            "read flag: meet error",
            Role::Acquire,
            field_read(EXCEPTION, "Status"),
        ),
        SyncGroup::new(
            "await task beginning (buffer ops)",
            Role::Acquire,
            [app_begin(BUFFER, "Read"), app_begin(BUFFER, "Write")].concat(),
        ),
        SyncGroup::new(
            "start of thread delegate",
            Role::Acquire,
            [
                app_begin(BUFFER, "FlushWorker"),
                app_begin(WATCH, "RunWatch"),
                app_begin(WATCH, "PumpOwner"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of thread delegate (join edge)",
            Role::Release,
            [
                app_end(BUFFER, "FlushWorker"),
                app_end(WATCH, "RunWatch"),
                app_end(WATCH, "PumpOwner"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "join returns",
            Role::Acquire,
            lib_site("System.Threading.Thread", "Join"),
        ),
        SyncGroup::new(
            "queue add (producer)",
            Role::Release,
            [
                lib_site("System.Collections.Concurrent.BlockingCollection", "Add"),
                lib_site(
                    "System.Collections.Concurrent.BlockingCollection",
                    "CompleteAdding",
                ),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "queue take (consumer)",
            Role::Acquire,
            lib_site("System.Collections.Concurrent.BlockingCollection", "Take"),
        ),
        SyncGroup::new(
            "start of event processor",
            Role::Acquire,
            app_begin(WATCH, "ProcessEvents"),
        ),
        SyncGroup::new(
            "end of event processor",
            Role::Release,
            app_end(WATCH, "ProcessEvents"),
        ),
    ];
    t.volatile_fields = vec![
        (BUFFER.into(), "endOfFile".into()),
        (EXCEPTION.into(), "Status".into()),
    ];
    t.delegates = vec![
        (BUFFER.into(), "FlushWorker".into()),
        (WATCH.into(), "RunWatch".into()),
        (WATCH.into(), "PumpOwner".into()),
        (WATCH.into(), "ProcessEvents".into()),
    ];
    // The pump helpers are invisible to the Observer; anything inferred in
    // their stead inside k8s.WatchLoop is an instrumentation error.
    t.hidden_classes.insert(WATCH.to_string());
    t
}

/// Builds App-4.
pub fn app() -> App {
    App {
        id: "App-4",
        name: "K8sClient",
        loc: include_str!("app4_k8sclient.rs").lines().count(),
        tests: tests(),
        truth: truth(),
    }
}

#[cfg(test)]
mod tests_mod {
    use super::*;
    use sherlock_sim::SimConfig;

    #[test]
    fn all_tests_run_clean() {
        for (i, t) in app().tests.iter().enumerate() {
            let r = t.run(SimConfig::with_seed(400 + i as u64));
            assert!(r.is_clean(), "test {} failed: {:?}", t.name(), r.panics);
        }
    }

    #[test]
    fn hidden_helpers_do_not_appear_in_traces() {
        use sherlock_trace::OpRef;
        let a = app();
        let t = a
            .tests
            .iter()
            .find(|t| t.name() == "hidden_pump_helper")
            .unwrap();
        let r = t.run(SimConfig::with_seed(444));
        let hidden = OpRef::app_begin(WATCH, "<Pump>b__hidden0").intern();
        assert!(r.trace.events().iter().all(|e| e.op != hidden));
    }
}
