//! App-3 — `Assertions` (modeled on FluentAssertion, paper Table 1/8).
//!
//! An assertion library: the `AssertionScope` static constructor, a monitor
//! guarding the scope stack, `Task.Run` for the concurrency tests, and an
//! `ExecutionTime` helper with an `isRunning` flag. Two latch helpers carry
//! names the Observer's heuristics mistakenly skip, contributing App-3's two
//! instrumentation errors (paper Table 2).

use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{EventWaitHandle, Monitor, StaticCtor, Task, TracedVar};
use sherlock_trace::Time;

use crate::app::{
    app_begin, app_end, field_read, field_write, lib_site, App, GroundTruth, SyncGroup,
};

const SCOPE: &str = "FluentAssertions.Execution.AssertionScope";
const SPECS: &str = "AssertionOptionsSpecs";
const EXEC: &str = "FluentAssertions.Specialized.ExecutionTime";
const LATCH: &str = "FluentAssertions.Execution.LatchHelper";

fn tests() -> Vec<TestCase> {
    let mut tests = Vec::new();

    // The static constructor installs the default equality strategy; the
    // concurrent-access spec races to read it from task delegates (the
    // paper's `When_concurrently_getting_equality_strategy` rows).
    tests.push(TestCase::new("concurrent_equality_strategy", || {
        let cctor = StaticCtor::new(SCOPE);
        let strategy = TracedVar::new(SCOPE, "equalityStrategy", 0u32);
        let formatters = TracedVar::new(SCOPE, "defaultFormatters", 0u32);
        let options = TracedVar::new(SCOPE, "defaultOptions", 0u32);
        let mut tasks = Vec::new();
        for (i, delegate) in [
            "<When_concurrently_getting_equality_strategy>b__2",
            "<When_concurrently_getting_equality_strategy>b__3",
        ]
        .iter()
        .enumerate()
        {
            let (c, s) = (cctor.clone(), strategy.clone());
            let (f, o) = (formatters.clone(), options.clone());
            tasks.push(Task::run(SPECS, *delegate, move || {
                // CLR: the class initializer completes before
                // GetEqualityStrategy enters.
                c.ensure(|| {
                    api::sleep(Time::from_micros(300 * (i as u64 + 1)));
                    s.set(1);
                    f.set(4);
                    o.set(9);
                });
                api::app_method(SCOPE, "GetEqualityStrategy", 0, || {
                    assert_eq!(s.get(), 1);
                    assert_eq!(f.get(), 4);
                    assert_eq!(o.get(), 9);
                });
            }));
        }
        for t in &tasks {
            t.wait();
        }
    }));

    // The monitor guards the scope stack fields.
    tests.push(TestCase::new("nested_scopes_locked", || {
        let monitor = Monitor::new();
        let depth = TracedVar::new(SCOPE, "scopeDepth", 0u32);
        let failures = TracedVar::new(SCOPE, "failureCount", 0u32);
        let mut tasks = Vec::new();
        for i in 0..3 {
            let (m, d, f) = (monitor.clone(), depth.clone(), failures.clone());
            tasks.push(Task::run(SPECS, "<Nested_scopes>b__0", move || {
                for _ in 0..2 {
                    m.with_lock(|| {
                        d.update(|x| x + 1);
                        if i == 0 {
                            f.update(|x| x + 1);
                        }
                        d.update(|x| x - 1);
                    });
                }
            }));
        }
        for t in &tasks {
            t.wait();
        }
        assert_eq!(depth.get(), 0);
    }));

    // ExecutionTime: a polling loop on the isRunning flag (Table 8's
    // `<IsRunning>` rows) around a measured task.
    tests.push(TestCase::new("execution_time_is_running", || {
        let is_running = TracedVar::new(EXEC, "<IsRunning>", true);
        let elapsed = TracedVar::new(EXEC, "elapsed", 0u64);
        let (r2, e2) = (is_running.clone(), elapsed.clone());
        let measured = Task::run(EXEC, "<.ctor>b__0", move || {
            api::sleep(Time::from_millis(8));
            e2.set(8_000_000);
            r2.set(false);
        });
        is_running.spin_until(Time::from_millis(3), |v| !v);
        api::sleep(Time::from_millis(15)); // report generation
        assert_eq!(elapsed.get(), 8_000_000);
        measured.wait();
    }));

    // Two latch helpers hidden from the Observer: the real synchronization
    // (signal/await inside them) is invisible, so the shared fields in the
    // same class take the blame — App-3's two instrumentation errors.
    tests.push(TestCase::new("hidden_latch_helpers", || {
        let ev = EventWaitHandle::new(false);
        let formatted = TracedVar::new(LATCH, "formattedMessage", 0u32);
        let rendered = TracedVar::new(LATCH, "renderedCount", 0u32);
        let (ev2, f2, r2) = (ev.clone(), formatted.clone(), rendered.clone());
        let producer = Task::run(LATCH, "Producer", move || {
            api::app_method(LATCH, "<Signal>b__hidden0", f2.object(), || {
                f2.set(5);
                r2.set(6);
                ev2.set_untraced();
            });
        });
        api::app_method(LATCH, "<Await>b__hidden1", formatted.object(), || {
            ev.wait_one_untraced();
        });
        assert_eq!(formatted.get(), 5);
        assert_eq!(rendered.get(), 6);
        producer.wait();
    }));

    // A pure single-threaded formatting test.
    tests.push(TestCase::new("format_single_threaded", || {
        let buf = TracedVar::new(SCOPE, "formatBuffer", 0u32);
        for i in 0..5 {
            buf.set(i);
        }
        assert_eq!(buf.get(), 4);
    }));

    tests
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    t.sync_groups = vec![
        SyncGroup::new(
            "end of static constructor",
            Role::Release,
            app_end(SCOPE, ".cctor"),
        ),
        SyncGroup::new(
            "release lock",
            Role::Release,
            lib_site("System.Threading.Monitor", "Exit"),
        ),
        SyncGroup::new(
            "acquire lock",
            Role::Acquire,
            lib_site("System.Threading.Monitor", "Enter"),
        ),
        SyncGroup::new(
            "create new task",
            Role::Release,
            lib_site("System.Threading.Tasks.Task", "Run"),
        ),
        SyncGroup::new(
            "write flag",
            Role::Release,
            field_write(EXEC, "<IsRunning>"),
        ),
        SyncGroup::new("read flag", Role::Acquire, field_read(EXEC, "<IsRunning>")),
        SyncGroup::new(
            "start of task (spec delegates)",
            Role::Acquire,
            [
                app_begin(SPECS, "<When_concurrently_getting_equality_strategy>b__2"),
                app_begin(SPECS, "<When_concurrently_getting_equality_strategy>b__3"),
                app_begin(SPECS, "<Nested_scopes>b__0"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "start of task (ExecutionTime ctor delegate)",
            Role::Acquire,
            app_begin(EXEC, "<.ctor>b__0"),
        ),
        SyncGroup::new(
            "end of task / wait",
            Role::Release,
            [
                app_end(SPECS, "<When_concurrently_getting_equality_strategy>b__2"),
                app_end(SPECS, "<When_concurrently_getting_equality_strategy>b__3"),
                app_end(SPECS, "<Nested_scopes>b__0"),
                app_end(EXEC, "<.ctor>b__0"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "task wait returns",
            Role::Acquire,
            lib_site("System.Threading.Tasks.Task", "Wait"),
        ),
        SyncGroup::new(
            "first access after static constructor",
            Role::Acquire,
            [
                app_begin(SCOPE, "GetEqualityStrategy"),
                app_begin(SPECS, "<When_concurrently_getting_equality_strategy>b__2"),
                app_begin(SPECS, "<When_concurrently_getting_equality_strategy>b__3"),
            ]
            .concat(),
        ),
    ];
    t.hidden_classes.insert(LATCH.to_string());
    t
}

/// Builds App-3.
pub fn app() -> App {
    App {
        id: "App-3",
        name: "Assertions",
        loc: include_str!("app3_assertions.rs").lines().count(),
        tests: tests(),
        truth: truth(),
    }
}

#[cfg(test)]
mod tests_mod {
    use super::*;
    use sherlock_sim::SimConfig;

    #[test]
    fn all_tests_run_clean() {
        for (i, t) in app().tests.iter().enumerate() {
            let r = t.run(SimConfig::with_seed(300 + i as u64));
            assert!(r.is_clean(), "test {} failed: {:?}", t.name(), r.panics);
        }
    }

    #[test]
    fn metadata_sane() {
        let a = app();
        assert_eq!(a.id, "App-3");
        assert_eq!(a.num_tests(), 5);
        assert!(a.truth.hidden_classes.contains(LATCH));
    }
}
