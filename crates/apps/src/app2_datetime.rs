//! App-2 — `DateTime` (modeled on DataTimeExtension, paper Table 1/9).
//!
//! A small date-computation library whose synchronization comes from three
//! idioms the paper reports for this app:
//!
//! * a lazy concurrent dictionary (`ConcurrentLazyDictionary::GetOrAdd`)
//!   whose value delegates are atomic with respect to each other — the exit
//!   of one delegate happens before the entry of the next (paper Fig. 3.C);
//! * a static constructor (`EasterCalculator::.cctor`) whose completion
//!   happens before any use of the class;
//! * a volatile flag (`ChristianHolidays::ascension`) written by the
//!   computing thread and checked by readers.

use std::sync::Arc;

use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{ConcurrentMap, SimThread, StaticCtor, TracedVar};
use sherlock_trace::Time;

use crate::app::{
    app_begin, app_end, field_read, field_write, lib_site, App, GroundTruth, SyncGroup,
};

const CACHE: &str = "App.Common.ConcurrentLazyDictionary";
const EASTER: &str = "App.WorkingDays.EasterBasedHoliday.EasterCalculator";
const HOLIDAYS: &str = "App.WorkingDays.ChristianHolidays";

/// The lazy dictionary: an application-level `GetOrAdd` wrapper (the op the
/// paper's Table 9 lists) around the concurrent-dictionary primitive.
#[derive(Clone)]
struct DayCache {
    map: ConcurrentMap<u32, u32>,
    easter_day: TracedVar<u32>,
    lent_start: TracedVar<u32>,
    compute_count: TracedVar<u32>,
}

impl DayCache {
    fn new() -> Self {
        DayCache {
            map: ConcurrentMap::new(),
            easter_day: TracedVar::new(EASTER, "cachedEaster", 0),
            lent_start: TracedVar::new(EASTER, "cachedLentStart", 0),
            compute_count: TracedVar::new(EASTER, "computeCount", 0),
        }
    }

    /// The delegate populates several cache fields at once — the atomic
    /// region is the synchronization, not any single field.
    fn get_or_add(&self, year: u32, delegate: &str) -> u32 {
        let this = self.clone();
        let delegate = delegate.to_string();
        api::app_method(CACHE, "GetOrAdd", self.easter_day.object(), move || {
            let inner = this.clone();
            let day = this.map.get_or_add(year, CACHE, &delegate, move || {
                let day = 81 + (year % 19); // toy Easter computus
                inner.easter_day.set(day);
                inner.lent_start.set(day - 46);
                inner.compute_count.update(|c| c + 1);
                day
            });
            // Post-lookup verification reads the cached values.
            this.easter_day.get();
            this.lent_start.get();
            day
        })
    }
}

fn tests() -> Vec<TestCase> {
    let mut tests = Vec::new();

    // Two threads race to populate the same year; delegate atomicity plus
    // the GetOrAdd wrapper order the underlying cache writes.
    tests.push(TestCase::new("day_cache_concurrent_get_or_add", || {
        let cache = DayCache::new();
        let c1 = cache.clone();
        let t1 = SimThread::start("App.WorkingDays.Tests", "CacheWorkerA", move || {
            let d = c1.get_or_add(2020, "<GetOrAdd>d1");
            assert_eq!(d, 81 + (2020 % 19));
        });
        let c2 = cache.clone();
        let t2 = SimThread::start("App.WorkingDays.Tests", "CacheWorkerB", move || {
            c2.get_or_add(2020, "<GetOrAdd>d2");
        });
        t1.join();
        t2.join();
    }));

    // The static constructor initializes the golden-number table; the first
    // access after it (CalculateEasterDate) is the acquire.
    tests.push(TestCase::new("easter_static_ctor", || {
        let cctor = StaticCtor::new(EASTER);
        let golden = TracedVar::new(EASTER, "goldenNumbers", 0u64);
        let epacts = TracedVar::new(EASTER, "epactTable", 0u64);
        let moons = TracedVar::new(EASTER, "paschalMoons", 0u64);
        let mut threads = Vec::new();
        for i in 0..3 {
            let (cctor, golden) = (cctor.clone(), golden.clone());
            let (epacts, moons) = (epacts.clone(), moons.clone());
            threads.push(SimThread::start(
                "App.WorkingDays.Tests",
                "EasterWorker",
                move || {
                    // The CLR runs a class's static constructor before any
                    // method of the class *enters*: the blocking happens at
                    // the call site, so CalculateEasterDate-Begin lands
                    // strictly after .cctor-End.
                    cctor.ensure(|| {
                        api::sleep(Time::from_micros(200 * (i + 1)));
                        golden.set(0xDEAD_BEEF);
                        epacts.set(0xFEED);
                        moons.set(0xB00C);
                    });
                    api::app_method(EASTER, "CalculateEasterDate", golden.object(), || {
                        assert_eq!(golden.get(), 0xDEAD_BEEF);
                        assert_eq!(epacts.get(), 0xFEED);
                        assert_eq!(moons.get(), 0xB00C);
                    });
                },
            ));
        }
        for t in threads {
            t.join();
        }
    }));

    // A volatile flag: the computing thread publishes `ascension`; the
    // checking thread polls it (if-check with retry). A deliberate ~30 ms
    // think-time separates the write from the final confirming read so a
    // too-small `Near` (Table 7's 0.01 s row) loses the pair.
    tests.push(TestCase::new("ascension_flag_publication", || {
        let flag = TracedVar::new(HOLIDAYS, "ascension", false);
        let date = TracedVar::new(HOLIDAYS, "ascensionDate", 0u32);
        let (f2, d2) = (flag.clone(), date.clone());
        let writer = SimThread::start(HOLIDAYS, "ComputeAscension", move || {
            api::sleep(Time::from_millis(5));
            d2.set(139);
            f2.set(true);
        });
        flag.spin_until(Time::from_millis(10), |v| v);
        api::sleep(Time::from_millis(30)); // think time
        assert_eq!(date.get(), 139);
        writer.join();
    }));

    // Two widely separated phases reusing the same cache: with the default
    // `Near` the phases never pair across the 2.5 s gap; a 100 s `Near`
    // (Table 7) pairs them and floods the windows with noise.
    tests.push(TestCase::new("two_phase_working_days", || {
        let cache = Arc::new(DayCache::new());
        let c1 = Arc::clone(&cache);
        let t = SimThread::start("App.WorkingDays.Tests", "PhaseOne", move || {
            c1.get_or_add(2021, "<GetOrAdd>d1");
            c1.easter_day.get();
        });
        t.join();
        api::sleep(Time::from_secs(3));
        let c2 = Arc::clone(&cache);
        let t = SimThread::start("App.WorkingDays.Tests", "PhaseTwo", move || {
            c2.get_or_add(2022, "<GetOrAdd>d1");
            c2.easter_day.get();
        });
        t.join();
    }));

    tests
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    t.sync_groups = vec![
        SyncGroup::new(
            "end of atomic region (GetOrAdd)",
            Role::Release,
            [
                app_end(CACHE, "GetOrAdd"),
                lib_site(
                    "System.Collections.Concurrent.ConcurrentDictionary",
                    "GetOrAdd",
                ),
                app_end(CACHE, "<GetOrAdd>d1"),
                app_end(CACHE, "<GetOrAdd>d2"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "start of atomic region (GetOrAdd)",
            Role::Acquire,
            [
                app_begin(CACHE, "GetOrAdd"),
                lib_site(
                    "System.Collections.Concurrent.ConcurrentDictionary",
                    "GetOrAdd",
                ),
                app_begin(CACHE, "<GetOrAdd>d1"),
                app_begin(CACHE, "<GetOrAdd>d2"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of static constructor",
            Role::Release,
            app_end(EASTER, ".cctor"),
        ),
        SyncGroup::new(
            "first access after static constructor",
            Role::Acquire,
            app_begin(EASTER, "CalculateEasterDate"),
        ),
        SyncGroup::new(
            "write flag",
            Role::Release,
            field_write(HOLIDAYS, "ascension"),
        ),
        SyncGroup::new(
            "check flag",
            Role::Acquire,
            field_read(HOLIDAYS, "ascension"),
        ),
    ];
    t.volatile_fields = vec![(HOLIDAYS.into(), "ascension".into())];
    t.delegates = vec![
        ("App.WorkingDays.Tests".into(), "CacheWorkerA".into()),
        ("App.WorkingDays.Tests".into(), "CacheWorkerB".into()),
        ("App.WorkingDays.Tests".into(), "EasterWorker".into()),
        (HOLIDAYS.into(), "ComputeAscension".into()),
        ("App.WorkingDays.Tests".into(), "PhaseOne".into()),
        ("App.WorkingDays.Tests".into(), "PhaseTwo".into()),
    ];
    t
}

/// Builds App-2.
pub fn app() -> App {
    App {
        id: "App-2",
        name: "DateTime",
        loc: include_str!("app2_datetime.rs").lines().count(),
        tests: tests(),
        truth: truth(),
    }
}

#[cfg(test)]
mod tests_mod {
    use super::*;
    use sherlock_sim::SimConfig;

    #[test]
    fn all_tests_run_clean() {
        for (i, t) in app().tests.iter().enumerate() {
            let r = t.run(SimConfig::with_seed(100 + i as u64));
            assert!(r.is_clean(), "test {} failed: {:?}", t.name(), r.panics);
            assert!(!r.trace.is_empty());
        }
    }

    #[test]
    fn metadata_sane() {
        let a = app();
        assert_eq!(a.id, "App-2");
        assert_eq!(a.num_tests(), 4);
        assert!(a.loc > 100);
        assert_eq!(a.truth.sync_groups.len(), 6);
        assert!(a.truth.racy_ops.is_empty());
    }
}
