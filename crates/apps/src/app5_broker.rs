//! App-5 — `Broker` (modeled on Radical, paper Table 1/8).
//!
//! A messaging/model library: a message broker whose `SubscribeCore` must
//! complete before `Broadcast` delivers, finalizer-based synchronization
//! (the language runs `Finalize` only after the last reference drops),
//! a dispose-pattern service whose garbage collection is *too late* for the
//! `Near` window (the paper's Dispose false-negative category), an n-to-1
//! `WaitHandle.WaitAll` rendezvous, and two seeded racy counters.

use sherlock_core::{Role, TestCase};
use sherlock_sim::api;
use sherlock_sim::prims::{
    testfx::Assert, Barrier, EventWaitHandle, GcHeap, Monitor, SimThread, TracedVar,
};
use sherlock_trace::{OpRef, Time};

use crate::app::{app_begin, app_end, field_write, lib_site, App, GroundTruth, SyncGroup};

const ENTITY: &str = "Radical.Model.Entity";
const TRACKING: &str = "Radical.ChangeTracking.ChangeTrackingService";
const BROKER: &str = "Radical.Messaging.MessageBroker";
const TESTS: &str = "Radical.Messaging.MessageBrokerTests";

#[derive(Clone)]
struct MessageBroker {
    monitor: Monitor,
    subscribers: TracedVar<u32>,
    topic_index: TracedVar<u32>,
    delivered: TracedVar<u32>,
    delivery_log: TracedVar<u32>,
}

impl MessageBroker {
    fn new() -> Self {
        MessageBroker {
            monitor: Monitor::new(),
            subscribers: TracedVar::new(BROKER, "subscribers", 0),
            topic_index: TracedVar::new(BROKER, "topicIndex", 0),
            delivered: TracedVar::new(BROKER, "delivered", 0),
            delivery_log: TracedVar::new(BROKER, "deliveryLog", 0),
        }
    }

    /// Registers a subscription: updates the subscriber table *and* the
    /// topic index — the atomic registration is the synchronization.
    fn subscribe(&self) {
        let this = self.clone();
        api::app_method(
            BROKER,
            "<SubscribeCore>",
            self.subscribers.object(),
            move || {
                this.subscribers.update(|s| s + 1);
                this.topic_index.update(|t| t + 16);
            },
        );
    }

    fn broadcast(&self) -> u32 {
        let this = self.clone();
        api::app_method(
            BROKER,
            "<Broadcast>",
            self.subscribers.object(),
            move || {
                let subs = this.subscribers.get();
                let _ = this.topic_index.get();
                this.monitor.with_lock(|| {
                    this.delivered.update(|d| d + subs);
                    this.delivery_log.update(|l| l + 1);
                });
                subs
            },
        )
    }
}

fn tests() -> Vec<TestCase> {
    let mut tests = Vec::new();

    // Subscribe on the main thread, broadcast on a fresh thread: the fork
    // edge carries `<SubscribeCore>`'s completion into `<Broadcast>`.
    tests.push(TestCase::new("broker_on_different_thread", || {
        let broker = MessageBroker::new();
        broker.subscribe();
        let b2 = broker.clone();
        let t = SimThread::start(TESTS, "<MessageBroker_on_different_thread>", move || {
            let n = b2.broadcast();
            Assert::is_true(n >= 1, "subscription must be visible");
        });
        t.join();
    }));

    // Entity finalization: the finalizer reads state last touched by
    // EnsureNotDisposed; the GC delay is short enough to stay inside `Near`.
    tests.push(TestCase::new("entity_finalizer", || {
        let heap = GcHeap::new();
        let disposed = TracedVar::new(ENTITY, "disposed", false);
        let d2 = disposed.clone();
        api::app_method(ENTITY, "EnsureNotDisposed", disposed.object(), || {
            Assert::is_false(disposed.get(), "entity alive");
        });
        let finished = EventWaitHandle::new(false);
        let f2 = finished.clone();
        let reg = heap.register(ENTITY, "Finalize", disposed.object(), move || {
            d2.set(true);
            f2.set_untraced();
        });
        heap.drop_last_ref(reg, Time::from_millis(5));
        finished.wait_one_untraced();
    }));

    // Tracking-service disposal via a *slow* GC: the finalizer lands seconds
    // after the releasing access — outside `Near`, the window never forms,
    // and this synchronization stays invisible (paper §5.5, Dispose row).
    tests.push(TestCase::new("tracking_service_slow_dispose", || {
        let heap = GcHeap::new();
        let changes = TracedVar::new(TRACKING, "pendingChanges", 0u32);
        let c2 = changes.clone();
        api::app_method(TRACKING, "Commit", changes.object(), || {
            changes.set(3);
        });
        let finished = EventWaitHandle::new(false);
        let f2 = finished.clone();
        let reg = heap.register(TRACKING, "Finalize", changes.object(), move || {
            c2.get();
            f2.set_untraced();
        });
        heap.drop_last_ref(reg, Time::from_secs(2));
        finished.wait_one_untraced();
    }));

    // The n-to-1 rendezvous: two broadcasters signal their own events and
    // the main test waits for all of them (Table 8's WaitAll row).
    tests.push(TestCase::new("broadcast_from_multiple_threads", || {
        let broker = MessageBroker::new();
        broker.subscribe();
        let ev1 = EventWaitHandle::new(false);
        let ev2 = EventWaitHandle::new(false);
        let (b1, e1) = (broker.clone(), ev1.clone());
        let t1 = SimThread::start(TESTS, "<broadcast_from_multiple_thread>_1", move || {
            b1.broadcast();
            e1.set();
        });
        let (b2, e2) = (broker.clone(), ev2.clone());
        let t2 = SimThread::start(TESTS, "<broadcast_from_multiple_thread>_2", move || {
            b2.broadcast();
            e2.set();
        });
        EventWaitHandle::wait_all(&[&ev1, &ev2]);
        api::sleep(Time::from_millis(15)); // verification bookkeeping
        for _ in 0..3 {
            Assert::is_true(broker.delivered.get() >= 2, "both broadcasts landed");
            Assert::is_true(broker.delivery_log.get() >= 2, "log kept up");
            Assert::is_true(broker.subscribers.get() == 1, "subscriber table intact");
        }
        t1.join();
        t2.join();
    }));

    // A plain fork/join handoff: the parent publishes two settings with no
    // wrapping method, so `Thread.Start` itself is the only shared release.
    tests.push(TestCase::new("thread_start_handoff", || {
        let retry_limit = TracedVar::new(BROKER, "retryLimit", 0u32);
        let backoff = TracedVar::new(BROKER, "backoffMillis", 0u32);
        retry_limit.set(5);
        backoff.set(250);
        let (r2, b2) = (retry_limit.clone(), backoff.clone());
        let t = SimThread::start(TESTS, "<RetryWorker>", move || {
            for _ in 0..4 {
                assert_eq!(r2.get(), 5);
                assert_eq!(b2.get(), 250);
            }
        });
        t.join();
    }));

    // Seeded race: the dispatch counter is written by a broker callback
    // (run on a task the manual annotator cannot see) and the test runner.
    tests.push(TestCase::new("racy_dispatch_stats", || {
        // Task-ordered staging handoff (false report under Manual_dr)…
        let staging = TracedVar::new(BROKER, "stagingQueue", 0u32);
        let s2 = staging.clone();
        let setup = sherlock_sim::prims::Task::run(TESTS, "<StageSetup>", move || {
            s2.set(1);
        });
        setup.wait();
        staging.get();
        // …then a genuinely concurrent write/write race on the counter.
        let dispatch_count = TracedVar::new(TESTS, "dispatchCount", 0u32);
        let d2 = dispatch_count.clone();
        let t = sherlock_sim::prims::Task::run(TESTS, "<DispatchWorker>", move || {
            d2.set(7);
        });
        dispatch_count.set(8);
        t.wait();
    }));

    // Broadcasters rendezvous at a barrier before reading each other's
    // per-thread results (Manual_dr's annotation list covers barriers).
    tests.push(TestCase::new("barrier_rendezvous", || {
        let barrier = Barrier::new(2);
        let left = TracedVar::new(BROKER, "leftResult", 0u32);
        let right = TracedVar::new(BROKER, "rightResult", 0u32);
        let (b2, l2, r2) = (barrier.clone(), left.clone(), right.clone());
        let t = SimThread::start(TESTS, "<BarrierWorker>", move || {
            l2.set(10);
            b2.signal_and_wait();
            for _ in 0..3 {
                assert_eq!(r2.get(), 20);
            }
        });
        right.set(20);
        barrier.signal_and_wait();
        for _ in 0..3 {
            assert_eq!(left.get(), 10);
        }
        t.join();
    }));

    // A monitor condition variable: the dispatcher waits for a message under
    // the lock; the poster pulses after enqueueing.
    tests.push(TestCase::new("monitor_wait_pulse_dispatch", || {
        let m = Monitor::new();
        let pending = TracedVar::new(BROKER, "pendingMessages", 0u32);
        let kind = TracedVar::new(BROKER, "pendingKind", 0u32);
        let (m2, p2, k2) = (m.clone(), pending.clone(), kind.clone());
        let dispatcher = SimThread::start(TESTS, "<DispatchLoop>", move || {
            m2.enter();
            while p2.get() == 0 {
                m2.wait();
            }
            let _ = k2.get();
            p2.set(0);
            m2.exit();
        });
        api::sleep(Time::from_millis(1));
        m.enter();
        kind.set(7);
        pending.set(1);
        m.pulse();
        m.exit();
        dispatcher.join();
        assert_eq!(pending.get(), 0);
    }));

    tests
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    t.sync_groups = vec![
        SyncGroup::new(
            "end of SubscribeCore",
            Role::Release,
            app_end(BROKER, "<SubscribeCore>"),
        ),
        SyncGroup::new(
            "start of Broadcast",
            Role::Acquire,
            app_begin(BROKER, "<Broadcast>"),
        ),
        SyncGroup::new(
            "launch new thread",
            Role::Release,
            lib_site("System.Threading.Thread", "Start"),
        ),
        SyncGroup::new(
            "start of thread delegates",
            Role::Acquire,
            [
                app_begin(TESTS, "<MessageBroker_on_different_thread>"),
                app_begin(TESTS, "<broadcast_from_multiple_thread>_1"),
                app_begin(TESTS, "<broadcast_from_multiple_thread>_2"),
                app_begin(TESTS, "<RetryWorker>"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of last access (EnsureNotDisposed)",
            Role::Release,
            app_end(ENTITY, "EnsureNotDisposed"),
        ),
        SyncGroup::new(
            "start of disposal (Entity::Finalize)",
            Role::Acquire,
            app_begin(ENTITY, "Finalize"),
        ),
        SyncGroup::new(
            "start of disposal (tracking service)",
            Role::Acquire,
            app_begin(TRACKING, "Finalize"),
        ),
        SyncGroup::new(
            "end of last access (commit)",
            Role::Release,
            app_end(TRACKING, "Commit"),
        ),
        SyncGroup::new(
            "wait for semaphore (WaitAll)",
            Role::Acquire,
            lib_site("System.Threading.WaitHandle", "WaitAll"),
        ),
        SyncGroup::new(
            "release semaphore (event set)",
            Role::Release,
            lib_site("System.Threading.EventWaitHandle", "Set"),
        ),
        SyncGroup::new(
            "release lock",
            Role::Release,
            lib_site("System.Threading.Monitor", "Exit"),
        ),
        SyncGroup::new(
            "acquire lock",
            Role::Acquire,
            lib_site("System.Threading.Monitor", "Enter"),
        ),
        SyncGroup::new(
            "end of last access (Assert)",
            Role::Release,
            [
                lib_site(
                    "Microsoft.VisualStudio.TestTools.UnitTesting.Assert",
                    "IsTrue",
                ),
                lib_site(
                    "Microsoft.VisualStudio.TestTools.UnitTesting.Assert",
                    "IsFalse",
                ),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "end of thread delegates (join edge)",
            Role::Release,
            [
                app_end(TESTS, "<MessageBroker_on_different_thread>"),
                app_end(TESTS, "<broadcast_from_multiple_thread>_1"),
                app_end(TESTS, "<broadcast_from_multiple_thread>_2"),
            ]
            .concat(),
        ),
        SyncGroup::new(
            "join returns",
            Role::Acquire,
            lib_site("System.Threading.Thread", "Join"),
        ),
    ];
    t.racy_ops
        .insert(OpRef::field_read(TESTS, "dispatchCount").intern());
    t.racy_ops
        .insert(OpRef::field_write(TESTS, "dispatchCount").intern());
    t.race_locations.insert(format!("{TESTS}::dispatchCount"));
    t.sync_groups.push(SyncGroup::new(
        "start/end of dispatch task delegate",
        Role::Acquire,
        [
            app_begin(TESTS, "<DispatchWorker>"),
            app_begin(TESTS, "<StageSetup>"),
        ]
        .concat(),
    ));
    t.sync_groups.push(SyncGroup::new(
        "end of dispatch task delegate",
        Role::Release,
        [
            app_end(TESTS, "<DispatchWorker>"),
            app_end(TESTS, "<StageSetup>"),
        ]
        .concat(),
    ));
    t.sync_groups.push(SyncGroup::new(
        "staging queue publication",
        Role::Release,
        field_write(BROKER, "stagingQueue"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "task wait returns",
        Role::Acquire,
        lib_site("System.Threading.Tasks.Task", "Wait"),
    ));
    t.delegates = vec![
        (TESTS.into(), "<BarrierWorker>".into()),
        (TESTS.into(), "<DispatchLoop>".into()),
        (TESTS.into(), "<RetryWorker>".into()),
        (TESTS.into(), "<MessageBroker_on_different_thread>".into()),
        (TESTS.into(), "<broadcast_from_multiple_thread>_1".into()),
        (TESTS.into(), "<broadcast_from_multiple_thread>_2".into()),
    ];
    // `subscribers`/`delivered` writes may surface as flag-style inferences;
    // accept the `delivered` pair as lock-protected (not sync) but treat the
    // subscribers handoff itself as legitimate variable synchronization.
    t.sync_groups.push(SyncGroup::new(
        "write subscribers (publication)",
        Role::Release,
        field_write(BROKER, "subscribers"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "barrier rendezvous",
        Role::Acquire,
        lib_site("System.Threading.Barrier", "SignalAndWait"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "barrier rendezvous (release side)",
        Role::Release,
        lib_site("System.Threading.Barrier", "SignalAndWait"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "start of barrier/dispatch workers",
        Role::Acquire,
        [
            app_begin(TESTS, "<BarrierWorker>"),
            app_begin(TESTS, "<DispatchLoop>"),
        ]
        .concat(),
    ));
    t.sync_groups.push(SyncGroup::new(
        "end of barrier/dispatch workers",
        Role::Release,
        [
            app_end(TESTS, "<BarrierWorker>"),
            app_end(TESTS, "<DispatchLoop>"),
        ]
        .concat(),
    ));
    t.sync_groups.push(SyncGroup::new(
        "monitor pulse (signal)",
        Role::Release,
        lib_site("System.Threading.Monitor", "Pulse"),
    ));
    t.sync_groups.push(SyncGroup::new(
        "monitor wait (condition)",
        Role::Acquire,
        lib_site("System.Threading.Monitor", "Wait"),
    ));
    t
}

/// Builds App-5.
pub fn app() -> App {
    App {
        id: "App-5",
        name: "Broker",
        loc: include_str!("app5_broker.rs").lines().count(),
        tests: tests(),
        truth: truth(),
    }
}

#[cfg(test)]
mod tests_mod {
    use super::*;
    use sherlock_sim::SimConfig;

    #[test]
    fn all_tests_run_clean() {
        for (i, t) in app().tests.iter().enumerate() {
            let r = t.run(SimConfig::with_seed(500 + i as u64));
            assert!(r.is_clean(), "test {} failed: {:?}", t.name(), r.panics);
        }
    }

    #[test]
    fn broker_counts_subscribers() {
        let r = sherlock_sim::Sim::new(SimConfig::with_seed(555)).run(|| {
            let b = MessageBroker::new();
            b.subscribe();
            b.subscribe();
            assert_eq!(b.broadcast(), 2);
        });
        assert!(r.is_clean(), "{:?}", r.panics);
    }
}
