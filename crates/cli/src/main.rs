//! `sherlock` — the command-line interface, mirroring the paper artifact's
//! workflow (`Loop-delay-solve.ps1 [appname] [#round]`, §A.5):
//!
//! ```text
//! sherlock list                                # the benchmark suite
//! sherlock infer  <app> [--rounds N] [--lambda X] [--near-ms N] [--out FILE]
//! sherlock observe <app> [--seed N] [--out-dir DIR]   # save traces as JSON
//! sherlock solve  <trace.json>...              # inference over saved traces
//! sherlock races  <app> [--spec manual|inferred|none]
//! sherlock explore <app> [--runs N] [--strategy random|pct|rr]   # schedule coverage
//! sherlock fleet  [--count N] [--seed N] [--min-precision X]     # generated-app gate
//! sherlock serve  [--addr HOST:PORT] [--workers N]   # long-lived inference daemon
//! sherlock metrics [--addr HOST:PORT] [--watch]      # live daemon introspection
//! ```
//!
//! Every subcommand also accepts the global observability flags
//! `--log <level>`, `--trace-out <file>`, `--folded-out <file>`, and
//! `--profile` (see README.md, "Observability").

use std::collections::BTreeMap;
use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    // Seeded racy workloads fail assertions by design; the simulator catches
    // those panics and the reports note them. Suppress default-handler noise
    // for simulated threads ONLY — a panic anywhere else (the driver, the
    // solver, this binary) must stay loudly visible.
    sherlock_sim::install_sim_panic_hook();
    sherlock_obs::init_from_env();

    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let (positional, flags) = match parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = apply_obs_flags(&flags) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let result = match command.as_str() {
        "list" => commands::list(),
        "infer" => commands::infer(&positional, &flags),
        "observe" => commands::observe(&positional, &flags),
        "solve" => commands::solve(&positional, &flags),
        "races" => commands::races(&positional, &flags),
        "explore" => commands::explore(&positional, &flags),
        "fleet" => commands::fleet(&flags),
        "serve" => commands::serve(&flags),
        "metrics" => commands::metrics(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };

    // Write the collapsed-stack (flamegraph) view of everything the command
    // ran, if requested.
    if let Some(path) = flags.get("folded-out") {
        let folded = sherlock_obs::snapshot().render_folded();
        if let Err(e) = std::fs::write(path, folded) {
            eprintln!("error: writing {path}: {e}");
        } else {
            eprintln!("collapsed stacks written to {path}");
        }
    }
    // Append the final metrics snapshot to --trace-out, if enabled.
    sherlock_obs::flush_jsonl();

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Applies the global observability flags (`--log`, `--trace-out`).
fn apply_obs_flags(flags: &Flags) -> Result<(), String> {
    if let Some(raw) = flags.get("log") {
        let level = sherlock_obs::Level::parse(raw)
            .ok_or_else(|| format!("--log expects error|warn|info|debug|trace|off, got {raw:?}"))?;
        sherlock_obs::set_log_level(level);
    }
    if let Some(path) = flags.get("trace-out") {
        sherlock_obs::set_jsonl_file(path).map_err(|e| format!("opening {path}: {e}"))?;
    }
    Ok(())
}

const USAGE: &str = "\
sherlock — unsupervised synchronization-operation inference

USAGE:
  sherlock list
      List the benchmark applications and their unit tests.

  sherlock infer <app> [--rounds N] [--lambda X] [--near-ms N]
                 [--delay-ms N] [--soft-single-role] [--out report.json]
      Run the full Observer -> Solver -> Perturber pipeline on an
      application's test suite (3 rounds by default, like the paper) and
      print the inferred synchronizations.

  sherlock observe <app> [--seed N] [--out-dir DIR]
      Run each unit test once and write its trace as JSON (default DIR:
      traces/<app>).

  sherlock races <app> [--spec manual|inferred|none] [--rounds N]
      Run the FastTrack race detector over the application's tests under
      the chosen synchronization specification (first report per run).

  sherlock explore <app> [--runs N] [--strategy random|pct|rr] [--depth N]
                   [--quantum N] [--seed N] [--jobs N] [--rounds N]
                   [--no-oracle] [--out report.json]
      Fan the application's tests out across N seeded schedules under the
      chosen scheduling strategy (PCT depth via --depth, round-robin
      quantum via --quantum), deduplicate schedules by trace hash, and run
      the differential FastTrack oracle (ground-truth spec vs. the spec
      inferred after absorbing the explored traces). Exits nonzero on any
      spec disagreement.

  sherlock explore <app> --campaign [--max-schedules N] [--batch N]
                   [--seed N] [--jobs N] [--filter-bits N] [--progress]
                   [--addr HOST:PORT] [--session KEY] [--test NAME]
                   [--out report.json]
      Streaming campaign engine: a novelty-guided bandit over scheduling
      arms (random walk, PCT depths, round-robin) with probabilistic
      schedule dedup — memory stays bounded by the filter (--filter-bits
      sets log2 bits; default auto-sizes), and runs are deterministic for
      any --jobs. --progress prints one metrics-style line per batch. With
      --addr, the campaign runs server-side against a daemon session via
      the explore verb (distinct traces are absorbed into --session,
      default the app id) with the same progress frames streamed back.

  sherlock solve <trace.json>... [--lambda X] [--near-ms N]
      Run window extraction and the Solver over previously saved traces.

  sherlock fleet [--count N] [--seed N] [--rounds N] [--min-precision X]
                 [--min-recall X] [--out scores.json]
      Generate a deterministic fleet of synchronization-idiom apps (32 by
      default) with machine-derived ground truth, run the full pipeline
      over each, and print per-idiom precision/recall plus Table-2-style
      verdict counts. Exits nonzero when fleet precision or recall falls
      below the gate thresholds (0.95 each by default). --out writes the
      per-idiom and per-app scores as JSON.

  sherlock serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
                 [--max-sessions N] [--batch-max N] [--lambda X] [--near-ms N]
                 [--data-dir DIR] [--shards N] [--snapshot-every N]
      Run the long-lived inference daemon (default 127.0.0.1:7477; port 0
      binds an ephemeral port). Clients speak line-delimited JSON: one
      request object per line (types absorb_trace, solve, race_check,
      stats, metrics, ping, shutdown), one response line per request, in
      request order per connection. Observations accumulate per session
      key until the LRU cap (--max-sessions) evicts the coldest session; a
      full queue (--queue-capacity) yields explicit busy responses. A
      shutdown request drains admitted work, then the process exits.
      With --data-dir, sessions are durable: every absorbed trace is
      write-ahead logged to a per-session oplog, a snapshot replaces the
      log every --snapshot-every ops (default 256), eviction spills to
      disk, and a restarted daemon (even after kill -9) transparently
      rehydrates a session on its next request and re-solves the identical
      spec. --shards (default 8) splits the session map across independent
      locks and disk subdirectories.

  sherlock metrics [--addr HOST:PORT] [--watch] [--interval-ms N] [--json]
      Query a running daemon's live metric snapshot (global + per-session
      counters, histogram quantiles, worker-pool queue depths) via the
      metrics verb. --watch polls every --interval-ms (default 1000) until
      interrupted; --json prints the raw response document.

GLOBAL FLAGS (any subcommand):
  --log <level>       Leveled stderr logging: error|warn|info|debug|trace|off.
                      SHERLOCK_LOG sets the same gate; the flag wins.
  --trace-out <file>  Write a JSON-lines telemetry stream (spans, events,
                      log records, final metrics snapshot) to <file>; every
                      line carries the active trace context.
  --folded-out <file> After the command, write its span stacks in
                      collapsed-stack (flamegraph) format, loadable in
                      speedscope or inferno-flamegraph.
  --profile           After `infer`/`solve`/`races`, print a per-phase
                      time/count breakdown of the pipeline.
";

type Flags = BTreeMap<String, String>;

/// Splits `--flag value` / `--flag` pairs from positional arguments.
fn parse(args: impl Iterator<Item = String>) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags = Flags::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match args.peek() {
                Some(v) if !v.starts_with("--") => args.next().expect("peeked"),
                _ => String::from("true"),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a);
        }
    }
    Ok((positional, flags))
}
