//! Implementations of the `sherlock` subcommands.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use sherlock_apps::{all_apps, app_by_id, App};
use sherlock_core::{Session, SherLock, SherLockConfig};
use sherlock_fleet::{generate_fleet, score_fleet, GrammarConfig};
use sherlock_obs::json::Json;
use sherlock_racer::{detect, differential, first_race, SyncSpec};
use sherlock_sim::{
    Campaign, CampaignConfig, CampaignProgress, ExploreConfig, Explorer, SimConfig, StrategyKind,
};
use sherlock_trace::{windows, Time, Trace};

type Flags = BTreeMap<String, String>;

fn flag_u64(flags: &Flags, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
    }
}

fn flag_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

fn the_app(positional: &[String]) -> Result<App, String> {
    let name = positional
        .first()
        .ok_or_else(|| "expected an application (try `sherlock list`)".to_string())?;
    app_by_id(name).ok_or_else(|| format!("unknown application {name:?} (try `sherlock list`)"))
}

fn config_from(flags: &Flags) -> Result<SherLockConfig, String> {
    let mut cfg = SherLockConfig::default();
    cfg.lambda = flag_f64(flags, "lambda", cfg.lambda)?;
    cfg.near = Time::from_millis(flag_u64(flags, "near-ms", 1000)?);
    cfg.delay = Time::from_millis(flag_u64(flags, "delay-ms", 100)?);
    cfg.delay_probability = flag_f64(flags, "delay-probability", 1.0)?;
    cfg.soft_single_role = flags.contains_key("soft-single-role");
    Ok(cfg)
}

/// Implements `--profile`: marks command start, and on [`Profiler::finish`]
/// prints the per-phase time/count breakdown of everything that ran in
/// between, with percentages against this command's wall-clock time.
struct Profiler {
    enabled: bool,
    start: std::time::Instant,
    base: sherlock_obs::Snapshot,
}

impl Profiler {
    fn new(flags: &Flags) -> Self {
        Profiler {
            enabled: flags.contains_key("profile"),
            start: std::time::Instant::now(),
            base: sherlock_obs::snapshot(),
        }
    }

    fn finish(self) {
        if self.enabled {
            let wall_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let delta = sherlock_obs::snapshot().delta(&self.base);
            println!("\n-- profile --");
            print!("{}", delta.render_profile(wall_ns));
        }
    }
}

/// `sherlock list`
pub fn list() -> Result<(), String> {
    for app in all_apps() {
        println!(
            "{}  {} ({} LoC, {} tests)",
            app.id,
            app.name,
            app.loc,
            app.num_tests()
        );
        for t in &app.tests {
            println!("    - {}", t.name());
        }
    }
    Ok(())
}

/// Serializes an inference report (the `--out` file): inferred sites, LP
/// size, and the session's telemetry snapshot.
fn report_to_json(report: &sherlock_core::InferenceReport) -> Json {
    let sites = |ops: Vec<String>| Json::Arr(ops.into_iter().map(Json::Str).collect());
    Json::Obj(vec![
        (
            "releases".to_string(),
            sites(
                report
                    .releases()
                    .map(|op| op.resolve().to_string())
                    .collect(),
            ),
        ),
        (
            "acquires".to_string(),
            sites(
                report
                    .acquires()
                    .map(|op| op.resolve().to_string())
                    .collect(),
            ),
        ),
        ("num_windows".to_string(), Json::from(report.num_windows)),
        (
            "num_variables".to_string(),
            Json::from(report.num_variables),
        ),
        ("racy_pairs".to_string(), Json::from(report.racy_pairs)),
        ("objective".to_string(), Json::Num(report.objective)),
        ("telemetry".to_string(), report.telemetry.to_json()),
    ])
}

fn emit_report(report: &sherlock_core::InferenceReport, flags: &Flags) -> Result<(), String> {
    print!("{}", report.render());
    println!(
        "({} windows, {} variables, {} racy pairs pruned)",
        report.num_windows, report.num_variables, report.racy_pairs
    );
    if let Some(path) = flags.get("out") {
        let json = report_to_json(report).render_pretty();
        fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("report written to {path}");
    }
    Ok(())
}

/// `sherlock infer <app> [...]`
pub fn infer(positional: &[String], flags: &Flags) -> Result<(), String> {
    let app = the_app(positional)?;
    let rounds = flag_u64(flags, "rounds", 3)? as usize;
    let cfg = config_from(flags)?;
    let profiler = Profiler::new(flags);
    let mut sl = SherLock::new(cfg);
    sl.run_rounds(&app.tests, rounds)
        .map_err(|e| format!("solver failed: {e}"))?;
    println!("== {} ({}) after {rounds} round(s)", app.id, app.name);
    emit_report(sl.report(), flags)?;
    profiler.finish();
    Ok(())
}

/// `sherlock observe <app> [...]`
pub fn observe(positional: &[String], flags: &Flags) -> Result<(), String> {
    let app = the_app(positional)?;
    let seed = flag_u64(flags, "seed", 0)?;
    let default_dir = format!("traces/{}", app.id);
    let dir = flags.get("out-dir").cloned().unwrap_or(default_dir);
    fs::create_dir_all(&dir).map_err(|e| format!("creating {dir}: {e}"))?;
    for (i, test) in app.tests.iter().enumerate() {
        let run = test.run(SimConfig::with_seed(seed.wrapping_add(i as u64)));
        let path = Path::new(&dir).join(format!("{}.trace.json", test.name()));
        let json = sherlock_trace::json::to_json(&run.trace);
        fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "{:40} {:>6} events, {:>2} panics -> {}",
            test.name(),
            run.trace.len(),
            run.panics.len(),
            path.display()
        );
    }
    Ok(())
}

/// `sherlock solve <trace.json>... [...]` — the one-shot shape of the same
/// [`Session`] API the service uses: absorb every trace, solve once.
pub fn solve(positional: &[String], flags: &Flags) -> Result<(), String> {
    if positional.is_empty() {
        return Err("expected at least one trace file".into());
    }
    let profiler = Profiler::new(flags);
    let mut session = Session::new(config_from(flags)?);
    for path in positional {
        let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let trace: Trace =
            sherlock_trace::json::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        session.absorb_trace(&trace);
    }
    session.solve().map_err(|e| format!("solver failed: {e}"))?;
    session.refresh_telemetry();
    println!("== inference over {} trace file(s)", positional.len());
    emit_report(session.report(), flags)?;
    profiler.finish();
    Ok(())
}

/// `sherlock serve [...]` — runs the long-lived inference daemon until a
/// protocol `shutdown` request drains it.
pub fn serve(flags: &Flags) -> Result<(), String> {
    let mut cfg = sherlock_serve::ServeConfig::default();
    cfg.sherlock = config_from(flags)?;
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.clone();
    }
    cfg.workers = flag_u64(flags, "workers", 0)? as usize;
    cfg.queue_capacity = flag_u64(flags, "queue-capacity", cfg.queue_capacity as u64)? as usize;
    cfg.max_sessions = flag_u64(flags, "max-sessions", cfg.max_sessions as u64)? as usize;
    cfg.batch_max = flag_u64(flags, "batch-max", cfg.batch_max as u64)? as usize;
    cfg.data_dir = flags.get("data-dir").map(std::path::PathBuf::from);
    cfg.shards = flag_u64(flags, "shards", cfg.shards as u64)? as usize;
    cfg.snapshot_every = flag_u64(flags, "snapshot-every", cfg.snapshot_every)?;

    let server = sherlock_serve::Server::bind(cfg).map_err(|e| format!("bind: {e}"))?;
    println!("sherlock-serve listening on {}", server.local_addr());
    let summary = server.serve();
    println!("drained: {}", summary.to_json().render());
    Ok(())
}

/// Renders one `metrics` response compactly: pool state, latency and
/// solver-flight-recorder quantiles, per-session tallies.
fn render_metrics(doc: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let n = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "uptime {:>6}ms  workers {}  pending {}/{}  sessions {}  busy {}  evictions {}",
        n("uptime_ms"),
        n("workers"),
        n("pending"),
        n("queue_capacity"),
        n("sessions"),
        n("busy_rejections"),
        n("evictions"),
    );
    if let Some(hists) = doc.get("histograms").and_then(Json::as_object) {
        let interesting = [
            "serve.request_ns",
            "serve.queue_wait_ns",
            "lp.pivots",
            "lp.phase1_iters",
            "lp.phase2_iters",
            "lp.resolve_rounds",
        ];
        for (name, h) in hists {
            if !interesting.contains(&name.as_str()) {
                continue;
            }
            let q = |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {name:<24} count {:>8}  p50 {:>12}  p99 {:>12}  max {:>12}",
                q("count"),
                q("p50"),
                q("p99"),
                q("max"),
            );
        }
    }
    if let Some(sessions) = doc.get("per_session").and_then(Json::as_object) {
        for (key, s) in sessions {
            let q = |k: &str| s.get(k).and_then(Json::as_u64).unwrap_or(0);
            let _ = writeln!(
                out,
                "  session {key:<16} requests {:>8}  errors {:>4}  total {:>10}",
                q("requests"),
                q("errors"),
                sherlock_obs::fmt_ns(q("total_ns")),
            );
        }
    }
    out
}

/// `sherlock metrics [--addr HOST:PORT] [--watch] [--interval-ms N]
/// [--json]` — polls a running daemon's `metrics` verb.
pub fn metrics(flags: &Flags) -> Result<(), String> {
    let default_addr = sherlock_serve::ServeConfig::default().addr;
    let addr = flags.get("addr").cloned().unwrap_or(default_addr);
    let watch = flags.contains_key("watch");
    let interval = flag_u64(flags, "interval-ms", 1000)?;
    let raw = flags.contains_key("json");
    let mut client =
        sherlock_serve::Client::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    loop {
        let resp = client.metrics().map_err(|e| format!("metrics: {e}"))?;
        if !resp.ok {
            return Err(format!(
                "metrics failed: {}",
                resp.error.unwrap_or_default()
            ));
        }
        if raw {
            println!("{}", resp.doc.render_pretty());
        } else {
            print!("{}", render_metrics(&resp.doc));
        }
        if !watch {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval.max(50)));
        println!();
    }
}

fn parse_strategy(flags: &Flags) -> Result<StrategyKind, String> {
    let name = flags
        .get("strategy")
        .map(String::as_str)
        .unwrap_or("random");
    match name {
        "random" => Ok(StrategyKind::RandomWalk),
        "pct" => Ok(StrategyKind::Pct {
            depth: flag_u64(flags, "depth", 3)? as u32,
        }),
        "rr" => Ok(StrategyKind::RoundRobin {
            quantum: flag_u64(flags, "quantum", 4)?,
        }),
        other => Err(format!("--strategy expects random|pct|rr, got {other:?}")),
    }
}

/// `sherlock explore <app> [...]` — the schedule-exploration harness: fans
/// each unit test across many seeds under the chosen strategy, deduplicates
/// schedules by trace hash, and (unless `--no-oracle`) runs the differential
/// FastTrack oracle comparing the ground-truth spec against the spec SherLock
/// infers after absorbing every distinct explored trace.
pub fn explore(positional: &[String], flags: &Flags) -> Result<(), String> {
    let app = the_app(positional)?;
    if flags.contains_key("campaign") {
        return explore_campaign(&app, flags);
    }
    let runs = flag_u64(flags, "runs", 64)?;
    let base_seed = flag_u64(flags, "seed", 0)?;
    let jobs = flag_u64(flags, "jobs", 0)? as usize;
    let strategy = parse_strategy(flags)?;
    let cfg = config_from(flags)?;
    let profiler = Profiler::new(flags);
    let explore_start = sherlock_obs::snapshot();

    let wcfg = windows::WindowConfig {
        near: cfg.near,
        cap_per_pair: cfg.cap_per_pair,
    };
    let ground = app.truth.full_spec();

    println!(
        "== exploring {} ({}) — {} run(s), strategy {}",
        app.id,
        app.name,
        runs,
        strategy.name()
    );

    // Distribute the run budget round-robin over the test suite; each test's
    // campaign gets a disjoint seed block so schedules never reuse a seed.
    let num_tests = app.tests.len().max(1) as u64;
    let mut distinct_reports = Vec::new();
    let mut total_runs = 0u64;
    let mut racy_schedules = 0usize;
    let mut racy_windows = 0usize;
    let mut deadlocks = 0usize;
    let mut panics = 0usize;
    let mut per_test_json = Vec::new();
    for (t, test) in app.tests.iter().enumerate() {
        let test_runs = runs / num_tests + u64::from((t as u64) < runs % num_tests);
        if test_runs == 0 {
            continue;
        }
        let mut ecfg = ExploreConfig::default();
        ecfg.runs = test_runs;
        ecfg.base_seed = base_seed.wrapping_add((t as u64) << 32);
        ecfg.strategy = strategy;
        ecfg.jobs = jobs;
        ecfg.sim.instrument = cfg.instrument.clone();
        let result = Explorer::new(ecfg).run(test.body());
        total_runs += result.runs();

        let mut test_racy = 0usize;
        let mut test_windows = 0usize;
        let mut hashes = Vec::new();
        for report in &result.distinct {
            let seeded_race = detect(&report.trace, &ground)
                .iter()
                .any(|r| app.truth.is_true_race(&r.location));
            if seeded_race {
                test_racy += 1;
            }
            test_windows += windows::extract(&report.trace, &wcfg)
                .iter()
                .filter(|w| w.is_racy())
                .count();
            hashes.push(report.trace.stable_hash());
        }
        racy_schedules += test_racy;
        racy_windows += test_windows;
        deadlocks += result.deadlocks();
        panics += result.panics();
        println!(
            "  {:40} {:>4} runs, {:>3} distinct, {:>2} with a seeded race",
            test.name(),
            result.runs(),
            result.distinct.len(),
            test_racy
        );
        per_test_json.push(Json::Obj(vec![
            ("test".to_string(), Json::Str(test.name().to_string())),
            ("runs".to_string(), Json::from(result.runs())),
            (
                "distinct".to_string(),
                Json::from(result.distinct.len() as u64),
            ),
            ("seeded_racy".to_string(), Json::from(test_racy as u64)),
            (
                "hashes".to_string(),
                Json::Arr(
                    hashes
                        .iter()
                        .map(|h| Json::Str(format!("{h:016x}")))
                        .collect(),
                ),
            ),
        ]));
        distinct_reports.extend(result.distinct);
    }
    println!(
        "{} run(s): {} distinct schedule(s), {} with a seeded race, {} racy window(s), {} deadlock(s), {} panic schedule(s)",
        total_runs,
        distinct_reports.len(),
        racy_schedules,
        racy_windows,
        deadlocks,
        panics
    );

    // Differential oracle: infer normally, then absorb every distinct
    // explored trace and re-solve, so the inferred spec has seen exactly the
    // schedules it will be judged on.
    let mut oracle_json = Json::Null;
    if !flags.contains_key("no-oracle") {
        let rounds = flag_u64(flags, "rounds", 3)? as usize;
        let mut sl = SherLock::new(cfg);
        sl.run_rounds(&app.tests, rounds)
            .map_err(|e| format!("solver failed: {e}"))?;
        for report in &distinct_reports {
            sl.absorb_trace(&report.trace);
        }
        let inferred =
            SyncSpec::from_report(sl.resolve().map_err(|e| format!("solver failed: {e}"))?);
        let traces: Vec<&Trace> = distinct_reports.iter().map(|r| &r.trace).collect();
        let diff = differential(&traces, &ground, &inferred, &app.truth.race_locations);
        print!("{}", diff.render());
        oracle_json = Json::Obj(vec![
            ("traces".to_string(), Json::from(diff.traces as u64)),
            (
                "disagreements".to_string(),
                Json::from(diff.disagreements.len() as u64),
            ),
            (
                "ground_reports".to_string(),
                Json::from(diff.ground_reports as u64),
            ),
            (
                "inferred_reports".to_string(),
                Json::from(diff.inferred_reports as u64),
            ),
        ]);
        if !diff.agrees() {
            return Err(format!(
                "differential oracle found {} spec disagreement(s)",
                diff.disagreements.len()
            ));
        }
    }

    // Per-strategy exploration counters accumulated by this command.
    let delta = sherlock_obs::snapshot().delta(&explore_start);
    for (name, v) in delta.counters_with_prefix("explore.") {
        println!("  {name:<40} {v:>10}");
    }

    if let Some(path) = flags.get("out") {
        let doc = Json::Obj(vec![
            ("app".to_string(), Json::Str(app.id.to_string())),
            (
                "strategy".to_string(),
                Json::Str(strategy.name().to_string()),
            ),
            ("runs".to_string(), Json::from(total_runs)),
            (
                "distinct".to_string(),
                Json::from(distinct_reports.len() as u64),
            ),
            (
                "seeded_racy_schedules".to_string(),
                Json::from(racy_schedules as u64),
            ),
            ("racy_windows".to_string(), Json::from(racy_windows as u64)),
            ("deadlocks".to_string(), Json::from(deadlocks as u64)),
            ("panic_schedules".to_string(), Json::from(panics as u64)),
            ("tests".to_string(), Json::Arr(per_test_json)),
            ("oracle".to_string(), oracle_json),
            ("telemetry".to_string(), delta.to_json()),
        ]);
        fs::write(path, doc.render_pretty()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("exploration report written to {path}");
    }
    profiler.finish();
    Ok(())
}

/// One metrics-style progress line per campaign batch (shared by the local
/// and server-side `--campaign` paths).
fn render_campaign_progress(
    runs: u64,
    max: u64,
    distinct: u64,
    dedup: u64,
    rate: f64,
    occupancy: f64,
    arms: &[(String, u64, u64)],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(
        out,
        "  runs {runs:>8}/{max}  distinct {distinct:>7}  dedup {dedup:>8}  sched/s {:>8}  occ {:>5.2}%",
        rate.round() as u64,
        occupancy * 100.0,
    );
    let _ = write!(out, "  [");
    for (i, (label, runs, fresh)) in arms.iter().enumerate() {
        let _ = write!(
            out,
            "{}{label} {runs}/{fresh}",
            if i == 0 { "" } else { "  " }
        );
    }
    let _ = write!(out, "]");
    out
}

/// `sherlock explore <app> --campaign [...]` — the streaming campaign
/// engine: a novelty-guided bandit over (strategy, depth) arms with
/// probabilistic dedup, run locally or (with `--addr`) server-side via the
/// daemon's `explore` verb.
fn explore_campaign(app: &App, flags: &Flags) -> Result<(), String> {
    let max_schedules = flag_u64(flags, "max-schedules", 2048)?;
    let seed = flag_u64(flags, "seed", 0)?;
    let jobs = flag_u64(flags, "jobs", 1)? as usize;
    let batch = flag_u64(flags, "batch", 64)?;
    let filter_bits = match flags.get("filter-bits") {
        None => None,
        Some(v) => Some(
            v.parse::<u32>()
                .map_err(|_| format!("--filter-bits expects an integer, got {v:?}"))?,
        ),
    };
    let progress = flags.contains_key("progress");
    let campaign_start = sherlock_obs::snapshot();

    println!(
        "== campaign over {} ({}) — {} schedule(s), batch {}, seed {}",
        app.id, app.name, max_schedules, batch, seed
    );

    if let Some(addr) = flags.get("addr") {
        // Server-side: the daemon runs the campaign against a session and
        // streams the same per-batch frames over the wire.
        let mut client =
            sherlock_serve::Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let mut fields = vec![
            ("max_schedules".to_string(), Json::from(max_schedules)),
            ("seed".to_string(), Json::from(seed)),
            ("jobs".to_string(), Json::from(jobs as u64)),
            ("batch".to_string(), Json::from(batch)),
            ("progress".to_string(), Json::Bool(progress)),
        ];
        if let Some(bits) = filter_bits {
            fields.push(("filter_bits".to_string(), Json::from(u64::from(bits))));
        }
        if let Some(test) = flags.get("test") {
            fields.push(("test".to_string(), Json::from(test.as_str())));
        }
        let session = flags
            .get("session")
            .cloned()
            .unwrap_or_else(|| app.id.to_string());
        let resp = client
            .explore(&session, app.id, fields, |frame| {
                let n = |k: &str| frame.get(k).and_then(Json::as_u64).unwrap_or(0);
                let arms: Vec<(String, u64, u64)> = frame
                    .get("arms")
                    .and_then(|a| match a {
                        Json::Arr(v) => Some(v),
                        _ => None,
                    })
                    .map(|v| {
                        v.iter()
                            .map(|a| {
                                (
                                    a.get("label")
                                        .and_then(Json::as_str)
                                        .unwrap_or("?")
                                        .to_string(),
                                    a.get("runs").and_then(Json::as_u64).unwrap_or(0),
                                    a.get("fresh").and_then(Json::as_u64).unwrap_or(0),
                                )
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                println!(
                    "{}",
                    render_campaign_progress(
                        n("runs"),
                        n("max_schedules"),
                        n("distinct"),
                        n("dedup_hits"),
                        n("sched_per_sec") as f64,
                        frame
                            .get("occupancy")
                            .and_then(|v| match v {
                                Json::Num(f) => Some(*f),
                                _ => None,
                            })
                            .unwrap_or(0.0),
                        &arms,
                    )
                );
            })
            .map_err(|e| format!("explore: {e}"))?;
        if !resp.ok {
            return Err(format!(
                "explore failed: {}",
                resp.error.unwrap_or_default()
            ));
        }
        let n = |k: &str| resp.doc.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "{} run(s): {} distinct, {} dedup hit(s), {} deadlock(s), {} panic schedule(s)",
            n("runs"),
            n("distinct"),
            n("dedup_hits"),
            n("deadlocks"),
            n("panics"),
        );
        println!(
            "  {} sched/s, filter {} KiB, digest {}, absorbed {} into session {:?}",
            n("sched_per_sec"),
            n("filter_bytes") / 1024,
            resp.doc
                .get("distinct_digest")
                .and_then(Json::as_str)
                .unwrap_or("?"),
            n("absorbed"),
            session,
        );
        if let Some(path) = flags.get("out") {
            fs::write(path, resp.doc.render_pretty())
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("campaign report written to {path}");
        }
        return Ok(());
    }

    // Local campaign over the whole test suite (one schedule = the suite
    // sequentially, matching the server-side default).
    let bodies: Vec<_> = app.tests.iter().map(|t| t.body()).collect();
    let workload: std::sync::Arc<dyn Fn() + Send + Sync> = std::sync::Arc::new(move || {
        for body in &bodies {
            body();
        }
    });
    let ccfg = CampaignConfig {
        max_schedules,
        base_seed: seed,
        jobs,
        batch,
        filter_bits,
        ..CampaignConfig::default()
    };
    let result = Campaign::new(ccfg).run_with_progress(workload, |p: &CampaignProgress| {
        if progress {
            let arms: Vec<(String, u64, u64)> = p
                .arms
                .iter()
                .map(|(label, runs, fresh, _)| (label.clone(), *runs, *fresh))
                .collect();
            println!(
                "{}",
                render_campaign_progress(
                    p.runs,
                    p.max_schedules,
                    p.distinct,
                    p.dedup_hits,
                    p.sched_per_sec,
                    p.occupancy,
                    &arms,
                )
            );
        }
    });

    println!(
        "{} run(s): {} distinct, {} dedup hit(s), {} deadlock(s), {} panic schedule(s)",
        result.runs, result.distinct, result.dedup_hits, result.deadlocks, result.panics,
    );
    println!(
        "  {:.0} sched/s over {:.2?}, filter {} KiB at {:.2}% occupancy (fp bound {:.2e}), digest {:016x}",
        result.sched_per_sec,
        result.elapsed,
        result.filter_bytes / 1024,
        result.filter_occupancy * 100.0,
        result.est_fp_rate,
        result.distinct_digest,
    );
    for arm in &result.arms {
        println!(
            "  arm {:<10} {:>8} run(s)  {:>7} fresh  ({:.1}% fresh)",
            arm.label,
            arm.runs,
            arm.fresh,
            if arm.runs > 0 {
                arm.fresh as f64 / arm.runs as f64 * 100.0
            } else {
                0.0
            }
        );
    }
    let delta = sherlock_obs::snapshot().delta(&campaign_start);
    for (name, v) in delta.counters_with_prefix("explore.") {
        println!("  {name:<40} {v:>10}");
    }

    if let Some(path) = flags.get("out") {
        let arms: Vec<Json> = result
            .arms
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("label".to_string(), Json::from(a.label.as_str())),
                    ("runs".to_string(), Json::from(a.runs)),
                    ("fresh".to_string(), Json::from(a.fresh)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("app".to_string(), Json::Str(app.id.to_string())),
            ("max_schedules".to_string(), Json::from(max_schedules)),
            ("seed".to_string(), Json::from(seed)),
            ("runs".to_string(), Json::from(result.runs)),
            ("distinct".to_string(), Json::from(result.distinct)),
            ("dedup_hits".to_string(), Json::from(result.dedup_hits)),
            ("deadlocks".to_string(), Json::from(result.deadlocks)),
            ("panics".to_string(), Json::from(result.panics)),
            (
                "distinct_digest".to_string(),
                Json::Str(format!("{:016x}", result.distinct_digest)),
            ),
            ("sched_per_sec".to_string(), Json::Num(result.sched_per_sec)),
            (
                "filter_bytes".to_string(),
                Json::from(result.filter_bytes as u64),
            ),
            (
                "filter_occupancy".to_string(),
                Json::Num(result.filter_occupancy),
            ),
            ("est_fp_rate".to_string(), Json::Num(result.est_fp_rate)),
            ("arms".to_string(), Json::Arr(arms)),
            ("telemetry".to_string(), delta.to_json()),
        ]);
        fs::write(path, doc.render_pretty()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("campaign report written to {path}");
    }
    Ok(())
}

/// `sherlock races <app> [...]`
pub fn races(positional: &[String], flags: &Flags) -> Result<(), String> {
    let app = the_app(positional)?;
    let spec_name = flags.get("spec").map(String::as_str).unwrap_or("inferred");
    let profiler = Profiler::new(flags);
    let spec = match spec_name {
        "manual" => app.truth.manual_spec(),
        "none" => SyncSpec::empty(),
        "inferred" => {
            let rounds = flag_u64(flags, "rounds", 3)? as usize;
            let mut sl = SherLock::new(config_from(flags)?);
            sl.run_rounds(&app.tests, rounds)
                .map_err(|e| format!("solver failed: {e}"))?;
            SyncSpec::from_report(sl.report())
        }
        other => {
            return Err(format!(
                "--spec expects manual|inferred|none, got {other:?}"
            ))
        }
    };
    println!(
        "== {} under the {} spec ({} acquires, {} releases)",
        app.id,
        spec_name,
        spec.acquires.len(),
        spec.releases.len()
    );
    let seed = flag_u64(flags, "seed", 0xD00D)?;
    let mut trues = 0;
    let mut falses = 0;
    for (i, test) in app.tests.iter().enumerate() {
        let run = {
            let _s = sherlock_obs::span("phase.observe");
            test.run(SimConfig::with_seed(seed.wrapping_add(i as u64)))
        };
        match first_race(&run.trace, &spec) {
            Some(r) => {
                let verdict = if app.truth.is_true_race(&r.location) {
                    trues += 1;
                    "TRUE "
                } else {
                    falses += 1;
                    "false"
                };
                println!(
                    "  {:40} {verdict} {:?} at {}",
                    test.name(),
                    r.kind,
                    r.location
                );
            }
            None => println!("  {:40} no race", test.name()),
        }
    }
    println!("{trues} true, {falses} false first reports");
    profiler.finish();
    Ok(())
}

/// `sherlock fleet [--count N] [--seed N] [--rounds N] [--min-precision X]
/// [--min-recall X] [--out scores.json]`
pub fn fleet(flags: &Flags) -> Result<(), String> {
    let count = flag_u64(flags, "count", 32)? as usize;
    let base_seed = flag_u64(flags, "seed", 0xf1ee7)?;
    let rounds = flag_u64(flags, "rounds", 2)? as usize;
    let min_precision = flag_f64(flags, "min-precision", 0.95)?;
    let min_recall = flag_f64(flags, "min-recall", 0.95)?;
    let profiler = Profiler::new(flags);

    let apps = generate_fleet(&GrammarConfig::default(), count, base_seed);
    let score = score_fleet(&apps, rounds)?;
    print!("{}", score.render());
    if let Some(path) = flags.get("out") {
        fs::write(path, score.to_json().render_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("fleet scores written to {path}");
    }
    profiler.finish();
    if score.precision() < min_precision || score.recall() < min_recall {
        return Err(format!(
            "fleet gate failed: precision {:.3} (min {min_precision:.2}), \
             recall {:.3} (min {min_recall:.2})",
            score.precision(),
            score.recall()
        ));
    }
    Ok(())
}
