//! Implementations of the `sherlock` subcommands.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use sherlock_apps::{all_apps, app_by_id, App};
use sherlock_core::{solver, Observations, SherLock, SherLockConfig};
use sherlock_obs::json::Json;
use sherlock_racer::{first_race, SyncSpec};
use sherlock_sim::SimConfig;
use sherlock_trace::{durations, windows, Time, Trace};

type Flags = BTreeMap<String, String>;

fn flag_u64(flags: &Flags, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
    }
}

fn flag_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

fn the_app(positional: &[String]) -> Result<App, String> {
    let name = positional
        .first()
        .ok_or_else(|| "expected an application (try `sherlock list`)".to_string())?;
    app_by_id(name).ok_or_else(|| format!("unknown application {name:?} (try `sherlock list`)"))
}

fn config_from(flags: &Flags) -> Result<SherLockConfig, String> {
    let mut cfg = SherLockConfig::default();
    cfg.lambda = flag_f64(flags, "lambda", cfg.lambda)?;
    cfg.near = Time::from_millis(flag_u64(flags, "near-ms", 1000)?);
    cfg.delay = Time::from_millis(flag_u64(flags, "delay-ms", 100)?);
    cfg.delay_probability = flag_f64(flags, "delay-probability", 1.0)?;
    cfg.soft_single_role = flags.contains_key("soft-single-role");
    Ok(cfg)
}

/// Implements `--profile`: marks command start, and on [`Profiler::finish`]
/// prints the per-phase time/count breakdown of everything that ran in
/// between, with percentages against this command's wall-clock time.
struct Profiler {
    enabled: bool,
    start: std::time::Instant,
    base: sherlock_obs::Snapshot,
}

impl Profiler {
    fn new(flags: &Flags) -> Self {
        Profiler {
            enabled: flags.contains_key("profile"),
            start: std::time::Instant::now(),
            base: sherlock_obs::snapshot(),
        }
    }

    fn finish(self) {
        if self.enabled {
            let wall_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let delta = sherlock_obs::snapshot().delta(&self.base);
            println!("\n-- profile --");
            print!("{}", delta.render_profile(wall_ns));
        }
    }
}

/// `sherlock list`
pub fn list() -> Result<(), String> {
    for app in all_apps() {
        println!(
            "{}  {} ({} LoC, {} tests)",
            app.id,
            app.name,
            app.loc,
            app.num_tests()
        );
        for t in &app.tests {
            println!("    - {}", t.name());
        }
    }
    Ok(())
}

/// Serializes an inference report (the `--out` file): inferred sites, LP
/// size, and the session's telemetry snapshot.
fn report_to_json(report: &sherlock_core::InferenceReport) -> Json {
    let sites = |ops: Vec<String>| Json::Arr(ops.into_iter().map(Json::Str).collect());
    Json::Obj(vec![
        (
            "releases".to_string(),
            sites(
                report
                    .releases()
                    .map(|op| op.resolve().to_string())
                    .collect(),
            ),
        ),
        (
            "acquires".to_string(),
            sites(
                report
                    .acquires()
                    .map(|op| op.resolve().to_string())
                    .collect(),
            ),
        ),
        ("num_windows".to_string(), Json::from(report.num_windows)),
        (
            "num_variables".to_string(),
            Json::from(report.num_variables),
        ),
        ("racy_pairs".to_string(), Json::from(report.racy_pairs)),
        ("objective".to_string(), Json::Num(report.objective)),
        ("telemetry".to_string(), report.telemetry.to_json()),
    ])
}

fn emit_report(report: &sherlock_core::InferenceReport, flags: &Flags) -> Result<(), String> {
    print!("{}", report.render());
    println!(
        "({} windows, {} variables, {} racy pairs pruned)",
        report.num_windows, report.num_variables, report.racy_pairs
    );
    if let Some(path) = flags.get("out") {
        let json = report_to_json(report).render_pretty();
        fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("report written to {path}");
    }
    Ok(())
}

/// `sherlock infer <app> [...]`
pub fn infer(positional: &[String], flags: &Flags) -> Result<(), String> {
    let app = the_app(positional)?;
    let rounds = flag_u64(flags, "rounds", 3)? as usize;
    let cfg = config_from(flags)?;
    let profiler = Profiler::new(flags);
    let mut sl = SherLock::new(cfg);
    sl.run_rounds(&app.tests, rounds)
        .map_err(|e| format!("solver failed: {e}"))?;
    println!("== {} ({}) after {rounds} round(s)", app.id, app.name);
    emit_report(sl.report(), flags)?;
    profiler.finish();
    Ok(())
}

/// `sherlock observe <app> [...]`
pub fn observe(positional: &[String], flags: &Flags) -> Result<(), String> {
    let app = the_app(positional)?;
    let seed = flag_u64(flags, "seed", 0)?;
    let default_dir = format!("traces/{}", app.id);
    let dir = flags.get("out-dir").cloned().unwrap_or(default_dir);
    fs::create_dir_all(&dir).map_err(|e| format!("creating {dir}: {e}"))?;
    for (i, test) in app.tests.iter().enumerate() {
        let run = test.run(SimConfig::with_seed(seed.wrapping_add(i as u64)));
        let path = Path::new(&dir).join(format!("{}.trace.json", test.name()));
        let json = sherlock_trace::json::to_json(&run.trace);
        fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "{:40} {:>6} events, {:>2} panics -> {}",
            test.name(),
            run.trace.len(),
            run.panics.len(),
            path.display()
        );
    }
    Ok(())
}

/// `sherlock solve <trace.json>... [...]`
pub fn solve(positional: &[String], flags: &Flags) -> Result<(), String> {
    if positional.is_empty() {
        return Err("expected at least one trace file".into());
    }
    let cfg = config_from(flags)?;
    let wcfg = windows::WindowConfig {
        near: cfg.near,
        cap_per_pair: cfg.cap_per_pair,
    };
    let profiler = Profiler::new(flags);
    let mut obs = Observations::new();
    for path in positional {
        let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let trace: Trace =
            sherlock_trace::json::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        let ws = {
            let _s = sherlock_obs::span("phase.windows");
            windows::extract(&trace, &wcfg)
        };
        for w in ws {
            if w.is_racy() {
                obs.mark_racy(w.pair());
            }
            obs.add_window(&w);
        }
        obs.add_durations(durations::extract(&trace));
        obs.finish_run();
    }
    let report = {
        let _s = sherlock_obs::span("phase.solve");
        solver::solve(&obs, &cfg).map_err(|e| format!("solver failed: {e}"))?
    };
    println!("== inference over {} trace file(s)", positional.len());
    emit_report(&report, flags)?;
    profiler.finish();
    Ok(())
}

/// `sherlock races <app> [...]`
pub fn races(positional: &[String], flags: &Flags) -> Result<(), String> {
    let app = the_app(positional)?;
    let spec_name = flags.get("spec").map(String::as_str).unwrap_or("inferred");
    let profiler = Profiler::new(flags);
    let spec = match spec_name {
        "manual" => app.truth.manual_spec(),
        "none" => SyncSpec::empty(),
        "inferred" => {
            let rounds = flag_u64(flags, "rounds", 3)? as usize;
            let mut sl = SherLock::new(config_from(flags)?);
            sl.run_rounds(&app.tests, rounds)
                .map_err(|e| format!("solver failed: {e}"))?;
            SyncSpec::from_report(sl.report())
        }
        other => {
            return Err(format!(
                "--spec expects manual|inferred|none, got {other:?}"
            ))
        }
    };
    println!(
        "== {} under the {} spec ({} acquires, {} releases)",
        app.id,
        spec_name,
        spec.acquires.len(),
        spec.releases.len()
    );
    let seed = flag_u64(flags, "seed", 0xD00D)?;
    let mut trues = 0;
    let mut falses = 0;
    for (i, test) in app.tests.iter().enumerate() {
        let run = {
            let _s = sherlock_obs::span("phase.observe");
            test.run(SimConfig::with_seed(seed.wrapping_add(i as u64)))
        };
        match first_race(&run.trace, &spec) {
            Some(r) => {
                let verdict = if app.truth.is_true_race(&r.location) {
                    trues += 1;
                    "TRUE "
                } else {
                    falses += 1;
                    "false"
                };
                println!(
                    "  {:40} {verdict} {:?} at {}",
                    test.name(),
                    r.kind,
                    r.location
                );
            }
            None => println!("  {:40} no race", test.name()),
        }
    }
    println!("{trues} true, {falses} false first reports");
    profiler.finish();
    Ok(())
}
