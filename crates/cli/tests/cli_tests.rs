//! End-to-end tests of the `sherlock` binary.

use std::process::Command;

fn sherlock(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sherlock"))
        .args(args)
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_all_eight_apps() {
    let (ok, stdout, _) = sherlock(&["list"]);
    assert!(ok);
    for id in ["App-1", "App-2", "App-3", "App-4", "App-5", "App-6", "App-7", "App-8"] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
}

#[test]
fn infer_prints_artifact_format() {
    let (ok, stdout, _) = sherlock(&["infer", "App-2"]);
    assert!(ok);
    assert!(stdout.contains("Releasing sites:"));
    assert!(stdout.contains("Acquire sites:"));
    assert!(stdout.contains("ascension"));
}

#[test]
fn infer_writes_json_report() {
    let path = format!("{}/app2-report.json", env!("CARGO_TARGET_TMPDIR"));
    let (ok, _, _) = sherlock(&["infer", "App-2", "--out", &path]);
    assert!(ok);
    let json = std::fs::read_to_string(&path).expect("report written");
    assert!(json.contains("\"releases\""));
    assert!(json.contains("\"acquires\""));
}

#[test]
fn observe_then_solve_round_trips() {
    let dir = format!("{}/traces-app2", env!("CARGO_TARGET_TMPDIR"));
    let (ok, stdout, stderr) = sherlock(&["observe", "App-2", "--out-dir", &dir]);
    assert!(ok, "observe failed: {stderr}");
    assert!(stdout.contains("events"));

    let mut traces: Vec<String> = std::fs::read_dir(&dir)
        .expect("trace dir exists")
        .map(|e| e.unwrap().path().display().to_string())
        .collect();
    traces.sort();
    assert_eq!(traces.len(), 4, "one trace per App-2 test");

    let mut args = vec!["solve"];
    args.extend(traces.iter().map(String::as_str));
    let (ok, stdout, stderr) = sherlock(&args);
    assert!(ok, "solve failed: {stderr}");
    assert!(stdout.contains("Releasing sites:"), "{stdout}");
}

#[test]
fn races_supports_all_specs() {
    for spec in ["manual", "inferred", "none"] {
        let (ok, stdout, stderr) = sherlock(&["races", "App-7", "--spec", spec]);
        assert!(ok, "--spec {spec} failed: {stderr}");
        assert!(stdout.contains("first reports"), "{stdout}");
    }
}

#[test]
fn unknown_app_is_a_clean_error() {
    let (ok, _, stderr) = sherlock(&["infer", "App-99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown application"));
}

#[test]
fn unknown_command_prints_usage() {
    let (ok, _, stderr) = sherlock(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn lambda_flag_changes_inference() {
    let (ok, strict, _) = sherlock(&["infer", "App-2", "--lambda", "100"]);
    assert!(ok);
    let (ok, default, _) = sherlock(&["infer", "App-2"]);
    assert!(ok);
    // λ=100 suppresses inference almost entirely (Table 6's right edge).
    let count = |s: &str| s.lines().filter(|l| l.starts_with("  ")).count();
    assert!(count(&strict) < count(&default), "{strict}\nvs\n{default}");
}
