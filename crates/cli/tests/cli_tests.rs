//! End-to-end tests of the `sherlock` binary.

use std::process::Command;

fn sherlock(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sherlock"))
        .args(args)
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_all_eight_apps() {
    let (ok, stdout, _) = sherlock(&["list"]);
    assert!(ok);
    for id in [
        "App-1", "App-2", "App-3", "App-4", "App-5", "App-6", "App-7", "App-8",
    ] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
}

#[test]
fn infer_prints_artifact_format() {
    let (ok, stdout, _) = sherlock(&["infer", "App-2"]);
    assert!(ok);
    assert!(stdout.contains("Releasing sites:"));
    assert!(stdout.contains("Acquire sites:"));
    assert!(stdout.contains("ascension"));
}

#[test]
fn infer_writes_json_report() {
    let path = format!("{}/app2-report.json", env!("CARGO_TARGET_TMPDIR"));
    let (ok, _, _) = sherlock(&["infer", "App-2", "--out", &path]);
    assert!(ok);
    let json = std::fs::read_to_string(&path).expect("report written");
    assert!(json.contains("\"releases\""));
    assert!(json.contains("\"acquires\""));
}

#[test]
fn observe_then_solve_round_trips() {
    let dir = format!("{}/traces-app2", env!("CARGO_TARGET_TMPDIR"));
    let (ok, stdout, stderr) = sherlock(&["observe", "App-2", "--out-dir", &dir]);
    assert!(ok, "observe failed: {stderr}");
    assert!(stdout.contains("events"));

    let mut traces: Vec<String> = std::fs::read_dir(&dir)
        .expect("trace dir exists")
        .map(|e| e.unwrap().path().display().to_string())
        .collect();
    traces.sort();
    assert_eq!(traces.len(), 4, "one trace per App-2 test");

    let mut args = vec!["solve"];
    args.extend(traces.iter().map(String::as_str));
    let (ok, stdout, stderr) = sherlock(&args);
    assert!(ok, "solve failed: {stderr}");
    assert!(stdout.contains("Releasing sites:"), "{stdout}");
}

#[test]
fn races_supports_all_specs() {
    for spec in ["manual", "inferred", "none"] {
        let (ok, stdout, stderr) = sherlock(&["races", "App-7", "--spec", spec]);
        assert!(ok, "--spec {spec} failed: {stderr}");
        assert!(stdout.contains("first reports"), "{stdout}");
    }
}

#[test]
fn unknown_app_is_a_clean_error() {
    let (ok, _, stderr) = sherlock(&["infer", "App-99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown application"));
}

#[test]
fn unknown_command_prints_usage() {
    let (ok, _, stderr) = sherlock(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn profile_and_trace_out_are_self_consistent() {
    use sherlock_obs::json::Json;

    let path = format!("{}/infer-telemetry.jsonl", env!("CARGO_TARGET_TMPDIR"));
    let (ok, stdout, stderr) = sherlock(&["infer", "App-2", "--profile", "--trace-out", &path]);
    assert!(ok, "infer failed: {stderr}");

    // --profile prints the per-phase table after the report.
    assert!(stdout.contains("-- profile --"), "{stdout}");
    for needle in [
        "phase.observe",
        "phase.windows",
        "phase.solve",
        "(sum of phases)",
        "(wall clock)",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }

    // --trace-out wrote one valid JSON object per line: a meta header, span
    // and log records, and a final metrics snapshot.
    let text = std::fs::read_to_string(&path).expect("jsonl written");
    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("invalid JSONL line {l:?}: {e}")))
        .collect();
    assert!(
        lines.len() > 10,
        "expected a real telemetry stream, got {} lines",
        lines.len()
    );
    assert_eq!(lines[0].get("type").and_then(Json::as_str), Some("meta"));
    let metrics = lines
        .iter()
        .rev()
        .find(|l| l.get("type").and_then(Json::as_str) == Some("metrics"))
        .expect("final metrics snapshot present");

    // Per-phase durations are self-consistent: the phases partition the work
    // done inside `driver.round`, so their total can neither exceed the
    // rounds' total nor be a small fraction of it.
    let spans = metrics
        .get("data")
        .and_then(|d| d.get("spans"))
        .and_then(Json::as_object)
        .expect("metrics.data.spans");
    let total_ns = |name: &str| {
        spans
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.get("total_ns"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("span {name} missing from {spans:?}"))
    };
    let phase_total: u64 = spans
        .iter()
        .filter(|(k, _)| k.starts_with("phase."))
        .map(|(k, _)| total_ns(k))
        .sum();
    let round_total = total_ns("driver.round");
    assert!(
        phase_total <= round_total,
        "phases ({phase_total}ns) exceed rounds ({round_total}ns)"
    );
    assert!(
        phase_total * 2 >= round_total,
        "phases ({phase_total}ns) cover under half of the rounds ({round_total}ns)"
    );

    // Three rounds by default — one driver.round span per round, each with a
    // plausible duration on every emitted span record.
    let round_spans: Vec<&Json> = lines
        .iter()
        .filter(|l| {
            l.get("type").and_then(Json::as_str) == Some("span")
                && l.get("name").and_then(Json::as_str) == Some("driver.round")
        })
        .collect();
    assert_eq!(round_spans.len(), 3, "one span record per round");
    for s in round_spans {
        assert!(s.get("dur_us").and_then(Json::as_u64).is_some());
        assert!(s.get("start_us").and_then(Json::as_u64).is_some());
    }
}

#[test]
fn log_flag_gates_stderr() {
    let (ok, _, quiet) = sherlock(&["infer", "App-2"]);
    assert!(ok);
    assert!(
        !quiet.contains("[debug"),
        "default run must not log: {quiet}"
    );
    let (ok, _, verbose) = sherlock(&["infer", "App-2", "--log", "debug"]);
    assert!(ok);
    assert!(
        verbose.contains("[debug driver] round"),
        "missing driver log in: {verbose}"
    );
    let (ok, _, stderr) = sherlock(&["infer", "App-2", "--log", "loud"]);
    assert!(!ok);
    assert!(stderr.contains("--log expects"), "{stderr}");
}

#[test]
fn lambda_flag_changes_inference() {
    let (ok, strict, _) = sherlock(&["infer", "App-2", "--lambda", "100"]);
    assert!(ok);
    let (ok, default, _) = sherlock(&["infer", "App-2"]);
    assert!(ok);
    // λ=100 suppresses inference almost entirely (Table 6's right edge).
    let count = |s: &str| s.lines().filter(|l| l.starts_with("  ")).count();
    assert!(count(&strict) < count(&default), "{strict}\nvs\n{default}");
}

#[test]
fn fleet_scores_and_writes_json() {
    let path = format!("{}/fleet-scores.json", env!("CARGO_TARGET_TMPDIR"));
    // Loose thresholds: this test checks plumbing, not inference quality
    // (the committed gate lives in tests/fleet_gate.rs and CI).
    let (ok, stdout, stderr) = sherlock(&[
        "fleet",
        "--count",
        "2",
        "--rounds",
        "1",
        "--min-precision",
        "0.0",
        "--min-recall",
        "0.0",
        "--out",
        &path,
    ]);
    assert!(ok, "fleet failed: {stderr}");
    assert!(
        stdout.contains("fleet (2 apps)"),
        "no summary row:\n{stdout}"
    );
    assert!(stdout.contains("idiom"), "no table header:\n{stdout}");
    let json = std::fs::read_to_string(&path).expect("scores written");
    assert!(json.contains("\"precision\""));
    assert!(json.contains("\"per_idiom\""));
    assert!(json.contains("\"per_app\""));
}

#[test]
fn fleet_gate_failure_exits_nonzero() {
    // An unattainable precision floor must fail the command.
    let (ok, _, stderr) = sherlock(&[
        "fleet",
        "--count",
        "2",
        "--rounds",
        "1",
        "--min-precision",
        "1.01",
    ]);
    assert!(!ok);
    assert!(stderr.contains("fleet gate failed"), "{stderr}");
}
