//! Differential oracle suite: the sparse revised simplex
//! ([`Model::solve`]) against the dense two-phase tableau
//! ([`Model::solve_dense`]) on randomly generated models.
//!
//! Models are generated in three deliberate families — feasible-bounded
//! (built around a witness point), infeasible (a conflicting row pair), and
//! unbounded (a costed ray no row blocks) — so all three status outcomes are
//! exercised, not just the happy path. Any disagreement on status, or >1e-6
//! relative disagreement on the optimal objective, is shrunk by the
//! `sherlock_sim::testutil` harness to a minimal disagreeing model before
//! the test panics.

use sherlock_lp::{LinExpr, LpError, Model};
use sherlock_sim::testutil::{check, Config, Gen};

const EPS: f64 = 1e-6;

/// Relations encoded as plain bytes so specs stay `Debug`-printable and
/// shrinkable without dragging solver types into the generator.
const LE: u8 = 0;
const GE: u8 = 1;
const EQ: u8 = 2;

/// A plain-data LP description the generator and shrinker manipulate; built
/// into a [`Model`] only inside the property.
#[derive(Clone, Debug)]
struct Spec {
    /// Per-variable `(lower, upper)`; infinities allowed.
    bounds: Vec<(f64, f64)>,
    /// Dense rows: coefficients per variable, relation byte, rhs.
    rows: Vec<(Vec<f64>, u8, f64)>,
    /// Objective coefficient per variable.
    objective: Vec<f64>,
}

impl Spec {
    fn build(&self) -> Model {
        let mut m = Model::new();
        let ids: Vec<_> = self
            .bounds
            .iter()
            .enumerate()
            .map(|(j, &(lo, hi))| m.add_var(format!("x{j}"), lo, hi))
            .collect();
        for (coeffs, rel, rhs) in &self.rows {
            let mut e = LinExpr::zero();
            for (j, &c) in coeffs.iter().enumerate() {
                if c != 0.0 {
                    e.add_term(ids[j], c);
                }
            }
            match *rel {
                LE => m.constrain_le(e, *rhs),
                GE => m.constrain_ge(e, *rhs),
                _ => m.constrain_eq(e, *rhs),
            }
        }
        let mut obj = LinExpr::zero();
        for (j, &c) in self.objective.iter().enumerate() {
            if c != 0.0 {
                obj.add_term(ids[j], c);
            }
        }
        m.minimize(obj);
        m
    }
}

/// A coefficient on a 0.1 grid in [-5, 5] (grid values keep the generated
/// models far from tolerance boundaries).
fn coeff(g: &mut Gen) -> f64 {
    g.u64_in(0, 101) as f64 / 10.0 - 5.0
}

fn gen_spec(g: &mut Gen) -> Spec {
    let n = g.usize_in(1, 5);
    let bound_menu: [(f64, f64); 6] = [
        (0.0, 1.0),
        (0.0, 4.0),
        (0.0, f64::INFINITY),
        (-2.0, 3.0),
        (f64::NEG_INFINITY, 2.0),
        (f64::NEG_INFINITY, f64::INFINITY),
    ];
    let bounds: Vec<(f64, f64)> = (0..n).map(|_| *g.pick(&bound_menu)).collect();
    // Witness inside every bound (0.5 grid).
    let witness: Vec<f64> = bounds
        .iter()
        .map(|&(lo, hi)| {
            let lo_c = lo.max(-3.0);
            let hi_c = hi.min(3.0);
            let steps = ((hi_c - lo_c) * 2.0).round() as u64;
            lo_c + g.u64_in(0, steps + 1) as f64 / 2.0
        })
        .collect();

    let n_rows = g.usize_in(0, 7);
    let mut rows = Vec::with_capacity(n_rows + 2);
    for _ in 0..n_rows {
        let coeffs: Vec<f64> = (0..n).map(|_| coeff(g)).collect();
        let at_witness: f64 = coeffs.iter().zip(&witness).map(|(c, x)| c * x).sum();
        let slack = g.u64_in(0, 31) as f64 / 10.0;
        let rel = *g.pick(&[LE, LE, GE, GE, EQ]);
        let rhs = match rel {
            LE => at_witness + slack,
            GE => at_witness - slack,
            _ => at_witness,
        };
        rows.push((coeffs, rel, rhs));
    }

    // Bounded by construction: nonnegative cost toward each variable's
    // finite side; variables with an unbounded improving direction get
    // zero cost unless this is the deliberate unbounded family.
    let objective: Vec<f64> = bounds
        .iter()
        .map(|&(lo, hi)| {
            let c = coeff(g).abs();
            if lo.is_finite() {
                c
            } else if hi.is_finite() {
                -c
            } else {
                0.0
            }
        })
        .collect();

    match g.u64_in(0, 10) {
        // Infeasible family: one functional boxed into an empty interval.
        0 | 1 => {
            let coeffs: Vec<f64> = (0..n).map(|_| coeff(g)).collect();
            if coeffs.iter().any(|&c| c != 0.0) {
                let at_witness: f64 = coeffs.iter().zip(&witness).map(|(c, x)| c * x).sum();
                rows.push((coeffs.clone(), GE, at_witness + 1.0));
                rows.push((coeffs, LE, at_witness - 1.0));
            }
        }
        // Unbounded family: a fresh ray variable with negative cost that no
        // row constrains.
        2 => {
            return Spec {
                bounds: bounds
                    .into_iter()
                    .chain(std::iter::once((0.0, f64::INFINITY)))
                    .collect(),
                rows: rows
                    .into_iter()
                    .map(|(mut c, rel, rhs)| {
                        c.push(0.0);
                        (c, rel, rhs)
                    })
                    .collect(),
                objective: objective.into_iter().chain(std::iter::once(-1.0)).collect(),
            };
        }
        _ => {}
    }

    Spec {
        bounds,
        rows,
        objective,
    }
}

/// Shrinks: drop a row, zero a coefficient, zero an objective entry, relax a
/// bound pair to `[0, ∞)`. Only candidates that still disagree survive (the
/// harness re-checks each).
fn shrink_spec(s: &Spec) -> Vec<Spec> {
    let mut out = Vec::new();
    for i in 0..s.rows.len() {
        let mut t = s.clone();
        t.rows.remove(i);
        out.push(t);
    }
    for (i, row) in s.rows.iter().enumerate() {
        for j in 0..row.0.len() {
            if row.0[j] != 0.0 {
                let mut t = s.clone();
                t.rows[i].0[j] = 0.0;
                out.push(t);
            }
        }
    }
    for j in 0..s.objective.len() {
        if s.objective[j] != 0.0 {
            let mut t = s.clone();
            t.objective[j] = 0.0;
            out.push(t);
        }
    }
    for j in 0..s.bounds.len() {
        if s.bounds[j] != (0.0, f64::INFINITY) {
            let mut t = s.clone();
            t.bounds[j] = (0.0, f64::INFINITY);
            out.push(t);
        }
    }
    out
}

/// Sparse and dense must agree on status, and on the objective when optimal.
fn agree(spec: &Spec) -> Result<(), String> {
    let m = spec.build();
    let sparse = m.solve();
    let dense = m.solve_dense();
    match (&sparse, &dense) {
        (Err(LpError::IterationLimit), _) | (_, Err(LpError::IterationLimit)) => Ok(()),
        (Ok(s), Ok(d)) => {
            let scale = 1.0 + s.objective.abs().max(d.objective.abs());
            if (s.objective - d.objective).abs() / scale < EPS {
                Ok(())
            } else {
                Err(format!(
                    "objective mismatch: sparse {} vs dense {}",
                    s.objective, d.objective
                ))
            }
        }
        (Ok(s), Err(e)) => Err(format!(
            "status mismatch: sparse optimal ({}) vs dense {e}",
            s.objective
        )),
        (Err(e), Ok(d)) => Err(format!(
            "status mismatch: sparse {e} vs dense optimal ({})",
            d.objective
        )),
        (Err(a), Err(b)) => {
            if a == b {
                Ok(())
            } else {
                Err(format!("status mismatch: sparse {a} vs dense {b}"))
            }
        }
    }
}

#[test]
fn sparse_agrees_with_dense_oracle() {
    let cfg = Config {
        cases: 512,
        ..Config::default()
    };
    check(&cfg, gen_spec, shrink_spec, agree);
}

/// Same harness, different seed stream, solely over the feasible family with
/// more rows — stresses presolve (duplicates, singletons) and phase 2.
#[test]
fn sparse_agrees_with_dense_on_row_heavy_models() {
    let cfg = Config {
        cases: 192,
        seed: 0xd1ff,
        ..Config::default()
    };
    check(
        &cfg,
        |g| {
            let mut s = gen_spec(g);
            // Duplicate a couple of rows verbatim — presolve must dedup
            // without changing the optimum.
            for _ in 0..2 {
                if !s.rows.is_empty() {
                    let i = g.usize_in(0, s.rows.len());
                    s.rows.push(s.rows[i].clone());
                }
            }
            s
        },
        shrink_spec,
        agree,
    );
}

/// The warm path must reach the same optimum as the cold path from any
/// recorded basis — including a basis recorded on a *different* (smaller)
/// model, mimicking SherLock's accumulating rounds.
#[test]
fn warm_start_matches_cold_on_random_models() {
    let cfg = Config {
        cases: 256,
        seed: 0x3a3a,
        ..Config::default()
    };
    check(&cfg, gen_spec, shrink_spec, |spec| {
        let m = spec.build();
        let cold = m.solve();
        // Basis recorded from a reduced version of the model (first rows
        // dropped), then used to warm-start the full model.
        let mut basis = sherlock_lp::Basis::new();
        let mut smaller = spec.clone();
        smaller.rows.truncate(smaller.rows.len() / 2);
        let _ = smaller.build().solve_warm(&mut basis);
        let warm = m.solve_warm(&mut basis);
        match (&cold, &warm) {
            (Err(LpError::IterationLimit), _) | (_, Err(LpError::IterationLimit)) => Ok(()),
            (Ok(c), Ok(w)) => {
                let scale = 1.0 + c.objective.abs().max(w.objective.abs());
                if (c.objective - w.objective).abs() / scale < EPS {
                    Ok(())
                } else {
                    Err(format!(
                        "objective mismatch: cold {} vs warm {}",
                        c.objective, w.objective
                    ))
                }
            }
            (Err(a), Err(b)) if a == b => Ok(()),
            (a, b) => Err(format!("status mismatch: cold {a:?} vs warm {b:?}")),
        }
    });
}
