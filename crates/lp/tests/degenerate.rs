//! Regression tests for degenerate and cycling-prone LPs, plus edge-case
//! model shapes. Dantzig pricing alone can cycle forever on these inputs;
//! termination here depends on the solver's Bland's-rule fallback kicking in
//! after the Dantzig budget is spent.

use sherlock_lp::{LinExpr, LpError, Model};

const EPS: f64 = 1e-6;

/// Beale's classic cycling example. With textbook Dantzig pricing and naive
/// tie-breaking the simplex method revisits the same bases forever; a solver
/// with an anti-cycling fallback must terminate at the optimum −0.05
/// (x = (1/25, 0, 1, 0)).
#[test]
fn beale_cycling_lp_terminates_at_optimum() {
    let mut m = Model::new();
    let x1 = m.add_var("x1", 0.0, f64::INFINITY);
    let x2 = m.add_var("x2", 0.0, f64::INFINITY);
    let x3 = m.add_var("x3", 0.0, f64::INFINITY);
    let x4 = m.add_var("x4", 0.0, f64::INFINITY);

    let mut r1 = LinExpr::zero();
    r1.add_term(x1, 0.25);
    r1.add_term(x2, -60.0);
    r1.add_term(x3, -1.0 / 25.0);
    r1.add_term(x4, 9.0);
    m.constrain_le(r1, 0.0);

    let mut r2 = LinExpr::zero();
    r2.add_term(x1, 0.5);
    r2.add_term(x2, -90.0);
    r2.add_term(x3, -1.0 / 50.0);
    r2.add_term(x4, 3.0);
    m.constrain_le(r2, 0.0);

    m.constrain_le(LinExpr::from(x3), 1.0);

    let mut obj = LinExpr::zero();
    obj.add_term(x1, -0.75);
    obj.add_term(x2, 150.0);
    obj.add_term(x3, -0.02);
    obj.add_term(x4, 6.0);
    m.minimize(obj);

    let sol = m.solve().expect("Beale LP must terminate, not cycle");
    assert!(
        (sol.objective - (-0.05)).abs() < EPS,
        "objective {} != -0.05",
        sol.objective
    );
    assert!((sol.value(x3) - 1.0).abs() < EPS, "x3 = {}", sol.value(x3));
}

/// A fully degenerate optimum: several scaled copies of the same binding
/// constraint all pass through the optimal vertex, so most basic variables
/// sit exactly at zero slack and many pivots make no progress. The solver
/// must still terminate and find the optimum.
#[test]
fn fully_degenerate_vertex_terminates() {
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, f64::INFINITY);
    let y = m.add_var("y", 0.0, f64::INFINITY);
    for k in 1..=5 {
        let mut e = LinExpr::zero();
        e.add_term(x, k as f64);
        e.add_term(y, k as f64);
        m.constrain_le(e, k as f64);
    }
    // Redundant supports through the same vertex region.
    let mut d = LinExpr::zero();
    d.add_term(x, 1.0);
    d.add_term(y, -1.0);
    m.constrain_le(d.clone(), 1.0);
    m.constrain_ge(d, -1.0);

    let mut obj = LinExpr::zero();
    obj.add_term(x, -1.0);
    obj.add_term(y, -1.0);
    m.minimize(obj);

    let sol = m.solve().expect("degenerate LP must terminate");
    assert!(
        (sol.objective - (-1.0)).abs() < EPS,
        "objective {} != -1",
        sol.objective
    );
    let (xv, yv) = (sol.value(x), sol.value(y));
    assert!((xv + yv - 1.0).abs() < EPS, "x+y = {}", xv + yv);
}

/// Degeneracy at the origin: every constraint is tight at x = 0, so phase 2
/// starts on a highly degenerate vertex and must walk off it without
/// cycling.
#[test]
fn degenerate_origin_start() {
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, f64::INFINITY);
    let y = m.add_var("y", 0.0, f64::INFINITY);
    // The cone x ≤ y ≤ 2x, stated twice at different scales: four rows all
    // tight at the origin.
    let combos: [(f64, f64); 4] = [(1.0, -1.0), (-2.0, 1.0), (2.0, -2.0), (-6.0, 3.0)];
    for (a, b) in combos {
        let mut e = LinExpr::zero();
        e.add_term(x, a);
        e.add_term(y, b);
        m.constrain_le(e, 0.0);
    }
    let mut cap = LinExpr::zero();
    cap.add_term(x, 1.0);
    cap.add_term(y, 1.0);
    m.constrain_le(cap, 3.0);

    let mut obj = LinExpr::zero();
    obj.add_term(x, -1.0);
    obj.add_term(y, -1.0);
    m.minimize(obj);

    let sol = m.solve().expect("must terminate from a degenerate origin");
    // x = y maximises within x ≤ y ≤ 2x and x + y ≤ 3.
    assert!(
        (sol.objective - (-3.0)).abs() < EPS,
        "objective {} != -3",
        sol.objective
    );
}

/// An empty model (no variables, no rows) is trivially optimal at zero.
#[test]
fn empty_model_solves_to_zero() {
    let m = Model::new();
    let sol = m.solve().expect("empty model is optimal");
    assert_eq!(sol.objective, 0.0);
}

/// A model with only a constant objective and no variables.
#[test]
fn constant_objective_only() {
    let mut m = Model::new();
    let mut obj = LinExpr::zero();
    obj.add_constant(2.5);
    m.minimize(obj);
    let sol = m.solve().expect("constant model is optimal");
    assert!((sol.objective - 2.5).abs() < EPS);
}

/// Single bounded variable with no rows: optimum sits at the cheap bound.
#[test]
fn single_var_no_rows() {
    let mut m = Model::new();
    let x = m.add_var("x", 2.0, 5.0);
    m.minimize(LinExpr::from(x));
    let sol = m.solve().expect("bounded single-var LP");
    assert!((sol.value(x) - 2.0).abs() < EPS);

    // Maximisation via a negated objective lands on the upper bound.
    let mut m2 = Model::new();
    let y = m2.add_var("y", 2.0, 5.0);
    let mut obj = LinExpr::zero();
    obj.add_term(y, -1.0);
    m2.minimize(obj);
    let sol2 = m2.solve().expect("bounded single-var LP");
    assert!((sol2.value(y) - 5.0).abs() < EPS);
}

/// Single free variable with a negative cost and nothing blocking it.
#[test]
fn single_var_unbounded() {
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, f64::INFINITY);
    let mut obj = LinExpr::zero();
    obj.add_term(x, -1.0);
    m.minimize(obj);
    assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
}

/// Single variable pinned by an equality row inside its bounds.
#[test]
fn single_var_equality_row() {
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, 10.0);
    m.constrain_eq(LinExpr::from(x), 7.0);
    m.minimize(LinExpr::from(x));
    let sol = m.solve().expect("pinned single-var LP");
    assert!((sol.value(x) - 7.0).abs() < EPS);
}

/// Single variable whose equality row conflicts with its bounds.
#[test]
fn single_var_infeasible_equality() {
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, 1.0);
    m.constrain_eq(LinExpr::from(x), 2.0);
    m.minimize(LinExpr::from(x));
    assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
}

/// The dense oracle agrees on every deterministic case in this file — the
/// cycling and degenerate instances are exactly where the two
/// implementations are most likely to diverge.
#[test]
fn oracle_agrees_on_degenerate_cases() {
    let cases: Vec<Model> = {
        let mut v = Vec::new();
        // Beale.
        let mut m = Model::new();
        let x1 = m.add_var("x1", 0.0, f64::INFINITY);
        let x2 = m.add_var("x2", 0.0, f64::INFINITY);
        let x3 = m.add_var("x3", 0.0, f64::INFINITY);
        let x4 = m.add_var("x4", 0.0, f64::INFINITY);
        let mut r1 = LinExpr::zero();
        r1.add_term(x1, 0.25);
        r1.add_term(x2, -60.0);
        r1.add_term(x3, -1.0 / 25.0);
        r1.add_term(x4, 9.0);
        m.constrain_le(r1, 0.0);
        let mut r2 = LinExpr::zero();
        r2.add_term(x1, 0.5);
        r2.add_term(x2, -90.0);
        r2.add_term(x3, -1.0 / 50.0);
        r2.add_term(x4, 3.0);
        m.constrain_le(r2, 0.0);
        m.constrain_le(LinExpr::from(x3), 1.0);
        let mut obj = LinExpr::zero();
        obj.add_term(x1, -0.75);
        obj.add_term(x2, 150.0);
        obj.add_term(x3, -0.02);
        obj.add_term(x4, 6.0);
        m.minimize(obj);
        v.push(m);

        // Degenerate stack of scaled rows.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        for k in 1..=5 {
            let mut e = LinExpr::zero();
            e.add_term(x, k as f64);
            e.add_term(y, k as f64);
            m.constrain_le(e, k as f64);
        }
        let mut obj = LinExpr::zero();
        obj.add_term(x, -1.0);
        obj.add_term(y, -1.0);
        m.minimize(obj);
        v.push(m);
        v
    };
    for (i, m) in cases.iter().enumerate() {
        let sparse = m.solve().expect("sparse solve");
        let dense = m.solve_dense().expect("dense solve");
        assert!(
            (sparse.objective - dense.objective).abs() < EPS,
            "case {i}: sparse {} vs dense {}",
            sparse.objective,
            dense.objective
        );
    }
}
