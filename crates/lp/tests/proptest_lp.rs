//! Property tests for the LP model layer, driven by the in-tree
//! `sherlock_sim::testutil` harness (no external property-testing crate):
//! solutions are feasible, never worse than a known feasible point, stable
//! under redundant rows, and the hinge/abs encodings and the presolve pass
//! behave algebraically.

use sherlock_lp::{LinExpr, Model};
use sherlock_sim::testutil::{check, Config, Gen};

const EPS: f64 = 1e-6;

/// A plain-data LP built around a feasibility witness: every generated row
/// passes through (or brackets) the witness point, so the model is always
/// feasible, and nonnegative costs on `[0, hi]` variables keep it bounded.
#[derive(Clone, Debug)]
struct WitnessLp {
    /// Upper bound per variable (lower bound is 0).
    upper: Vec<f64>,
    /// Known-feasible point, one coordinate per variable.
    witness: Vec<f64>,
    /// `(coeffs, is_le, rhs)` rows; `is_le == false` means `>=`.
    rows: Vec<(Vec<f64>, bool, f64)>,
    /// Nonnegative objective coefficient per variable.
    objective: Vec<f64>,
}

impl WitnessLp {
    fn build(&self) -> (Model, Vec<sherlock_lp::VarId>) {
        let mut m = Model::new();
        let ids: Vec<_> = self
            .upper
            .iter()
            .enumerate()
            .map(|(j, &hi)| m.add_var(format!("x{j}"), 0.0, hi))
            .collect();
        for (coeffs, is_le, rhs) in &self.rows {
            let mut e = LinExpr::zero();
            for (j, &c) in coeffs.iter().enumerate() {
                if c != 0.0 {
                    e.add_term(ids[j], c);
                }
            }
            if *is_le {
                m.constrain_le(e, *rhs);
            } else {
                m.constrain_ge(e, *rhs);
            }
        }
        let mut obj = LinExpr::zero();
        for (j, &c) in self.objective.iter().enumerate() {
            if c != 0.0 {
                obj.add_term(ids[j], c);
            }
        }
        m.minimize(obj);
        (m, ids)
    }

    fn witness_objective(&self) -> f64 {
        self.objective
            .iter()
            .zip(&self.witness)
            .map(|(c, x)| c * x)
            .sum()
    }

    fn feasible(&self, x: &[f64]) -> bool {
        if x.iter()
            .zip(&self.upper)
            .any(|(&v, &hi)| v < -EPS || v > hi + EPS)
        {
            return false;
        }
        self.rows.iter().all(|(coeffs, is_le, rhs)| {
            let lhs: f64 = coeffs.iter().zip(x).map(|(c, v)| c * v).sum();
            if *is_le {
                lhs <= rhs + EPS
            } else {
                lhs >= rhs - EPS
            }
        })
    }
}

/// A coefficient on a 0.1 grid in [-5, 5].
fn coeff(g: &mut Gen) -> f64 {
    g.u64_in(0, 101) as f64 / 10.0 - 5.0
}

fn gen_witness_lp(g: &mut Gen) -> WitnessLp {
    let n = g.usize_in(1, 5);
    let upper: Vec<f64> = (0..n).map(|_| g.u64_in(2, 9) as f64).collect();
    let witness: Vec<f64> = upper
        .iter()
        .map(|&hi| g.u64_in(0, (hi * 2.0) as u64 + 1) as f64 / 2.0)
        .collect();
    let n_rows = g.usize_in(0, 6);
    let rows = (0..n_rows)
        .map(|_| {
            let coeffs: Vec<f64> = (0..n).map(|_| coeff(g)).collect();
            let at_witness: f64 = coeffs.iter().zip(&witness).map(|(c, x)| c * x).sum();
            let slack = g.u64_in(0, 31) as f64 / 10.0;
            let is_le = g.bool(0.5);
            let rhs = if is_le {
                at_witness + slack
            } else {
                at_witness - slack
            };
            (coeffs, is_le, rhs)
        })
        .collect();
    let objective = (0..n).map(|_| coeff(g).abs()).collect();
    WitnessLp {
        upper,
        witness,
        rows,
        objective,
    }
}

/// Shrink by dropping rows or zeroing coefficients; the witness stays valid
/// for every candidate because removing/weakening constraints only enlarges
/// the feasible region.
fn shrink_witness_lp(s: &WitnessLp) -> Vec<WitnessLp> {
    let mut out = Vec::new();
    for i in 0..s.rows.len() {
        let mut t = s.clone();
        t.rows.remove(i);
        out.push(t);
    }
    for j in 0..s.objective.len() {
        if s.objective[j] != 0.0 {
            let mut t = s.clone();
            t.objective[j] = 0.0;
            out.push(t);
        }
    }
    out
}

/// The solver must return a feasible optimum at least as good as the
/// construction witness, and the reported objective must recompute from the
/// variable values.
#[test]
fn solution_is_feasible_and_beats_witness() {
    let cfg = Config {
        cases: 256,
        ..Config::default()
    };
    check(&cfg, gen_witness_lp, shrink_witness_lp, |lp| {
        let (m, ids) = lp.build();
        let sol = m
            .solve()
            .map_err(|e| format!("constructed LP failed to solve: {e}"))?;
        let x: Vec<f64> = ids.iter().map(|&v| sol.value(v)).collect();
        if !lp.feasible(&x) {
            return Err(format!("infeasible solution {x:?}"));
        }
        let witness_obj = lp.witness_objective();
        if sol.objective > witness_obj + EPS {
            return Err(format!(
                "objective {} worse than witness {witness_obj}",
                sol.objective
            ));
        }
        let recomputed: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
        if (sol.objective - recomputed).abs() > 1e-5 {
            return Err(format!(
                "objective {} does not recompute ({recomputed})",
                sol.objective
            ));
        }
        Ok(())
    });
}

/// Duplicating an existing row never changes the optimal objective (and
/// exercises presolve's duplicate-row dedup on the sparse path).
#[test]
fn redundant_rows_do_not_change_optimum() {
    let cfg = Config {
        cases: 192,
        seed: 0xd0be,
        ..Config::default()
    };
    check(&cfg, gen_witness_lp, shrink_witness_lp, |lp| {
        if lp.rows.is_empty() {
            return Ok(());
        }
        let obj = lp.build().0.solve().map_err(|e| e.to_string())?.objective;
        let mut doubled = lp.clone();
        doubled.rows.push(doubled.rows[0].clone());
        let obj2 = doubled
            .build()
            .0
            .solve()
            .map_err(|e| e.to_string())?
            .objective;
        if (obj - obj2).abs() > 1e-5 {
            return Err(format!("{obj} vs {obj2} after duplicating a row"));
        }
        Ok(())
    });
}

/// Scaling the objective scales the optimum.
#[test]
fn objective_scaling() {
    let cfg = Config {
        cases: 192,
        seed: 0x5ca1e,
        ..Config::default()
    };
    check(&cfg, gen_witness_lp, shrink_witness_lp, |lp| {
        let k = 1.0 + (lp.rows.len() % 5) as f64;
        let obj = lp.build().0.solve().map_err(|e| e.to_string())?.objective;
        let mut scaled = lp.clone();
        for c in &mut scaled.objective {
            *c *= k;
        }
        let obj2 = scaled
            .build()
            .0
            .solve()
            .map_err(|e| e.to_string())?
            .objective;
        if (obj * k - obj2).abs() > 1e-4 {
            return Err(format!("{obj}*{k} vs {obj2}"));
        }
        Ok(())
    });
}

/// Pin every variable with an equality row, then add hinge and abs penalty
/// terms over random expressions: the optimal objective must equal the
/// hand-computed `w_h·max(0, e_h(x)) + w_a·|e_a(x)|`, and the auxiliary
/// variables must land exactly on those values.
#[test]
fn hinge_and_abs_compose_correctly() {
    #[derive(Clone, Debug)]
    struct HingeCase {
        /// Pinned value per variable.
        point: Vec<f64>,
        /// Expression under the hinge: coefficients plus a constant term.
        hinge: (Vec<f64>, f64),
        /// Expression under the abs penalty.
        abs: (Vec<f64>, f64),
        hinge_weight: f64,
        abs_weight: f64,
    }
    let cfg = Config {
        cases: 256,
        seed: 0xab5,
        ..Config::default()
    };
    check(
        &cfg,
        |g| {
            let n = g.usize_in(1, 4);
            let expr = |g: &mut Gen| ((0..n).map(|_| coeff(g)).collect::<Vec<f64>>(), coeff(g));
            HingeCase {
                point: (0..n).map(|_| g.u64_in(0, 13) as f64 / 2.0 - 3.0).collect(),
                hinge: expr(g),
                abs: expr(g),
                hinge_weight: g.u64_in(1, 7) as f64 / 2.0,
                abs_weight: g.u64_in(1, 7) as f64 / 2.0,
            }
        },
        |c| {
            // Shrink toward zero coefficients/constants.
            let mut out = Vec::new();
            for j in 0..c.hinge.0.len() {
                if c.hinge.0[j] != 0.0 {
                    let mut t = c.clone();
                    t.hinge.0[j] = 0.0;
                    out.push(t);
                }
                if c.abs.0[j] != 0.0 {
                    let mut t = c.clone();
                    t.abs.0[j] = 0.0;
                    out.push(t);
                }
            }
            if c.hinge.1 != 0.0 {
                let mut t = c.clone();
                t.hinge.1 = 0.0;
                out.push(t);
            }
            if c.abs.1 != 0.0 {
                let mut t = c.clone();
                t.abs.1 = 0.0;
                out.push(t);
            }
            out
        },
        |case| {
            let mut m = Model::new();
            let ids: Vec<_> = case
                .point
                .iter()
                .enumerate()
                .map(|(j, _)| m.add_var(format!("p{j}"), -4.0, 4.0))
                .collect();
            for (&v, &x) in ids.iter().zip(&case.point) {
                m.constrain_eq(LinExpr::from(v), x);
            }
            let mk = |coeffs: &[f64], constant: f64| {
                let mut e = LinExpr::zero();
                for (j, &c) in coeffs.iter().enumerate() {
                    if c != 0.0 {
                        e.add_term(ids[j], c);
                    }
                }
                e.add_constant(constant);
                e
            };
            let h = m.add_hinge(mk(&case.hinge.0, case.hinge.1), case.hinge_weight);
            let a = m.add_abs(mk(&case.abs.0, case.abs.1), case.abs_weight);
            let sol = m.solve().map_err(|e| e.to_string())?;

            let eval = |(coeffs, constant): &(Vec<f64>, f64)| -> f64 {
                coeffs
                    .iter()
                    .zip(&case.point)
                    .map(|(c, x)| c * x)
                    .sum::<f64>()
                    + constant
            };
            let hinge_val = eval(&case.hinge).max(0.0);
            let abs_val = eval(&case.abs).abs();
            let expected = case.hinge_weight * hinge_val + case.abs_weight * abs_val;
            if (sol.objective - expected).abs() > EPS {
                return Err(format!(
                    "objective {} != w_h·max(0,e_h) + w_a·|e_a| = {expected}",
                    sol.objective
                ));
            }
            if (sol.value(h) - hinge_val).abs() > EPS {
                return Err(format!("hinge var {} != {hinge_val}", sol.value(h)));
            }
            if (sol.value(a) - abs_val).abs() > EPS {
                return Err(format!("abs var {} != {abs_val}", sol.value(a)));
            }
            Ok(())
        },
    );
}

/// Presolve is a fixpoint: re-presolving an already-presolved model changes
/// nothing (`presolve(presolve(m)) == presolve(m)`), including on models
/// with fixed variables, duplicate rows, and singleton rows.
#[test]
fn presolve_is_idempotent() {
    let cfg = Config {
        cases: 256,
        seed: 0x1de3,
        ..Config::default()
    };
    check(
        &cfg,
        |g| {
            let mut lp = gen_witness_lp(g);
            // Salt with reductions for presolve to find: a duplicate row, a
            // singleton row, and a fixed variable.
            if !lp.rows.is_empty() {
                let i = g.usize_in(0, lp.rows.len());
                lp.rows.push(lp.rows[i].clone());
            }
            let j = g.usize_in(0, lp.upper.len());
            let mut singleton = vec![0.0; lp.upper.len()];
            singleton[j] = 1.0;
            lp.rows.push((singleton, true, lp.witness[j] + 1.0));
            if g.bool(0.5) {
                let k = g.usize_in(0, lp.upper.len());
                lp.upper[k] = lp.witness[k];
                let mut fix = vec![0.0; lp.upper.len()];
                fix[k] = 1.0;
                lp.rows.push((fix, false, lp.witness[k]));
            }
            lp
        },
        shrink_witness_lp,
        |lp| {
            let (m, _) = lp.build();
            let once = match m.presolved() {
                Ok(r) => r,
                // Presolve may prove infeasibility outright; idempotence is
                // then vacuous.
                Err(_) => return Ok(()),
            };
            let twice = once
                .presolved()
                .map_err(|e| format!("re-presolve of a presolved model failed: {e}"))?;
            if twice != once {
                return Err(format!(
                    "presolve not idempotent:\nonce:  {once:?}\ntwice: {twice:?}"
                ));
            }
            Ok(())
        },
    );
}
