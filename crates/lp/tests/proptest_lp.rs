//! Property tests for the simplex solver: solutions are feasible, never
//! worse than a known feasible point, and stable under redundant rows.

use proptest::prelude::*;
use sherlock_lp::simplex::{solve, Problem, Relation, Row};

const EPS: f64 = 1e-6;

#[derive(Debug, Clone)]
struct RandomLp {
    problem: Problem,
    /// A point known to satisfy every row (constraints are generated around
    /// it), used as an optimality witness.
    witness: Vec<f64>,
}

fn coeff() -> impl Strategy<Value = f64> {
    (-50i32..=50).prop_map(|c| c as f64 / 10.0)
}

fn random_lp(num_vars: usize, num_rows: usize) -> impl Strategy<Value = RandomLp> {
    let witness = proptest::collection::vec((0u32..=40).prop_map(|v| v as f64 / 10.0), num_vars);
    let rows = proptest::collection::vec(
        (
            proptest::collection::vec(coeff(), num_vars),
            0u32..=30,
            prop_oneof![Just(Relation::Le), Just(Relation::Ge)],
        ),
        num_rows,
    );
    let objective = proptest::collection::vec(coeff().prop_map(f64::abs), num_vars);
    (witness, rows, objective).prop_map(move |(witness, rows, objective)| {
        let rows = rows
            .into_iter()
            .map(|(coeffs, slack, relation)| {
                let at_witness: f64 = coeffs.iter().zip(&witness).map(|(c, x)| c * x).sum();
                let slack = slack as f64 / 10.0;
                let rhs = match relation {
                    Relation::Le => at_witness + slack,
                    Relation::Ge => at_witness - slack,
                    Relation::Eq => at_witness,
                };
                Row {
                    coeffs: coeffs.iter().copied().enumerate().collect(),
                    relation,
                    rhs,
                }
            })
            .collect();
        RandomLp {
            problem: Problem {
                num_vars,
                rows,
                objective,
            },
            witness,
        }
    })
}

fn feasible(p: &Problem, x: &[f64]) -> bool {
    if x.iter().any(|&v| v < -EPS) {
        return false;
    }
    p.rows.iter().all(|row| {
        let lhs: f64 = row.coeffs.iter().map(|&(j, c)| c * x[j]).sum();
        match row.relation {
            Relation::Le => lhs <= row.rhs + EPS,
            Relation::Ge => lhs >= row.rhs - EPS,
            Relation::Eq => (lhs - row.rhs).abs() <= EPS,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With nonnegative objective coefficients the LP is bounded, so the
    /// solver must return an optimum that is feasible and at least as good
    /// as the construction witness.
    #[test]
    fn solution_is_feasible_and_beats_witness(lp in (1usize..=4, 0usize..=5)
        .prop_flat_map(|(v, r)| random_lp(v, r)))
    {
        let (x, obj) = solve(&lp.problem).expect("constructed LPs are feasible and bounded");
        prop_assert!(feasible(&lp.problem, &x), "infeasible solution {x:?}");
        let witness_obj: f64 = lp
            .problem
            .objective
            .iter()
            .zip(&lp.witness)
            .map(|(c, x)| c * x)
            .sum();
        prop_assert!(obj <= witness_obj + EPS, "obj {obj} worse than witness {witness_obj}");
        let recomputed: f64 = lp
            .problem
            .objective
            .iter()
            .zip(&x)
            .map(|(c, x)| c * x)
            .sum();
        prop_assert!((obj - recomputed).abs() < 1e-5);
    }

    /// Duplicating an existing row never changes the optimal objective.
    #[test]
    fn redundant_rows_do_not_change_optimum(lp in (1usize..=3, 1usize..=4)
        .prop_flat_map(|(v, r)| random_lp(v, r)))
    {
        let (_, obj) = solve(&lp.problem).expect("solvable");
        let mut doubled = lp.problem.clone();
        doubled.rows.push(doubled.rows[0].clone());
        let (_, obj2) = solve(&doubled).expect("still solvable");
        prop_assert!((obj - obj2).abs() < 1e-5, "{obj} vs {obj2}");
    }

    /// Scaling the objective scales the optimum.
    #[test]
    fn objective_scaling(lp in (1usize..=3, 0usize..=4)
        .prop_flat_map(|(v, r)| random_lp(v, r)), k in 1u32..=5)
    {
        let (_, obj) = solve(&lp.problem).expect("solvable");
        let mut scaled = lp.problem.clone();
        for c in &mut scaled.objective {
            *c *= k as f64;
        }
        let (_, obj2) = solve(&scaled).expect("still solvable");
        prop_assert!((obj * k as f64 - obj2).abs() < 1e-4, "{obj}*{k} vs {obj2}");
    }
}
