use std::fmt;

use crate::basis::{Basis, VarStatus};
use crate::expr::LinExpr;
use crate::simplex::{dense, Problem, Relation, Row, SimplexError};
use crate::{presolve, revised};

/// Handle to a model variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

/// Failure modes of [`Model::solve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The solver hit its iteration budget.
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "model is infeasible"),
            LpError::Unbounded => write!(f, "model objective is unbounded"),
            LpError::IterationLimit => write!(f, "solver iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable per-row signatures: FNV-1a over each presolved row's
/// `(variable name, coefficient)` pairs, relation, and rhs. Rows have no
/// names, so this is the identity the warm-start [`Basis`] keys slack
/// statuses by; a row that survives a model rebuild unchanged hashes to the
/// same tag and carries its tight/slack state across.
fn row_tags(pre: &presolve::Presolved) -> Vec<u64> {
    pre.rows
        .iter()
        .map(|row| {
            let mut h = FNV_OFFSET;
            for &(j, c) in &row.coeffs {
                h = fnv_mix(h, pre.names[j].as_bytes());
                h = fnv_mix(h, &c.to_bits().to_le_bytes());
            }
            h = fnv_mix(h, &[row.relation as u8]);
            fnv_mix(h, &row.rhs.to_bits().to_le_bytes())
        })
        .collect()
}

/// Whether `SHERLOCK_LP_CHECK=1` asked for every sparse solve to be
/// cross-checked against the dense oracle (read once per process).
fn cross_check_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED
        .get_or_init(|| std::env::var("SHERLOCK_LP_CHECK").is_ok_and(|v| !v.is_empty() && v != "0"))
}

impl From<SimplexError> for LpError {
    fn from(e: SimplexError) -> Self {
        match e {
            SimplexError::Infeasible => LpError::Infeasible,
            SimplexError::Unbounded => LpError::Unbounded,
            SimplexError::IterationLimit => LpError::IterationLimit,
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Var {
    pub(crate) name: String,
    pub(crate) lo: f64,
    pub(crate) hi: f64,
}

/// An LP model: named bounded variables, linear constraints, and a minimized
/// objective, with helpers for the piecewise-linear terms SherLock's encoding
/// uses.
///
/// Variables may have finite or infinite bounds in either direction; the
/// revised simplex handles ranges natively (no bound rows, no free-variable
/// splitting). Solving runs a presolve pass first — see [`Model::presolved`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Model {
    pub(crate) vars: Vec<Var>,
    pub(crate) rows: Vec<(LinExpr, Relation, f64)>,
    pub(crate) objective: LinExpr,
}

/// The optimal assignment returned by [`Model::solve`].
#[derive(Clone, Debug)]
pub struct Solution {
    values: Vec<f64>,
    /// Optimal objective value (including any constant term).
    pub objective: f64,
}

impl Solution {
    /// Value of a variable at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Evaluates an arbitrary linear expression at the optimum.
    pub fn eval(&self, e: &LinExpr) -> f64 {
        e.coefficients()
            .iter()
            .map(|&(v, c)| c * self.value(v))
            .sum::<f64>()
            + e.constant_term()
    }
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable bounded to `[lo, hi]`; either bound may be infinite.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn add_var(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> VarId {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN variable bound");
        assert!(lo <= hi, "empty variable domain");
        let id = VarId(self.vars.len());
        self.vars.push(Var {
            name: name.into(),
            lo,
            hi,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows (excluding bound rows synthesized at solve
    /// time).
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Name given to a variable at creation.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Adds the constraint `expr ≤ rhs`.
    pub fn constrain_le(&mut self, expr: LinExpr, rhs: f64) {
        self.rows.push((expr, Relation::Le, rhs));
    }

    /// Adds the constraint `expr ≥ rhs`.
    pub fn constrain_ge(&mut self, expr: LinExpr, rhs: f64) {
        self.rows.push((expr, Relation::Ge, rhs));
    }

    /// Adds the constraint `expr = rhs`.
    pub fn constrain_eq(&mut self, expr: LinExpr, rhs: f64) {
        self.rows.push((expr, Relation::Eq, rhs));
    }

    /// Adds `expr` to the minimized objective.
    pub fn minimize(&mut self, expr: LinExpr) {
        self.objective += expr;
    }

    /// A stable content hash (FNV-1a over referenced variable names,
    /// coefficient bits, the constant term, and the weight) naming hinge/abs
    /// auxiliaries. Index-derived names would shift whenever an unrelated
    /// variable is added earlier in a rebuilt model, which silently
    /// invalidates warm-start bases recorded by name; content-derived names
    /// survive model rebuilds as long as the penalty term itself is
    /// unchanged.
    fn expr_tag(&self, expr: &LinExpr, weight: f64) -> u64 {
        let mut h = FNV_OFFSET;
        for (v, c) in expr.coefficients() {
            h = fnv_mix(h, self.vars[v.0].name.as_bytes());
            h = fnv_mix(h, &c.to_bits().to_le_bytes());
        }
        h = fnv_mix(h, &expr.constant_term().to_bits().to_le_bytes());
        fnv_mix(h, &weight.to_bits().to_le_bytes())
    }

    /// Adds `weight · max(0, expr)` to the objective (SherLock's
    /// Mostly-Protected terms, Eq. 2) and returns the auxiliary variable
    /// carrying the hinge value.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative (the reformulation is only exact for
    /// nonnegative weights).
    pub fn add_hinge(&mut self, expr: LinExpr, weight: f64) -> VarId {
        assert!(weight >= 0.0, "hinge weight must be nonnegative");
        let tag = self.expr_tag(&expr, weight);
        let s = self.add_var(format!("hinge:{tag:016x}"), 0.0, f64::INFINITY);
        // s >= expr  ⇔  expr - s <= 0
        self.constrain_le(expr - LinExpr::from(s), 0.0);
        self.minimize(LinExpr::term(s, weight));
        s
    }

    /// Adds `weight · |expr|` to the objective (SherLock's Mostly-Paired
    /// terms, Eqs. 6–7) and returns the auxiliary variable carrying `|expr|`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative.
    pub fn add_abs(&mut self, expr: LinExpr, weight: f64) -> VarId {
        assert!(weight >= 0.0, "abs weight must be nonnegative");
        let tag = self.expr_tag(&expr, weight);
        let t = self.add_var(format!("abs:{tag:016x}"), 0.0, f64::INFINITY);
        self.constrain_le(expr.clone() - LinExpr::from(t), 0.0);
        self.constrain_le(-expr - LinExpr::from(t), 0.0);
        self.minimize(LinExpr::term(t, weight));
        t
    }

    /// Solves the model with the sparse revised simplex (cold start).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`].
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_inner(None)
    }

    /// Solves the model starting from a previously recorded [`Basis`], then
    /// overwrites the handle with this solve's optimal basis.
    ///
    /// The basis maps onto the model by variable *name*: statuses for names
    /// the model doesn't have are ignored, variables the basis doesn't know
    /// start at a bound. A stale or empty basis is never wrong — at worst
    /// the solver spends extra phase-1 pivots repairing it, and an empty
    /// basis makes this identical to [`Model::solve`].
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`]. On error the basis is cleared (there is no
    /// optimal vertex worth resuming from).
    pub fn solve_warm(&self, basis: &mut Basis) -> Result<Solution, LpError> {
        self.solve_inner(Some(basis))
    }

    fn solve_inner(&self, basis: Option<&mut Basis>) -> Result<Solution, LpError> {
        let _s = sherlock_obs::span("lp.simplex");
        sherlock_obs::counter!("simplex.solves").incr();
        sherlock_obs::histogram!("simplex.rows").observe(self.rows.len() as u64);
        sherlock_obs::histogram!("simplex.vars").observe(self.vars.len() as u64);

        let outcome = self.solve_sparse(basis);
        if cross_check_enabled() {
            self.cross_check(&outcome);
        }

        let (pivots1, pivots2, refactors, status) = match &outcome {
            Ok((_, rec)) => (rec.0, rec.1, rec.2, "optimal"),
            Err(e) => (
                0,
                0,
                0,
                match e {
                    LpError::Infeasible => {
                        sherlock_obs::counter!("lp.infeasible").incr();
                        "infeasible"
                    }
                    LpError::Unbounded => "unbounded",
                    LpError::IterationLimit => "iteration_limit",
                },
            ),
        };
        let pivots = pivots1 + pivots2;
        sherlock_obs::counter!("simplex.pivots").add(pivots);
        sherlock_obs::counter!("lp.refactorizations").add(refactors);
        sherlock_obs::histogram!("lp.pivots").observe(pivots);
        sherlock_obs::histogram!("lp.phase1_iters").observe(pivots1);
        sherlock_obs::histogram!("lp.phase2_iters").observe(pivots2);
        if sherlock_obs::jsonl_enabled() {
            use sherlock_obs::json::Json;
            sherlock_obs::event(
                "lp.solve",
                &[
                    ("rows", Json::from(self.rows.len() as u64)),
                    ("vars", Json::from(self.vars.len() as u64)),
                    ("pivots", Json::from(pivots)),
                    ("phase1_iters", Json::from(pivots1)),
                    ("phase2_iters", Json::from(pivots2)),
                    ("refactorizations", Json::from(refactors)),
                    ("status", Json::Str(status.to_string())),
                ],
            );
        }
        outcome.map(|(s, _)| s)
    }

    /// Presolve → lower → revised simplex → reconstruct. The second tuple
    /// element is `(phase1 pivots, phase2 pivots, refactorizations)` for the
    /// flight recorder.
    fn solve_sparse(
        &self,
        basis: Option<&mut Basis>,
    ) -> Result<(Solution, (u64, u64, u64)), LpError> {
        let pre = match presolve::run(self) {
            Ok(p) => p,
            Err(e) => {
                if let Some(b) = basis {
                    b.reset();
                }
                return Err(e);
            }
        };
        sherlock_obs::histogram!("lp.presolve_rows_dropped").observe(pre.rows_dropped as u64);
        sherlock_obs::histogram!("lp.presolve_vars_fixed").observe(pre.vars_fixed as u64);
        let inst = revised::Instance::build(&pre);

        // Map the warm basis onto the reduced problem: structural columns by
        // variable name, slack columns by row signature (which rows were
        // tight at the previous optimum). Unmatched structurals rest at a
        // bound; unmatched (new) rows get a Basic slack, the same slackness
        // a cold start would give them. Basis installation places recorded
        // structurals first and demotes surplus slacks.
        let row_tags = row_tags(&pre);
        let n_cols = inst.n_struct + inst.m;
        let start: Option<Vec<VarStatus>> = match &basis {
            Some(b) if !b.is_empty() => {
                let mut statuses = vec![VarStatus::AtLower; n_cols];
                statuses[inst.n_struct..].fill(VarStatus::Basic);
                let mut hits = 0usize;
                for (j, name) in pre.names.iter().enumerate() {
                    if let Some(s) = b.status(name) {
                        statuses[j] = s;
                        hits += 1;
                    }
                }
                for (i, &tag) in row_tags.iter().enumerate() {
                    if let Some(s) = b.row_status(tag) {
                        statuses[inst.n_struct + i] = s;
                        hits += 1;
                    }
                }
                if hits > 0 {
                    sherlock_obs::counter!("lp.warm_hits").incr();
                    Some(statuses)
                } else {
                    None
                }
            }
            _ => None,
        };

        let out = match revised::solve(&inst, start.as_deref()) {
            Ok(out) => out,
            Err(e) => {
                if let Some(b) = basis {
                    b.reset();
                }
                return Err(e.into());
            }
        };

        if let Some(b) = basis {
            b.reset();
            for (j, name) in pre.names.iter().enumerate() {
                b.record(name, out.statuses[j]);
            }
            for (i, &tag) in row_tags.iter().enumerate() {
                b.record_row(tag, out.statuses[inst.n_struct + i]);
            }
        }

        // Reconstruct the full assignment: presolve-fixed variables replay
        // their fixed value, the rest read the reduced solution.
        let mut values = Vec::with_capacity(self.vars.len());
        let mut next = 0usize;
        for fixed in &pre.fixed {
            match fixed {
                Some(v) => values.push(*v),
                None => {
                    values.push(out.x[next]);
                    next += 1;
                }
            }
        }
        let solution = Solution {
            values,
            objective: out.objective + pre.obj_offset,
        };
        Ok((
            solution,
            (out.phase1_pivots, out.phase2_pivots, out.refactorizations),
        ))
    }

    /// `SHERLOCK_LP_CHECK=1` mode: every production solve is replayed on the
    /// dense oracle and the outcomes compared — status must match, optimal
    /// objectives must agree to 1e-6. Panics on disagreement with both
    /// objectives so the failing model can be investigated. (IterationLimit
    /// on either side is skipped: budgets differ legitimately.)
    fn cross_check(&self, sparse: &Result<(Solution, (u64, u64, u64)), LpError>) {
        let dense = self.solve_dense();
        match (sparse, &dense) {
            (_, Err(LpError::IterationLimit)) | (Err(LpError::IterationLimit), _) => {}
            (Ok((s, _)), Ok(d)) => {
                let scale = 1.0 + s.objective.abs().max(d.objective.abs());
                assert!(
                    (s.objective - d.objective).abs() / scale < 1e-6,
                    "lp cross-check: sparse objective {} != dense {} \
                     ({} vars, {} rows)",
                    s.objective,
                    d.objective,
                    self.vars.len(),
                    self.rows.len(),
                );
            }
            (Ok(_), Err(e)) => panic!("lp cross-check: sparse optimal, dense {e}"),
            (Err(e), Ok(_)) => panic!("lp cross-check: dense optimal, sparse {e}"),
            (Err(a), Err(b)) => assert_eq!(*a, *b, "lp cross-check: status mismatch"),
        }
    }

    /// Runs the presolve pass and returns the reduced model: fixed variables
    /// eliminated, singleton rows folded into bounds, duplicate rows merged.
    /// Presolving is idempotent: `m.presolved()?.presolved()? ==
    /// m.presolved()?`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`] if presolve alone proves the model
    /// has no feasible point.
    pub fn presolved(&self) -> Result<Model, LpError> {
        let pre = presolve::run(self)?;
        let mut reduced = Model::new();
        for (j, name) in pre.names.iter().enumerate() {
            reduced.add_var(name.clone(), pre.lower[j], pre.upper[j]);
        }
        for row in &pre.rows {
            let mut expr = LinExpr::zero();
            for &(j, c) in &row.coeffs {
                expr.add_term(VarId(j), c);
            }
            reduced.rows.push((expr, row.relation, row.rhs));
        }
        let mut objective = LinExpr::zero();
        for (j, &c) in pre.cost.iter().enumerate() {
            if c != 0.0 {
                objective.add_term(VarId(j), c);
            }
        }
        objective.add_constant(pre.obj_offset);
        reduced.objective = objective;
        Ok(reduced)
    }

    /// Solves with the dense two-phase tableau ([`crate::simplex::dense`]).
    ///
    /// This is the slow reference oracle kept for differential testing —
    /// production code should call [`Model::solve`]. No presolve, no
    /// warm-start, no instrumentation.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_dense(&self) -> Result<Solution, LpError> {
        // Column layout: one column per variable; free variables get a second
        // (negative-part) column appended after all primary columns.
        let n = self.vars.len();
        let mut neg_col = vec![usize::MAX; n];
        let mut next = n;
        for (i, v) in self.vars.iter().enumerate() {
            if v.lo == f64::NEG_INFINITY {
                neg_col[i] = next;
                next += 1;
            }
        }
        let num_cols = next;

        // x_i = col_i (+ lo_i) - neg_col_i. Substituting into every row and
        // the objective shifts the RHS / adds a constant.
        let mut problem = Problem {
            num_vars: num_cols,
            rows: Vec::with_capacity(self.rows.len() + n),
            objective: vec![0.0; num_cols],
        };

        let lower = |i: usize| -> f64 {
            let lo = self.vars[i].lo;
            if lo == f64::NEG_INFINITY {
                0.0
            } else {
                lo
            }
        };

        for (expr, rel, rhs) in &self.rows {
            let mut coeffs = Vec::new();
            let mut shift = 0.0;
            for (v, c) in expr.coefficients() {
                coeffs.push((v.0, c));
                if neg_col[v.0] != usize::MAX {
                    coeffs.push((neg_col[v.0], -c));
                }
                shift += c * lower(v.0);
            }
            problem.rows.push(Row {
                coeffs,
                relation: *rel,
                rhs: rhs - expr.constant_term() - shift,
            });
        }

        // Upper bounds as rows (in shifted coordinates: col <= hi - lo).
        for (i, v) in self.vars.iter().enumerate() {
            if v.hi != f64::INFINITY {
                let mut coeffs = vec![(i, 1.0)];
                if neg_col[i] != usize::MAX {
                    coeffs.push((neg_col[i], -1.0));
                }
                problem.rows.push(Row {
                    coeffs,
                    relation: Relation::Le,
                    rhs: v.hi - lower(i),
                });
            }
        }

        let mut const_term = self.objective.constant_term();
        for (v, c) in self.objective.coefficients() {
            problem.objective[v.0] += c;
            if neg_col[v.0] != usize::MAX {
                problem.objective[neg_col[v.0]] -= c;
            }
            const_term += c * lower(v.0);
        }

        let (x, obj) = dense::solve(&problem)?;
        let values = (0..n)
            .map(|i| {
                let neg = if neg_col[i] == usize::MAX {
                    0.0
                } else {
                    x[neg_col[i]]
                };
                x[i] - neg + lower(i)
            })
            .collect();
        Ok(Solution {
            values,
            objective: obj + const_term,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_vars_respected() {
        // min -x - y with x in [0, 0.5], y in [0.25, 1].
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 0.5);
        let y = m.add_var("y", 0.25, 1.0);
        m.minimize(-(LinExpr::from(x) + LinExpr::from(y)));
        let s = m.solve().unwrap();
        assert!((s.value(x) - 0.5).abs() < 1e-7);
        assert!((s.value(y) - 1.0).abs() < 1e-7);
        assert!((s.objective + 1.5).abs() < 1e-7);
    }

    #[test]
    fn nonzero_lower_bound_shift() {
        // min x with x >= 3 (as a bound, not a row).
        let mut m = Model::new();
        let x = m.add_var("x", 3.0, f64::INFINITY);
        m.minimize(LinExpr::from(x));
        let s = m.solve().unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn free_variable_goes_negative() {
        // min x s.t. x >= -5 as a row, x free.
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.constrain_ge(LinExpr::from(x), -5.0);
        m.minimize(LinExpr::from(x));
        let s = m.solve().unwrap();
        assert!((s.value(x) + 5.0).abs() < 1e-7);
    }

    #[test]
    fn hinge_is_max_of_zero_and_expr() {
        // Hinge over (1 - x) with x forced to 0.25 ⇒ hinge value 0.75.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        m.constrain_eq(LinExpr::from(x), 0.25);
        let h = m.add_hinge(LinExpr::constant(1.0) - LinExpr::from(x), 2.0);
        let s = m.solve().unwrap();
        assert!((s.value(h) - 0.75).abs() < 1e-7);
        assert!((s.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn hinge_clamps_to_zero() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 2.0);
        m.constrain_eq(LinExpr::from(x), 2.0);
        let h = m.add_hinge(LinExpr::constant(1.0) - LinExpr::from(x), 1.0);
        let s = m.solve().unwrap();
        assert!(s.value(h).abs() < 1e-7);
        assert!(s.objective.abs() < 1e-7);
    }

    #[test]
    fn abs_measures_magnitude_both_ways() {
        for (target, expected) in [(0.75, 0.25), (0.25, 0.25), (0.5, 0.0)] {
            let mut m = Model::new();
            let x = m.add_var("x", 0.0, 1.0);
            m.constrain_eq(LinExpr::from(x), target);
            let a = m.add_abs(LinExpr::from(x) - LinExpr::constant(0.5), 1.0);
            let s = m.solve().unwrap();
            assert!(
                (s.value(a) - expected).abs() < 1e-7,
                "|{target} - 0.5| should be {expected}"
            );
        }
    }

    #[test]
    fn objective_constant_propagates() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        m.minimize(LinExpr::from(x) + LinExpr::constant(10.0));
        let s = m.solve().unwrap();
        assert!((s.objective - 10.0).abs() < 1e-7);
    }

    #[test]
    fn eval_expression_at_optimum() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0);
        m.constrain_eq(LinExpr::from(x), 0.5);
        m.constrain_eq(LinExpr::from(y), 0.25);
        m.minimize(LinExpr::zero());
        let s = m.solve().unwrap();
        let e = LinExpr::from(x) * 2.0 + LinExpr::from(y) * 4.0 + LinExpr::constant(1.0);
        assert!((s.eval(&e) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_bounds_vs_rows() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        m.constrain_ge(LinExpr::from(x), 2.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_model() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.minimize(-LinExpr::from(x));
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    #[should_panic(expected = "empty variable domain")]
    fn rejects_inverted_bounds() {
        Model::new().add_var("x", 1.0, 0.0);
    }

    #[test]
    fn var_names_kept() {
        let mut m = Model::new();
        let x = m.add_var("read(f)^acq", 0.0, 1.0);
        assert_eq!(m.var_name(x), "read(f)^acq");
        assert_eq!(m.num_vars(), 1);
    }

    #[test]
    fn sherlock_shaped_window_lp_picks_shared_candidate() {
        // Two windows share candidate `s`; window 1 also offers `u1`,
        // window 2 also offers `u2`. With uniform regularization the cheapest
        // cover sets s = 1 and leaves u1 = u2 = 0 — the Mostly-Protected +
        // Synchronizations-are-Rare interplay from the paper, in miniature.
        let mut m = Model::new();
        let s = m.add_var("s", 0.0, 1.0);
        let u1 = m.add_var("u1", 0.0, 1.0);
        let u2 = m.add_var("u2", 0.0, 1.0);
        for &u in &[u1, u2] {
            m.add_hinge(
                LinExpr::constant(1.0) - LinExpr::from(s) - LinExpr::from(u),
                1.0,
            );
        }
        for &v in &[s, u1, u2] {
            m.minimize(LinExpr::term(v, 0.2));
        }
        let sol = m.solve().unwrap();
        assert!(sol.value(s) > 0.99, "shared candidate should be chosen");
        assert!(sol.value(u1) < 0.01);
        assert!(sol.value(u2) < 0.01);
    }
}
