use std::fmt;

use crate::expr::LinExpr;
use crate::simplex::{self, Problem, Relation, Row, SimplexError};

/// Handle to a model variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

/// Failure modes of [`Model::solve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The solver hit its iteration budget.
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "model is infeasible"),
            LpError::Unbounded => write!(f, "model objective is unbounded"),
            LpError::IterationLimit => write!(f, "solver iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

impl From<SimplexError> for LpError {
    fn from(e: SimplexError) -> Self {
        match e {
            SimplexError::Infeasible => LpError::Infeasible,
            SimplexError::Unbounded => LpError::Unbounded,
            SimplexError::IterationLimit => LpError::IterationLimit,
        }
    }
}

#[derive(Clone, Debug)]
struct Var {
    name: String,
    lo: f64,
    hi: f64,
}

/// An LP model: named bounded variables, linear constraints, and a minimized
/// objective, with helpers for the piecewise-linear terms SherLock's encoding
/// uses.
///
/// Variables may have a finite lower bound (shifted internally), a finite
/// upper bound (enforced by an internal row), or be free
/// (`f64::NEG_INFINITY..f64::INFINITY`, split into a difference of two
/// nonnegative columns).
#[derive(Clone, Debug, Default)]
pub struct Model {
    vars: Vec<Var>,
    rows: Vec<(LinExpr, Relation, f64)>,
    objective: LinExpr,
}

/// The optimal assignment returned by [`Model::solve`].
#[derive(Clone, Debug)]
pub struct Solution {
    values: Vec<f64>,
    /// Optimal objective value (including any constant term).
    pub objective: f64,
}

impl Solution {
    /// Value of a variable at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Evaluates an arbitrary linear expression at the optimum.
    pub fn eval(&self, e: &LinExpr) -> f64 {
        e.coefficients()
            .iter()
            .map(|&(v, c)| c * self.value(v))
            .sum::<f64>()
            + e.constant_term()
    }
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable bounded to `[lo, hi]`; either bound may be infinite.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn add_var(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> VarId {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN variable bound");
        assert!(lo <= hi, "empty variable domain");
        let id = VarId(self.vars.len());
        self.vars.push(Var {
            name: name.into(),
            lo,
            hi,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows (excluding bound rows synthesized at solve
    /// time).
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Name given to a variable at creation.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Adds the constraint `expr ≤ rhs`.
    pub fn constrain_le(&mut self, expr: LinExpr, rhs: f64) {
        self.rows.push((expr, Relation::Le, rhs));
    }

    /// Adds the constraint `expr ≥ rhs`.
    pub fn constrain_ge(&mut self, expr: LinExpr, rhs: f64) {
        self.rows.push((expr, Relation::Ge, rhs));
    }

    /// Adds the constraint `expr = rhs`.
    pub fn constrain_eq(&mut self, expr: LinExpr, rhs: f64) {
        self.rows.push((expr, Relation::Eq, rhs));
    }

    /// Adds `expr` to the minimized objective.
    pub fn minimize(&mut self, expr: LinExpr) {
        self.objective += expr;
    }

    /// Adds `weight · max(0, expr)` to the objective (SherLock's
    /// Mostly-Protected terms, Eq. 2) and returns the auxiliary variable
    /// carrying the hinge value.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative (the reformulation is only exact for
    /// nonnegative weights).
    pub fn add_hinge(&mut self, expr: LinExpr, weight: f64) -> VarId {
        assert!(weight >= 0.0, "hinge weight must be nonnegative");
        let s = self.add_var(format!("hinge{}", self.vars.len()), 0.0, f64::INFINITY);
        // s >= expr  ⇔  expr - s <= 0
        self.constrain_le(expr - LinExpr::from(s), 0.0);
        self.minimize(LinExpr::term(s, weight));
        s
    }

    /// Adds `weight · |expr|` to the objective (SherLock's Mostly-Paired
    /// terms, Eqs. 6–7) and returns the auxiliary variable carrying `|expr|`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative.
    pub fn add_abs(&mut self, expr: LinExpr, weight: f64) -> VarId {
        assert!(weight >= 0.0, "abs weight must be nonnegative");
        let t = self.add_var(format!("abs{}", self.vars.len()), 0.0, f64::INFINITY);
        self.constrain_le(expr.clone() - LinExpr::from(t), 0.0);
        self.constrain_le(-expr - LinExpr::from(t), 0.0);
        self.minimize(LinExpr::term(t, weight));
        t
    }

    /// Solves the model.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`].
    pub fn solve(&self) -> Result<Solution, LpError> {
        // Column layout: one column per variable; free variables get a second
        // (negative-part) column appended after all primary columns.
        let n = self.vars.len();
        let mut neg_col = vec![usize::MAX; n];
        let mut next = n;
        for (i, v) in self.vars.iter().enumerate() {
            if v.lo == f64::NEG_INFINITY {
                neg_col[i] = next;
                next += 1;
            }
        }
        let num_cols = next;

        // x_i = col_i (+ lo_i) - neg_col_i. Substituting into every row and
        // the objective shifts the RHS / adds a constant.
        let mut problem = Problem {
            num_vars: num_cols,
            rows: Vec::with_capacity(self.rows.len() + n),
            objective: vec![0.0; num_cols],
        };

        let lower = |i: usize| -> f64 {
            let lo = self.vars[i].lo;
            if lo == f64::NEG_INFINITY {
                0.0
            } else {
                lo
            }
        };

        for (expr, rel, rhs) in &self.rows {
            let mut coeffs = Vec::new();
            let mut shift = 0.0;
            for (v, c) in expr.coefficients() {
                coeffs.push((v.0, c));
                if neg_col[v.0] != usize::MAX {
                    coeffs.push((neg_col[v.0], -c));
                }
                shift += c * lower(v.0);
            }
            problem.rows.push(Row {
                coeffs,
                relation: *rel,
                rhs: rhs - expr.constant_term() - shift,
            });
        }

        // Upper bounds as rows (in shifted coordinates: col <= hi - lo).
        for (i, v) in self.vars.iter().enumerate() {
            if v.hi != f64::INFINITY {
                let mut coeffs = vec![(i, 1.0)];
                if neg_col[i] != usize::MAX {
                    coeffs.push((neg_col[i], -1.0));
                }
                problem.rows.push(Row {
                    coeffs,
                    relation: Relation::Le,
                    rhs: v.hi - lower(i),
                });
            }
        }

        let mut const_term = self.objective.constant_term();
        for (v, c) in self.objective.coefficients() {
            problem.objective[v.0] += c;
            if neg_col[v.0] != usize::MAX {
                problem.objective[neg_col[v.0]] -= c;
            }
            const_term += c * lower(v.0);
        }

        let (x, obj) = simplex::solve(&problem)?;
        let values = (0..n)
            .map(|i| {
                let neg = if neg_col[i] == usize::MAX {
                    0.0
                } else {
                    x[neg_col[i]]
                };
                x[i] - neg + lower(i)
            })
            .collect();
        Ok(Solution {
            values,
            objective: obj + const_term,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_vars_respected() {
        // min -x - y with x in [0, 0.5], y in [0.25, 1].
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 0.5);
        let y = m.add_var("y", 0.25, 1.0);
        m.minimize(-(LinExpr::from(x) + LinExpr::from(y)));
        let s = m.solve().unwrap();
        assert!((s.value(x) - 0.5).abs() < 1e-7);
        assert!((s.value(y) - 1.0).abs() < 1e-7);
        assert!((s.objective + 1.5).abs() < 1e-7);
    }

    #[test]
    fn nonzero_lower_bound_shift() {
        // min x with x >= 3 (as a bound, not a row).
        let mut m = Model::new();
        let x = m.add_var("x", 3.0, f64::INFINITY);
        m.minimize(LinExpr::from(x));
        let s = m.solve().unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn free_variable_goes_negative() {
        // min x s.t. x >= -5 as a row, x free.
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.constrain_ge(LinExpr::from(x), -5.0);
        m.minimize(LinExpr::from(x));
        let s = m.solve().unwrap();
        assert!((s.value(x) + 5.0).abs() < 1e-7);
    }

    #[test]
    fn hinge_is_max_of_zero_and_expr() {
        // Hinge over (1 - x) with x forced to 0.25 ⇒ hinge value 0.75.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        m.constrain_eq(LinExpr::from(x), 0.25);
        let h = m.add_hinge(LinExpr::constant(1.0) - LinExpr::from(x), 2.0);
        let s = m.solve().unwrap();
        assert!((s.value(h) - 0.75).abs() < 1e-7);
        assert!((s.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn hinge_clamps_to_zero() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 2.0);
        m.constrain_eq(LinExpr::from(x), 2.0);
        let h = m.add_hinge(LinExpr::constant(1.0) - LinExpr::from(x), 1.0);
        let s = m.solve().unwrap();
        assert!(s.value(h).abs() < 1e-7);
        assert!(s.objective.abs() < 1e-7);
    }

    #[test]
    fn abs_measures_magnitude_both_ways() {
        for (target, expected) in [(0.75, 0.25), (0.25, 0.25), (0.5, 0.0)] {
            let mut m = Model::new();
            let x = m.add_var("x", 0.0, 1.0);
            m.constrain_eq(LinExpr::from(x), target);
            let a = m.add_abs(LinExpr::from(x) - LinExpr::constant(0.5), 1.0);
            let s = m.solve().unwrap();
            assert!(
                (s.value(a) - expected).abs() < 1e-7,
                "|{target} - 0.5| should be {expected}"
            );
        }
    }

    #[test]
    fn objective_constant_propagates() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        m.minimize(LinExpr::from(x) + LinExpr::constant(10.0));
        let s = m.solve().unwrap();
        assert!((s.objective - 10.0).abs() < 1e-7);
    }

    #[test]
    fn eval_expression_at_optimum() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0);
        m.constrain_eq(LinExpr::from(x), 0.5);
        m.constrain_eq(LinExpr::from(y), 0.25);
        m.minimize(LinExpr::zero());
        let s = m.solve().unwrap();
        let e = LinExpr::from(x) * 2.0 + LinExpr::from(y) * 4.0 + LinExpr::constant(1.0);
        assert!((s.eval(&e) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_bounds_vs_rows() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        m.constrain_ge(LinExpr::from(x), 2.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_model() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.minimize(-LinExpr::from(x));
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    #[should_panic(expected = "empty variable domain")]
    fn rejects_inverted_bounds() {
        Model::new().add_var("x", 1.0, 0.0);
    }

    #[test]
    fn var_names_kept() {
        let mut m = Model::new();
        let x = m.add_var("read(f)^acq", 0.0, 1.0);
        assert_eq!(m.var_name(x), "read(f)^acq");
        assert_eq!(m.num_vars(), 1);
    }

    #[test]
    fn sherlock_shaped_window_lp_picks_shared_candidate() {
        // Two windows share candidate `s`; window 1 also offers `u1`,
        // window 2 also offers `u2`. With uniform regularization the cheapest
        // cover sets s = 1 and leaves u1 = u2 = 0 — the Mostly-Protected +
        // Synchronizations-are-Rare interplay from the paper, in miniature.
        let mut m = Model::new();
        let s = m.add_var("s", 0.0, 1.0);
        let u1 = m.add_var("u1", 0.0, 1.0);
        let u2 = m.add_var("u2", 0.0, 1.0);
        for &u in &[u1, u2] {
            m.add_hinge(
                LinExpr::constant(1.0) - LinExpr::from(s) - LinExpr::from(u),
                1.0,
            );
        }
        for &v in &[s, u1, u2] {
            m.minimize(LinExpr::term(v, 0.2));
        }
        let sol = m.solve().unwrap();
        assert!(sol.value(s) > 0.99, "shared candidate should be chosen");
        assert!(sol.value(u1) < 0.01);
        assert!(sol.value(u2) < 0.01);
    }
}
