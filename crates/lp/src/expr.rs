use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use crate::model::VarId;

/// A linear expression: `Σ cᵢ·xᵢ + constant`.
///
/// Built by combining [`VarId`]s with `+`, `-` and `* f64`. Terms on the same
/// variable are merged lazily when the expression is consumed by the model.
///
/// ```
/// use sherlock_lp::{LinExpr, Model};
/// let mut m = Model::new();
/// let x = m.add_var("x", 0.0, 1.0);
/// let e = LinExpr::from(x) * 3.0 + LinExpr::constant(1.0) - LinExpr::from(x);
/// assert_eq!(e.coefficients(), vec![(x, 2.0)]);
/// assert_eq!(e.constant_term(), 1.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression with no variables.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// A single weighted term `c·x`.
    pub fn term(x: VarId, c: f64) -> Self {
        LinExpr {
            terms: vec![(x, c)],
            constant: 0.0,
        }
    }

    /// Adds `c·x` in place.
    pub fn add_term(&mut self, x: VarId, c: f64) {
        self.terms.push((x, c));
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: f64) {
        self.constant += c;
    }

    /// The constant component.
    pub fn constant_term(&self) -> f64 {
        self.constant
    }

    /// Merged `(variable, coefficient)` pairs, sorted by variable, with
    /// zero-coefficient terms removed.
    pub fn coefficients(&self) -> Vec<(VarId, f64)> {
        let mut terms = self.terms.clone();
        terms.sort_by_key(|&(v, _)| v);
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0.0);
        merged
    }

    /// Whether the expression references no variables (after merging).
    pub fn is_constant(&self) -> bool {
        self.coefficients().is_empty()
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn merge_and_drop_zero_terms() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0);
        let e = LinExpr::from(x) + LinExpr::from(y) - LinExpr::from(x);
        assert_eq!(e.coefficients(), vec![(y, 1.0)]);
    }

    #[test]
    fn scaling_and_negation() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        let e = -(LinExpr::from(x) * 2.0 + LinExpr::constant(3.0));
        assert_eq!(e.coefficients(), vec![(x, -2.0)]);
        assert_eq!(e.constant_term(), -3.0);
    }

    #[test]
    fn constant_detection() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        assert!(LinExpr::constant(4.0).is_constant());
        assert!((LinExpr::from(x) - LinExpr::from(x)).is_constant());
        assert!(!LinExpr::from(x).is_constant());
    }
}
