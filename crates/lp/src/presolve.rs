//! Presolve: shrink a [`Model`] before the simplex ever sees it.
//!
//! SherLock's encoding produces highly redundant LPs: the resolve loop pins
//! variables with singleton `x = 1` rows, repeated windows duplicate hinge
//! rows verbatim, and excluded candidates leave behind rows whose only
//! remaining job is a bound. Three reductions run to a fixpoint:
//!
//! 1. **Singleton rows become bounds** — `c·x {≤,≥,=} b` tightens `x`'s
//!    domain and drops the row (so the resolve loop's `x = 1` fixings cost
//!    nothing at all downstream).
//! 2. **Fixed-variable elimination** — a variable whose domain collapsed to
//!    a point is substituted into every row and the objective.
//! 3. **Duplicate-row dedup** — rows with identical coefficient patterns
//!    keep only the tightest right-hand side (conflicting duplicate
//!    equalities prove infeasibility outright).
//!
//! Empty rows are checked and dropped; crossed bounds report
//! [`LpError::Infeasible`] without running the simplex. The reductions are
//! exact: the reduced LP has the same optimal objective as the original, and
//! any optimum of it extends to one of the original by replaying the fixed
//! values. [`Model::presolved`] exposes the reduced model; `run` is the
//! internal entry point that also keeps the reconstruction mapping.

use std::collections::HashMap;

use crate::model::{LpError, Model};
use crate::simplex::Relation;

/// Infeasibility declarations match the dense oracle's phase-1 tolerance so
/// differential tests agree on borderline models.
const FEAS_TOL: f64 = 1e-7;
/// Domains narrower than this collapse to a fixed value.
const FIX_TOL: f64 = 1e-12;

/// One canonicalized row: merged sorted coefficients over *original*
/// variable indices (remapped at the end), constant term folded into `rhs`.
#[derive(Clone, Debug)]
pub(crate) struct CanonRow {
    pub coeffs: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// The reduced problem plus everything needed to map a reduced solution
/// back onto the original variables.
#[derive(Clone, Debug)]
pub(crate) struct Presolved {
    /// Reduced variables, original names preserved.
    pub names: Vec<String>,
    pub lower: Vec<f64>,
    pub upper: Vec<f64>,
    /// Surviving rows over reduced indices.
    pub rows: Vec<CanonRow>,
    /// Reduced objective coefficients.
    pub cost: Vec<f64>,
    /// Objective constant (original constant + fixed-variable terms).
    pub obj_offset: f64,
    /// Per original variable: `Some(v)` if eliminated at value `v`.
    pub fixed: Vec<Option<f64>>,
    /// Rows removed (singleton, empty, duplicate).
    pub rows_dropped: usize,
    /// Variables eliminated.
    pub vars_fixed: usize,
}

fn empty_row_ok(relation: Relation, rhs: f64) -> bool {
    match relation {
        Relation::Le => rhs >= -FEAS_TOL,
        Relation::Ge => rhs <= FEAS_TOL,
        Relation::Eq => rhs.abs() <= FEAS_TOL,
    }
}

pub(crate) fn run(model: &Model) -> Result<Presolved, LpError> {
    let n = model.vars.len();
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lo).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.hi).collect();
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    let mut rows_dropped = 0usize;
    let mut vars_fixed = 0usize;

    // Canonicalize: merged sorted coefficients, constants folded into rhs.
    let mut rows: Vec<Option<CanonRow>> = model
        .rows
        .iter()
        .map(|(expr, rel, rhs)| {
            Some(CanonRow {
                coeffs: expr
                    .coefficients()
                    .into_iter()
                    .map(|(v, c)| (v.0, c))
                    .collect(),
                relation: *rel,
                rhs: rhs - expr.constant_term(),
            })
        })
        .collect();

    // Variables born fixed (lo == hi).
    for j in 0..n {
        if upper[j] - lower[j] <= FIX_TOL {
            fixed[j] = Some(lower[j]);
            vars_fixed += 1;
        }
    }

    // Fixpoint: substitution can empty a row, emptying can expose a
    // singleton, a singleton can fix a variable. Each pass either removes a
    // row or fixes a variable, so the loop is bounded by rows + vars.
    loop {
        let mut changed = false;
        for slot in rows.iter_mut() {
            let Some(row) = slot else { continue };

            // Substitute fixed variables.
            if row.coeffs.iter().any(|&(j, _)| fixed[j].is_some()) {
                let mut shift = 0.0;
                row.coeffs.retain(|&(j, c)| {
                    if let Some(v) = fixed[j] {
                        shift += c * v;
                        false
                    } else {
                        true
                    }
                });
                row.rhs -= shift;
            }

            if row.coeffs.is_empty() {
                if !empty_row_ok(row.relation, row.rhs) {
                    return Err(LpError::Infeasible);
                }
                *slot = None;
                rows_dropped += 1;
                changed = true;
                continue;
            }

            if row.coeffs.len() == 1 {
                let (j, c) = row.coeffs[0];
                let bound = row.rhs / c;
                let tightens_upper = match (row.relation, c > 0.0) {
                    (Relation::Le, true) | (Relation::Ge, false) => (true, false),
                    (Relation::Ge, true) | (Relation::Le, false) => (false, true),
                    (Relation::Eq, _) => (true, true),
                }; // (tighten upper, tighten lower)
                let (up, lo) = tightens_upper;
                if up && bound < upper[j] {
                    upper[j] = bound;
                }
                if lo && bound > lower[j] {
                    lower[j] = bound;
                }
                if lower[j] > upper[j] + FEAS_TOL {
                    return Err(LpError::Infeasible);
                }
                // A tolerance-crossed domain is still a point domain.
                if lower[j] > upper[j] {
                    upper[j] = lower[j];
                }
                *slot = None;
                rows_dropped += 1;
                changed = true;
            }
        }

        for j in 0..n {
            if fixed[j].is_none() && upper[j] - lower[j] <= FIX_TOL {
                fixed[j] = Some(lower[j]);
                vars_fixed += 1;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // Duplicate-row dedup: identical coefficient patterns keep one row with
    // the tightest rhs. Keyed on exact bit patterns — SherLock's duplicates
    // are verbatim copies of the same window encoding.
    let mut seen: HashMap<(Vec<(usize, u64)>, u8), usize> = HashMap::new();
    let live_idx: Vec<usize> = (0..rows.len()).filter(|&i| rows[i].is_some()).collect();
    for i in live_idx {
        let row = rows[i].as_ref().expect("live row");
        let key: (Vec<(usize, u64)>, u8) = (
            row.coeffs.iter().map(|&(j, c)| (j, c.to_bits())).collect(),
            match row.relation {
                Relation::Le => 0,
                Relation::Ge => 1,
                Relation::Eq => 2,
            },
        );
        match seen.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = *e.get();
                let rhs = row.rhs;
                let kept_row = rows[first].as_mut().expect("kept row");
                match kept_row.relation {
                    Relation::Le => kept_row.rhs = kept_row.rhs.min(rhs),
                    Relation::Ge => kept_row.rhs = kept_row.rhs.max(rhs),
                    Relation::Eq => {
                        if (kept_row.rhs - rhs).abs() > FEAS_TOL {
                            return Err(LpError::Infeasible);
                        }
                    }
                }
                rows[i] = None;
                rows_dropped += 1;
            }
        }
    }

    // Remap to reduced indices.
    let kept: Vec<usize> = (0..n).filter(|&j| fixed[j].is_none()).collect();
    let mut new_idx = vec![usize::MAX; n];
    for (new, &old) in kept.iter().enumerate() {
        new_idx[old] = new;
    }

    let out_rows: Vec<CanonRow> = rows
        .into_iter()
        .flatten()
        .map(|mut r| {
            for (j, _) in &mut r.coeffs {
                *j = new_idx[*j];
            }
            r
        })
        .collect();

    let mut cost = vec![0.0; kept.len()];
    let mut obj_offset = model.objective.constant_term();
    for (v, c) in model.objective.coefficients() {
        match fixed[v.0] {
            Some(val) => obj_offset += c * val,
            None => cost[new_idx[v.0]] += c,
        }
    }

    Ok(Presolved {
        names: kept.iter().map(|&j| model.vars[j].name.clone()).collect(),
        lower: kept.iter().map(|&j| lower[j]).collect(),
        upper: kept.iter().map(|&j| upper[j]).collect(),
        rows: out_rows,
        cost,
        obj_offset,
        fixed,
        rows_dropped,
        vars_fixed,
    })
}
