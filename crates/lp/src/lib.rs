//! Linear programming for SherLock-rs.
//!
//! The paper's Solver encodes synchronization properties as hard linear
//! constraints and hypotheses as soft objective terms, then delegates to an
//! off-the-shelf LP solver (Flipy/CBC). This crate is the from-scratch
//! replacement: a [`Model`] builder with the two nonlinear-looking helpers the
//! encoding needs — [`Model::add_hinge`] for `max(0, e)` terms (Eq. 2) and
//! [`Model::add_abs`] for `|e|` terms (Eqs. 6–7) — on top of a dense
//! two-phase primal [`simplex`] solver.
//!
//! # Example
//!
//! ```
//! use sherlock_lp::{Model, LinExpr};
//!
//! // minimize x + 2y  s.t.  x + y >= 1,  0 <= x,y <= 1
//! let mut m = Model::new();
//! let x = m.add_var("x", 0.0, 1.0);
//! let y = m.add_var("y", 0.0, 1.0);
//! m.constrain_ge(LinExpr::from(x) + LinExpr::from(y), 1.0);
//! m.minimize(LinExpr::from(x) + LinExpr::from(y) * 2.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.value(x) - 1.0).abs() < 1e-7);
//! assert!(sol.value(y).abs() < 1e-7);
//! assert!((sol.objective - 1.0).abs() < 1e-7);
//! ```

mod expr;
mod model;
pub mod simplex;

pub use expr::LinExpr;
pub use model::{LpError, Model, Solution, VarId};
