//! Linear programming for SherLock-rs.
//!
//! The paper's Solver encodes synchronization properties as hard linear
//! constraints and hypotheses as soft objective terms, then delegates to an
//! off-the-shelf LP solver (Flipy/CBC). This crate is the from-scratch
//! replacement: a [`Model`] builder with the two nonlinear-looking helpers the
//! encoding needs — [`Model::add_hinge`] for `max(0, e)` terms (Eq. 2) and
//! [`Model::add_abs`] for `|e|` terms (Eqs. 6–7) — solved by a sparse
//! bounded-variable revised simplex (presolve, CSC columns, product-form
//! basis updates, periodic refactorization, Bland's-rule anti-cycling
//! fallback).
//!
//! Because SherLock's inference rounds only *add* constraints, the solver
//! supports warm starts: [`Model::solve_warm`] resumes from a [`Basis`]
//! recorded by the previous round's optimum, typically cutting the pivot
//! count by an order of magnitude. The original dense two-phase tableau
//! survives as [`simplex::dense`], a slow reference oracle reachable via
//! [`Model::solve_dense`] that the differential test harness checks every
//! change against.
//!
//! # Example
//!
//! ```
//! use sherlock_lp::{Model, LinExpr};
//!
//! // minimize x + 2y  s.t.  x + y >= 1,  0 <= x,y <= 1
//! let mut m = Model::new();
//! let x = m.add_var("x", 0.0, 1.0);
//! let y = m.add_var("y", 0.0, 1.0);
//! m.constrain_ge(LinExpr::from(x) + LinExpr::from(y), 1.0);
//! m.minimize(LinExpr::from(x) + LinExpr::from(y) * 2.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.value(x) - 1.0).abs() < 1e-7);
//! assert!(sol.value(y).abs() < 1e-7);
//! assert!((sol.objective - 1.0).abs() < 1e-7);
//! ```
//!
//! # Warm starts
//!
//! ```
//! use sherlock_lp::{Basis, Model, LinExpr};
//!
//! let mut basis = Basis::new();
//! let mut m = Model::new();
//! let x = m.add_var("x", 0.0, 1.0);
//! m.minimize(LinExpr::from(x));
//! m.solve_warm(&mut basis).unwrap();
//! // Later rounds rebuild the model (indices may shift — names persist)
//! // and resume from `basis`.
//! m.constrain_ge(LinExpr::from(x), 0.5);
//! let sol = m.solve_warm(&mut basis).unwrap();
//! assert!((sol.value(x) - 0.5).abs() < 1e-7);
//! ```

mod basis;
mod expr;
mod model;
mod presolve;
mod revised;
pub mod simplex;
pub mod sparse;

pub use basis::{Basis, VarStatus};
pub use expr::LinExpr;
pub use model::{LpError, Model, Solution, VarId};
