//! Warm-start basis handles.
//!
//! SherLock's Solver rebuilds its LP from scratch every round, but the
//! constraints only *accumulate*: the model solved in round `k+1` is the
//! round-`k` model plus new windows, new candidate variables, and the
//! resolve loop's `x = 1` fixings. Variable *indices* shift between rebuilds
//! as candidates appear, so a [`Basis`] records the optimal basis by
//! variable **name** — the one identity that is stable across rebuilds
//! (`read(f)^acq`-style names are deterministic per operation).
//!
//! [`crate::Model::solve_warm`] maps a stored basis onto the new model
//! (unknown names are ignored, missing columns fall back to a bound), starts
//! the revised simplex from that vertex instead of the all-slack basis, and
//! writes the new optimum's basis back into the handle. Correctness never
//! depends on the mapping: a mismatched basis only costs extra phase-1
//! pivots.

use std::collections::HashMap;

/// Where one variable sat in an optimal basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis (value determined by the constraint system).
    Basic,
    /// Nonbasic at its lower bound (or at zero, for a free variable).
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
}

/// A by-name snapshot of an optimal simplex basis, reusable across model
/// rebuilds. An empty (default) basis makes [`crate::Model::solve_warm`]
/// behave exactly like a cold [`crate::Model::solve`].
#[derive(Clone, Debug, Default)]
pub struct Basis {
    statuses: HashMap<String, VarStatus>,
    /// Slack statuses keyed by a content signature of their row (rows have
    /// no names; the signature hashes the row's named coefficients, relation,
    /// and rhs). Carrying these preserves the optimal active set — which
    /// rows were tight — not just which variables were basic.
    rows: HashMap<u64, VarStatus>,
}

impl Basis {
    /// An empty basis (cold start).
    pub fn new() -> Self {
        Basis::default()
    }

    /// Whether no statuses are recorded.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty() && self.rows.is_empty()
    }

    /// Number of recorded variable statuses.
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// Recorded status of a variable, by name.
    pub fn status(&self, name: &str) -> Option<VarStatus> {
        self.statuses.get(name).copied()
    }

    /// Number of recorded *basic* variables.
    pub fn basic_count(&self) -> usize {
        self.statuses
            .values()
            .filter(|s| **s == VarStatus::Basic)
            .count()
    }

    /// Forgets everything (next solve is cold).
    pub fn clear(&mut self) {
        self.statuses.clear();
        self.rows.clear();
    }

    pub(crate) fn record(&mut self, name: &str, status: VarStatus) {
        self.statuses.insert(name.to_string(), status);
    }

    /// Recorded status of a row's slack, by row signature.
    pub(crate) fn row_status(&self, tag: u64) -> Option<VarStatus> {
        self.rows.get(&tag).copied()
    }

    pub(crate) fn record_row(&mut self, tag: u64, status: VarStatus) {
        self.rows.insert(tag, status);
    }

    pub(crate) fn reset(&mut self) {
        self.statuses.clear();
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut b = Basis::new();
        assert!(b.is_empty());
        b.record("x^acq", VarStatus::Basic);
        b.record("y^rel", VarStatus::AtUpper);
        assert_eq!(b.len(), 2);
        assert_eq!(b.basic_count(), 1);
        assert_eq!(b.status("x^acq"), Some(VarStatus::Basic));
        assert_eq!(b.status("missing"), None);
        b.clear();
        assert!(b.is_empty());
    }
}
