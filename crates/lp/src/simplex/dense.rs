//! Dense two-phase primal simplex — the **test-only reference oracle**.
//!
//! Solves `minimize c·x subject to Σ aᵢⱼ·xⱼ {≤,≥,=} bᵢ, x ≥ 0`. Phase 1
//! minimizes the sum of artificial variables to find a basic feasible
//! solution; phase 2 optimizes the real objective. Entering columns are
//! chosen by Dantzig's rule, switching to Bland's rule after a fixed number
//! of iterations to guarantee termination under degeneracy.
//!
//! This was the production solver until the sparse revised simplex
//! ([`crate::revised`]) replaced it; it is kept in-tree, uninstrumented and
//! unchanged, so every sparse-solver change stays differentially checkable
//! against an independent implementation (`tests/differential.rs`,
//! `tests/proptest_lp.rs`). Do not optimize it — its value is simplicity.

use super::{Problem, Relation, SimplexError};

const EPS: f64 = 1e-9;
/// Iterations of Dantzig pivoting before switching to Bland's rule.
const DANTZIG_BUDGET: usize = 5_000;
/// Hard iteration cap.
const MAX_ITERATIONS: usize = 200_000;

/// Solves the problem, returning the optimal structural-variable assignment
/// and objective value.
///
/// # Errors
///
/// Returns [`SimplexError::Infeasible`], [`SimplexError::Unbounded`], or
/// [`SimplexError::IterationLimit`].
pub fn solve(problem: &Problem) -> Result<(Vec<f64>, f64), SimplexError> {
    let mut rec = SolveRec::default();
    Tableau::build(problem).solve(problem, &mut rec)
}

/// Per-solve flight-recorder tallies.
#[derive(Debug, Default)]
struct SolveRec {
    /// Pivots spent minimizing the artificial objective.
    phase1_iters: u64,
    /// Pivots spent optimizing the real objective.
    phase2_iters: u64,
    /// Pivots spent evicting residual basic artificials between phases.
    evict_pivots: u64,
}

struct Tableau {
    /// `rows × (cols + 1)`; the extra column is the RHS.
    data: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `cols + 1`; last entry is the
    /// negated objective value.
    obj: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    cols: usize,
    n_struct: usize,
    /// Column index where artificial variables start, `cols` if none.
    art_start: usize,
}

impl Tableau {
    fn build(p: &Problem) -> Tableau {
        let m = p.rows.len();
        let n = p.num_vars;

        // Count slack/surplus columns and artificial columns.
        let mut n_slack = 0;
        for row in &p.rows {
            if row.relation != Relation::Eq {
                n_slack += 1;
            }
        }
        // Artificials: Ge and Eq rows always; Le rows never (slack serves).
        // Rows are normalized to b >= 0 first, which can flip the relation.
        let mut data: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut relations = Vec::with_capacity(m);
        for row in &p.rows {
            let mut dense = vec![0.0; n];
            for &(j, c) in &row.coeffs {
                assert!(j < n, "coefficient column out of range");
                dense[j] += c;
            }
            let mut rel = row.relation;
            let mut rhs = row.rhs;
            if rhs < 0.0 {
                for v in &mut dense {
                    *v = -*v;
                }
                rhs = -rhs;
                rel = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            dense.push(rhs);
            data.push(dense);
            relations.push(rel);
        }

        let n_art = relations.iter().filter(|r| **r != Relation::Le).count();
        let cols = n + n_slack + n_art;
        let art_start = n + n_slack;

        // Widen rows to full column count, placing slack/artificial entries.
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_idx = art_start;
        for (i, rel) in relations.iter().enumerate() {
            let rhs = data[i].pop().expect("rhs present");
            data[i].resize(cols, 0.0);
            match rel {
                Relation::Le => {
                    data[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    data[i][slack_idx] = -1.0;
                    slack_idx += 1;
                    data[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    data[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
            data[i].push(rhs);
        }

        Tableau {
            data,
            obj: vec![0.0; cols + 1],
            basis,
            cols,
            n_struct: n,
            art_start,
        }
    }

    fn solve(mut self, p: &Problem, rec: &mut SolveRec) -> Result<(Vec<f64>, f64), SimplexError> {
        // Phase 1: minimize the sum of artificials.
        if self.art_start < self.cols {
            self.obj = vec![0.0; self.cols + 1];
            for j in self.art_start..self.cols {
                self.obj[j] = 1.0;
            }
            self.price_out_basis();
            self.iterate(self.cols, &mut rec.phase1_iters)?;
            let phase1 = -self.obj[self.cols];
            if phase1 > 1e-7 {
                return Err(SimplexError::Infeasible);
            }
            rec.evict_pivots += self.evict_artificials();
        }

        // Phase 2: the real objective, excluding artificial columns.
        self.obj = vec![0.0; self.cols + 1];
        for (j, &c) in p.objective.iter().enumerate() {
            if j < self.n_struct {
                self.obj[j] = c;
            }
        }
        self.price_out_basis();
        self.iterate(self.art_start, &mut rec.phase2_iters)?;

        let mut x = vec![0.0; self.n_struct];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                x[b] = self.data[i][self.cols];
            }
        }
        let mut obj = 0.0;
        for (j, &c) in p.objective.iter().enumerate() {
            if j < self.n_struct {
                obj += c * x[j];
            }
        }
        Ok((x, obj))
    }

    /// Subtracts multiples of basic rows from the objective row so that all
    /// basic columns have zero reduced cost.
    fn price_out_basis(&mut self) {
        for (i, &b) in self.basis.iter().enumerate() {
            let c = self.obj[b];
            if c != 0.0 {
                for j in 0..=self.cols {
                    self.obj[j] -= c * self.data[i][j];
                }
            }
        }
    }

    /// Pivots until no reduced cost is negative, considering only columns
    /// `< col_limit` as entering candidates (used to exclude artificials in
    /// phase 2). Each performed pivot bumps `*pivots` (including on the
    /// error paths, so the flight recorder sees work spent before failure).
    fn iterate(&mut self, col_limit: usize, pivots: &mut u64) -> Result<(), SimplexError> {
        for iter in 0..MAX_ITERATIONS {
            let bland = iter >= DANTZIG_BUDGET;
            let entering = if bland {
                (0..col_limit).find(|&j| self.obj[j] < -EPS)
            } else {
                let mut best = None;
                let mut best_c = -EPS;
                for j in 0..col_limit {
                    if self.obj[j] < best_c {
                        best_c = self.obj[j];
                        best = Some(j);
                    }
                }
                best
            };
            let Some(e) = entering else {
                return Ok(());
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.data.len() {
                let a = self.data[i][e];
                if a > EPS {
                    let ratio = self.data[i][self.cols] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_none_or(|l| {
                                if bland {
                                    self.basis[i] < self.basis[l]
                                } else {
                                    // Prefer kicking artificials out, then
                                    // lowest basis index for determinism.
                                    (self.basis[i] >= self.art_start, self.basis[i])
                                        > (self.basis[l] >= self.art_start, self.basis[l])
                                }
                            }));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(l) = leave else {
                return Err(SimplexError::Unbounded);
            };
            *pivots += 1;
            self.pivot(l, e);
        }
        Err(SimplexError::IterationLimit)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.data[row][col];
        debug_assert!(p.abs() > EPS, "pivot on (near-)zero element");
        for v in &mut self.data[row] {
            *v /= p;
        }
        let pivot_row = self.data[row].clone();
        for (i, r) in self.data.iter_mut().enumerate() {
            if i != row {
                let f = r[col];
                if f != 0.0 {
                    for (v, pv) in r.iter_mut().zip(&pivot_row) {
                        *v -= f * pv;
                    }
                }
            }
        }
        let f = self.obj[col];
        if f != 0.0 {
            for (v, pv) in self.obj.iter_mut().zip(&pivot_row) {
                *v -= f * pv;
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots basic artificials out of the basis; rows where
    /// that is impossible are redundant and get zeroed (their artificial stays
    /// basic at value 0 and artificials never re-enter). Returns the number
    /// of eviction pivots performed.
    fn evict_artificials(&mut self) -> u64 {
        let mut pivots = 0;
        for i in 0..self.data.len() {
            if self.basis[i] >= self.art_start {
                let col = (0..self.art_start).find(|&j| self.data[i][j].abs() > EPS);
                if let Some(j) = col {
                    self.pivot(i, j);
                    pivots += 1;
                }
            }
        }
        pivots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{Problem, Relation, Row};

    fn row(coeffs: &[(usize, f64)], relation: Relation, rhs: f64) -> Row {
        Row {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        }
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), 36.
        let p = Problem {
            num_vars: 2,
            rows: vec![
                row(&[(0, 1.0)], Relation::Le, 4.0),
                row(&[(1, 2.0)], Relation::Le, 12.0),
                row(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0),
            ],
            objective: vec![-3.0, -5.0],
        };
        let (x, obj) = solve(&p).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
        assert!((obj + 36.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 → intersection (1.6, 1.2).
        let p = Problem {
            num_vars: 2,
            rows: vec![
                row(&[(0, 1.0), (1, 2.0)], Relation::Ge, 4.0),
                row(&[(0, 3.0), (1, 1.0)], Relation::Ge, 6.0),
            ],
            objective: vec![1.0, 1.0],
        };
        let (x, obj) = solve(&p).unwrap();
        assert!((x[0] - 1.6).abs() < 1e-6);
        assert!((x[1] - 1.2).abs() < 1e-6);
        assert!((obj - 2.8).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2 → (6, 4), 24.
        let p = Problem {
            num_vars: 2,
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], Relation::Eq, 10.0),
                row(&[(0, 1.0), (1, -1.0)], Relation::Eq, 2.0),
            ],
            objective: vec![2.0, 3.0],
        };
        let (x, obj) = solve(&p).unwrap();
        assert!((x[0] - 6.0).abs() < 1e-7);
        assert!((x[1] - 4.0).abs() < 1e-7);
        assert!((obj - 24.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let p = Problem {
            num_vars: 1,
            rows: vec![
                row(&[(0, 1.0)], Relation::Ge, 5.0),
                row(&[(0, 1.0)], Relation::Le, 3.0),
            ],
            objective: vec![1.0],
        };
        assert_eq!(solve(&p).unwrap_err(), SimplexError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let p = Problem {
            num_vars: 1,
            rows: vec![row(&[(0, 1.0)], Relation::Ge, 1.0)],
            objective: vec![-1.0],
        };
        assert_eq!(solve(&p).unwrap_err(), SimplexError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -2 with x,y >= 0 ⇒ y >= x + 2; min y → y = 2.
        let p = Problem {
            num_vars: 2,
            rows: vec![row(&[(0, 1.0), (1, -1.0)], Relation::Le, -2.0)],
            objective: vec![0.0, 1.0],
        };
        let (x, obj) = solve(&p).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-7);
        assert!((obj - 2.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equality_rows_are_harmless() {
        let p = Problem {
            num_vars: 2,
            rows: vec![
                row(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0),
                row(&[(0, 2.0), (1, 2.0)], Relation::Eq, 8.0),
            ],
            objective: vec![1.0, 0.0],
        };
        let (x, obj) = solve(&p).unwrap();
        assert!(obj.abs() < 1e-7);
        assert!((x[1] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let p = Problem {
            num_vars: 2,
            rows: vec![
                row(&[(0, 1.0)], Relation::Le, 1.0),
                row(&[(1, 1.0)], Relation::Le, 1.0),
                row(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.0),
                row(&[(0, 1.0), (1, -1.0)], Relation::Le, 0.0),
            ],
            objective: vec![-1.0, -1.0],
        };
        let (_, obj) = solve(&p).unwrap();
        assert!((obj + 1.0).abs() < 1e-7);
    }

    #[test]
    fn zero_rows_and_empty_objective() {
        let p = Problem {
            num_vars: 3,
            rows: vec![],
            objective: vec![],
        };
        let (x, obj) = solve(&p).unwrap();
        assert_eq!(x, vec![0.0, 0.0, 0.0]);
        assert_eq!(obj, 0.0);
    }

    #[test]
    fn repeated_columns_are_summed() {
        // (x + x) <= 4 ⇒ x <= 2; max x.
        let p = Problem {
            num_vars: 1,
            rows: vec![row(&[(0, 1.0), (0, 1.0)], Relation::Le, 4.0)],
            objective: vec![-1.0],
        };
        let (x, _) = solve(&p).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-7);
    }
}
