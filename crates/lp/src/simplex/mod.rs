//! Simplex solvers and their shared problem vocabulary.
//!
//! Production solving goes through the sparse revised simplex in
//! [`crate::revised`] (reached via [`crate::Model::solve`]); the dense
//! two-phase tableau that seeded this repo lives on in [`dense`] as a
//! slow-but-simple *reference oracle* for differential testing. The types
//! here — [`Problem`], [`Row`], [`Relation`], [`SimplexError`] — are the
//! standard-form vocabulary both solvers (and the tests comparing them)
//! share.

pub mod dense;

/// Relation of one constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ aⱼxⱼ ≤ b`
    Le,
    /// `Σ aⱼxⱼ ≥ b`
    Ge,
    /// `Σ aⱼxⱼ = b`
    Eq,
}

/// One constraint: sparse coefficients over the structural variables.
#[derive(Clone, Debug)]
pub struct Row {
    /// `(column, coefficient)` pairs; columns may repeat (they are summed).
    pub coeffs: Vec<(usize, f64)>,
    /// Relation to the right-hand side.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A standard-form problem over `num_vars` nonnegative variables.
#[derive(Clone, Debug, Default)]
pub struct Problem {
    /// Number of structural variables (all constrained `x ≥ 0`).
    pub num_vars: usize,
    /// Constraint rows.
    pub rows: Vec<Row>,
    /// Objective coefficients (minimized); missing entries are zero.
    pub objective: Vec<f64>,
}

/// Why a solver could not return an optimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimplexError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
    /// The pivot loop exceeded its iteration budget (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for SimplexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplexError::Infeasible => write!(f, "problem is infeasible"),
            SimplexError::Unbounded => write!(f, "problem is unbounded"),
            SimplexError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for SimplexError {}
