//! Compressed-sparse-column storage for the revised simplex.
//!
//! The revised simplex only ever consumes the constraint matrix column-wise
//! (FTRAN of an entering column, pricing a nonbasic column against the dual
//! vector), so columns are the storage unit: one contiguous `(row, value)`
//! run per column, classic CSC.

/// A sparse matrix in compressed-sparse-column form.
#[derive(Clone, Debug, Default)]
pub struct Csc {
    n_rows: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes column `j`'s run.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csc {
    /// Builds from per-column entry lists. Duplicate row indices within one
    /// column must already be merged and zeros dropped by the caller.
    pub fn from_columns(n_rows: usize, columns: &[Vec<(usize, f64)>]) -> Csc {
        let nnz = columns.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(columns.len() + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in columns {
            for &(i, v) in col {
                debug_assert!(i < n_rows, "row index out of range");
                row_idx.push(i);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        Csc {
            n_rows,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.col_ptr.len().saturating_sub(1)
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Iterates column `j`'s `(row, value)` entries.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Dot product of column `j` with a dense vector.
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        self.col(j).map(|(i, v)| v * dense[i]).sum()
    }

    /// Scatters column `j` into a dense vector (which must be zeroed).
    pub fn scatter(&self, j: usize, dense: &mut [f64]) {
        for (i, v) in self.col(j) {
            dense[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_columns() {
        let m = Csc::from_columns(3, &[vec![(0, 1.0), (2, -2.0)], vec![], vec![(1, 4.0)]]);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, -2.0)]);
        assert_eq!(m.col(1).count(), 0);
        assert_eq!(m.col(2).collect::<Vec<_>>(), vec![(1, 4.0)]);
    }

    #[test]
    fn dot_and_scatter() {
        let m = Csc::from_columns(3, &[vec![(0, 2.0), (1, 3.0)]]);
        assert_eq!(m.col_dot(0, &[1.0, 10.0, 100.0]), 32.0);
        let mut dense = vec![0.0; 3];
        m.scatter(0, &mut dense);
        assert_eq!(dense, vec![2.0, 3.0, 0.0]);
    }
}
