//! Bounded-variable sparse revised simplex with product-form basis updates.
//!
//! This is the production solver behind [`crate::Model::solve`] and
//! [`crate::Model::solve_warm`]. Differences from the dense oracle in
//! [`crate::simplex::dense`] that make it fast on SherLock's LPs:
//!
//! * **Bounds are implicit.** Variables carry `[lo, hi]` ranges directly —
//!   no bound rows, no free-variable column splitting. SherLock's models are
//!   dominated by `[0, 1]` probability variables and `[0, ∞)` hinge slacks,
//!   so this alone removes roughly half the rows the dense path creates.
//! * **Sparse columns.** The constraint matrix is CSC ([`crate::sparse::Csc`]);
//!   pricing and FTRAN touch only stored nonzeros. Hinge rows have 2–5
//!   entries each, so density is a few percent.
//! * **Factorized basis.** `B⁻¹` is never formed. A product-form eta file
//!   represents it implicitly; each pivot appends one eta, and the basis is
//!   refactorized from scratch every [`REFACTOR_EVERY`] etas (Gauss-Jordan
//!   over the basic columns, slack columns first since they factor
//!   trivially) to bound the file length and flush accumulated error.
//! * **Composite phase 1.** Instead of artificial variables, an infeasible
//!   basis minimizes total bound violation of the basic variables directly.
//!   This is what makes *warm starts* work: any [`crate::Basis`] mapped onto
//!   the current model is a legal starting point — at worst it is primal
//!   infeasible and phase 1 repairs it in a few pivots.
//! * **Dantzig → Bland.** Most-negative-reduced-cost pricing with a switch
//!   to Bland's least-index rule after [`DANTZIG_BUDGET`] iterations, which
//!   guarantees termination on cycling/degenerate models (see
//!   `crates/lp/tests/degenerate.rs`).

use crate::basis::VarStatus;
use crate::presolve::Presolved;
use crate::simplex::{Relation, SimplexError};
use crate::sparse::Csc;

/// Entries smaller than this are treated as exact zeros in work vectors.
const EPS_ZERO: f64 = 1e-11;
/// Minimum magnitude for a ratio-test candidate / eta pivot element.
const EPS_RATIO: f64 = 1e-9;
/// Bound-violation tolerance (matches the dense oracle's phase-1 tolerance).
const EPS_FEAS: f64 = 1e-7;
/// Reduced-cost optimality tolerance. Must sit well below 1e-7: SherLock's
/// encoding adds 1e-7-scale symmetry-breaking perturbations to pick a unique
/// vertex out of degenerate faces, and the solver has to honor them (the
/// dense oracle prices at 1e-9 too).
const EPS_DUAL: f64 = 1e-9;
/// Minimum pivot magnitude preferred when breaking ratio-test ties.
const EPS_PIVOT: f64 = 1e-8;
/// Refactorize after this many etas accumulate.
const REFACTOR_EVERY: usize = 96;
/// Iterations of Dantzig pricing before switching to Bland's rule.
const DANTZIG_BUDGET: usize = 5_000;
/// Hard iteration cap.
const MAX_ITERATIONS: usize = 200_000;

/// A presolved model lowered to solver form: structural columns followed by
/// one slack column per row, all bounds explicit.
pub(crate) struct Instance {
    pub m: usize,
    pub n_struct: usize,
    /// `n_struct + m` columns; slack `i` is the unit column `e_i`.
    pub cols: Csc,
    pub lower: Vec<f64>,
    pub upper: Vec<f64>,
    /// Objective per column (slacks cost nothing).
    pub cost: Vec<f64>,
    pub rhs: Vec<f64>,
}

impl Instance {
    pub fn build(p: &Presolved) -> Instance {
        let m = p.rows.len();
        let n_struct = p.names.len();
        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct + m];
        for (i, row) in p.rows.iter().enumerate() {
            // Row coefficients are merged and sorted, and rows are visited in
            // order, so each column's entries come out sorted by row.
            for &(j, c) in &row.coeffs {
                if c != 0.0 {
                    columns[j].push((i, c));
                }
            }
        }
        let mut lower = p.lower.clone();
        let mut upper = p.upper.clone();
        for (i, row) in p.rows.iter().enumerate() {
            columns[n_struct + i].push((i, 1.0));
            // Row `a·x {≤,≥,=} b` becomes `a·x + s = b` with the slack's sign
            // constrained to absorb exactly the allowed direction.
            let (lo, hi) = match row.relation {
                Relation::Le => (0.0, f64::INFINITY),
                Relation::Ge => (f64::NEG_INFINITY, 0.0),
                Relation::Eq => (0.0, 0.0),
            };
            lower.push(lo);
            upper.push(hi);
        }
        let mut cost = p.cost.clone();
        cost.resize(n_struct + m, 0.0);
        Instance {
            m,
            n_struct,
            cols: Csc::from_columns(m, &columns),
            lower,
            upper,
            cost,
            rhs: p.rows.iter().map(|r| r.rhs).collect(),
        }
    }

    /// Clamp a warm-start status against this column's actual bounds: a
    /// status pointing at an infinite bound is meaningless, so fall back to
    /// the nearest finite bound (or park a free variable at zero via
    /// `AtLower`, which [`Simplex::nb_value`] reads as 0).
    fn normalize(&self, j: usize, s: VarStatus) -> VarStatus {
        match s {
            VarStatus::Basic => VarStatus::Basic,
            VarStatus::AtUpper if self.upper[j].is_finite() => VarStatus::AtUpper,
            VarStatus::AtUpper | VarStatus::AtLower if self.lower[j].is_finite() => {
                VarStatus::AtLower
            }
            _ if self.upper[j].is_finite() => VarStatus::AtUpper,
            _ => VarStatus::AtLower,
        }
    }
}

/// Solver outcome: structural values, raw objective (no presolve offset),
/// the final column statuses (for [`crate::Basis`] capture), and
/// flight-recorder tallies.
pub(crate) struct SolveOut {
    pub x: Vec<f64>,
    pub objective: f64,
    pub statuses: Vec<VarStatus>,
    pub phase1_pivots: u64,
    pub phase2_pivots: u64,
    pub bound_flips: u64,
    pub refactorizations: u64,
}

/// One product-form elementary matrix: the basis change that pivoted row
/// `pos` on a column whose FTRANed image had `diag` at `pos` and `others`
/// elsewhere.
struct Eta {
    pos: usize,
    diag: f64,
    others: Vec<(usize, f64)>,
}

struct Simplex<'a> {
    inst: &'a Instance,
    n: usize,
    m: usize,
    status: Vec<VarStatus>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Row of a basic column (`usize::MAX` when nonbasic).
    pos_of: Vec<usize>,
    /// Values of the basic variables, by row.
    xb: Vec<f64>,
    etas: Vec<Eta>,
    /// `etas.len()` right after the last (re)factorization; the
    /// refactorization cadence counts pivot etas from here, not the etas the
    /// factorization itself holds.
    base_etas: usize,
    refactorizations: u64,
}

impl<'a> Simplex<'a> {
    fn new(inst: &'a Instance, start: Option<&[VarStatus]>) -> Simplex<'a> {
        let n = inst.cols.n_cols();
        let m = inst.m;
        let mut status = Vec::with_capacity(n);
        match start {
            Some(s) => {
                debug_assert_eq!(s.len(), n);
                for (j, &st) in s.iter().enumerate() {
                    status.push(inst.normalize(j, st));
                }
            }
            None => {
                // Cold start: structurals at a bound, slacks basic (the
                // all-slack basis is the identity — zero etas).
                for j in 0..inst.n_struct {
                    status.push(inst.normalize(j, VarStatus::AtLower));
                }
                status.extend(std::iter::repeat_n(VarStatus::Basic, m));
            }
        }
        Simplex {
            inst,
            n,
            m,
            status,
            basis: vec![usize::MAX; m],
            pos_of: vec![usize::MAX; n],
            xb: vec![0.0; m],
            etas: Vec::new(),
            base_etas: 0,
            refactorizations: 0,
        }
    }

    /// Value a nonbasic column rests at.
    fn nb_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => {
                if self.inst.lower[j].is_finite() {
                    self.inst.lower[j]
                } else {
                    0.0
                }
            }
            VarStatus::AtUpper => self.inst.upper[j],
            VarStatus::Basic => unreachable!("basic column has no rest value"),
        }
    }

    /// Apply `B⁻¹` (etas in creation order) to a dense vector in place.
    fn ftran(&self, v: &mut [f64]) {
        for eta in &self.etas {
            let t = v[eta.pos];
            if t == 0.0 {
                continue;
            }
            let vp = t / eta.diag;
            v[eta.pos] = vp;
            for &(i, w) in &eta.others {
                v[i] -= w * vp;
            }
        }
    }

    /// Apply `B⁻ᵀ` (etas in reverse order) to a dense vector in place.
    fn btran(&self, v: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = v[eta.pos];
            for &(i, w) in &eta.others {
                s -= w * v[i];
            }
            v[eta.pos] = s / eta.diag;
        }
    }

    /// Try to pivot `col` into the factorization at the best unassigned row.
    /// On success the column becomes basic; on failure (no usable pivot —
    /// the column is dependent on those already placed) nothing changes.
    fn place(&mut self, col: usize, assigned: &mut [bool], w: &mut [f64]) -> bool {
        w.fill(0.0);
        self.inst.cols.scatter(col, w);
        self.ftran(w);
        let mut best: Option<usize> = None;
        let mut best_abs = EPS_PIVOT;
        for (i, &wi) in w.iter().enumerate() {
            if !assigned[i] && wi.abs() > best_abs {
                best = Some(i);
                best_abs = wi.abs();
            }
        }
        let Some(r) = best else { return false };
        let diag = w[r];
        // An identity image needs no eta (every slack placed at its own row
        // before any structural column hits this path).
        let trivial = (diag - 1.0).abs() < EPS_ZERO
            && w.iter()
                .enumerate()
                .all(|(i, &wi)| i == r || wi.abs() < EPS_ZERO);
        if !trivial {
            self.etas.push(Eta {
                pos: r,
                diag,
                others: w
                    .iter()
                    .enumerate()
                    .filter(|&(i, &wi)| i != r && wi.abs() > EPS_ZERO)
                    .map(|(i, &wi)| (i, wi))
                    .collect(),
            });
        }
        assigned[r] = true;
        self.basis[r] = col;
        self.pos_of[col] = r;
        self.status[col] = VarStatus::Basic;
        true
    }

    /// (Re)build the factorization from a candidate basic set. Dependent
    /// candidates are demoted to a bound; unassigned rows are repaired with
    /// slack columns. Errors only if even the slacks cannot complete the
    /// basis, which cannot happen structurally (slacks span the row space).
    fn install_basis(&mut self, candidates: &[usize]) -> Result<(), ()> {
        self.etas.clear();
        self.refactorizations += 1;
        self.basis.fill(usize::MAX);
        self.pos_of.fill(usize::MAX);
        let mut assigned = vec![false; self.m];
        let mut w = vec![0.0; self.m];
        for &c in candidates {
            if !self.place(c, &mut assigned, &mut w) {
                self.status[c] = self.inst.normalize(c, VarStatus::AtLower);
            }
        }
        // Repair: fill each uncovered row, preferring its own slack.
        for r in 0..self.m {
            if !assigned[r] {
                let s = self.inst.n_struct + r;
                if self.pos_of[s] == usize::MAX {
                    self.place(s, &mut assigned, &mut w);
                }
            }
        }
        if assigned.iter().any(|a| !a) {
            for s in self.inst.n_struct..self.n {
                if self.pos_of[s] == usize::MAX {
                    self.place(s, &mut assigned, &mut w);
                }
            }
        }
        // The factorization itself may hold many etas (a warm basis full of
        // structural columns eliminates one per placement); only etas pushed
        // by *pivots* after this point count toward the next refactorization.
        self.base_etas = self.etas.len();
        if assigned.iter().all(|a| *a) {
            Ok(())
        } else {
            Err(())
        }
    }

    /// Recompute `xb = B⁻¹(b − N x_N)` from scratch.
    fn compute_xb(&mut self) {
        let mut v = self.inst.rhs.clone();
        for j in 0..self.n {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let xj = self.nb_value(j);
            if xj != 0.0 {
                for (i, a) in self.inst.cols.col(j) {
                    v[i] -= a * xj;
                }
            }
        }
        self.ftran(&mut v);
        self.xb = v;
    }

    /// Candidate basic columns in deterministic factorization order: slacks
    /// first (they factor trivially), then structurals.
    fn basic_candidates(&self) -> Vec<usize> {
        let mut c: Vec<usize> = (self.inst.n_struct..self.n)
            .filter(|&j| self.status[j] == VarStatus::Basic)
            .collect();
        c.extend((0..self.inst.n_struct).filter(|&j| self.status[j] == VarStatus::Basic));
        c
    }
}

/// Solve a lowered instance, optionally from a warm set of column statuses.
pub(crate) fn solve(
    inst: &Instance,
    start: Option<&[VarStatus]>,
) -> Result<SolveOut, SimplexError> {
    let m = inst.m;
    let mut sim = Simplex::new(inst, start);

    // Initial install. A warm start lists recorded-Basic structurals ahead
    // of the (defaulted-Basic) slacks so the carried-over basis wins rows
    // before the repair slacks claim them; the cold path keeps the
    // slacks-first order, which factors as the identity.
    let initial = if start.is_some() {
        let mut c: Vec<usize> = (0..inst.n_struct)
            .filter(|&j| sim.status[j] == VarStatus::Basic)
            .collect();
        c.extend((inst.n_struct..sim.n).filter(|&j| sim.status[j] == VarStatus::Basic));
        c
    } else {
        sim.basic_candidates()
    };
    if sim.install_basis(&initial).is_err() {
        // Degenerate fallback: restart from the all-slack identity basis,
        // which always factors.
        for j in 0..inst.n_struct {
            sim.status[j] = inst.normalize(j, VarStatus::AtLower);
        }
        for j in inst.n_struct..sim.n {
            sim.status[j] = VarStatus::Basic;
        }
        sim.install_basis(&sim.basic_candidates())
            .expect("all-slack basis is the identity");
    }
    sim.compute_xb();

    let mut out = SolveOut {
        x: Vec::new(),
        objective: 0.0,
        statuses: Vec::new(),
        phase1_pivots: 0,
        phase2_pivots: 0,
        bound_flips: 0,
        refactorizations: 0,
    };

    let mut cb = vec![0.0; m];
    let mut w = vec![0.0; m];

    for iter in 0..MAX_ITERATIONS {
        // Phase detection: any basic variable outside its bounds puts us in
        // (composite) phase 1, minimizing total violation; otherwise the
        // basic costs drive ordinary phase 2. Re-derived every iteration so
        // the loop handles arbitrary warm bases without a separate driver.
        let mut phase1 = false;
        for (i, ci) in cb.iter_mut().enumerate() {
            let b = sim.basis[i];
            let v = sim.xb[i];
            if v < inst.lower[b] - EPS_FEAS {
                *ci = -1.0;
                phase1 = true;
            } else if v > inst.upper[b] + EPS_FEAS {
                *ci = 1.0;
                phase1 = true;
            } else {
                *ci = 0.0;
            }
        }
        if !phase1 {
            for (i, ci) in cb.iter_mut().enumerate() {
                *ci = inst.cost[sim.basis[i]];
            }
        }

        // Duals: y = B⁻ᵀ c_B.
        let mut y = cb.clone();
        sim.btran(&mut y);

        // Pricing. Reduced cost d_j = c_j − y·a_j (phase-1 structural costs
        // are zero). σ is the improving direction for the entering column.
        let bland = iter >= DANTZIG_BUDGET;
        let mut entering: Option<(usize, f64)> = None; // (column, σ)
        let mut best_score = EPS_DUAL;
        for j in 0..sim.n {
            if sim.status[j] == VarStatus::Basic || inst.lower[j] == inst.upper[j] {
                continue;
            }
            let c = if phase1 { 0.0 } else { inst.cost[j] };
            let d = c - inst.cols.col_dot(j, &y);
            let free = sim.status[j] == VarStatus::AtLower && !inst.lower[j].is_finite();
            let cand: Option<(f64, f64)> = match sim.status[j] {
                VarStatus::AtLower if free => {
                    if d < -EPS_DUAL {
                        Some((1.0, -d))
                    } else if d > EPS_DUAL {
                        Some((-1.0, d))
                    } else {
                        None
                    }
                }
                VarStatus::AtLower if d < -EPS_DUAL => Some((1.0, -d)),
                VarStatus::AtUpper if d > EPS_DUAL => Some((-1.0, d)),
                _ => None,
            };
            if let Some((sigma, score)) = cand {
                if bland {
                    entering = Some((j, sigma));
                    break;
                }
                if score > best_score {
                    best_score = score;
                    entering = Some((j, sigma));
                }
            }
        }

        let Some((e, sigma)) = entering else {
            if phase1 {
                // No improving direction for the infeasibility sum: the
                // model has no feasible point.
                return Err(SimplexError::Infeasible);
            }
            // Optimal.
            return Ok(finish(inst, sim, out));
        };

        // FTRAN the entering column: w = B⁻¹ a_e.
        w.fill(0.0);
        inst.cols.scatter(e, &mut w);
        sim.ftran(&mut w);

        // Ratio test. The entering variable moves by t·σ from its rest
        // value; basic variable i moves by δ_i·t with δ_i = −σ·w_i.
        //
        // Feasible basic rows block at the bound they would cross. In phase
        // 1, a row already *violating* a bound blocks when it reaches the
        // violated bound (it becomes feasible there); rows moving deeper
        // into violation never block — the composite objective already
        // accounts for them. The entering variable's own span competes as a
        // bound flip.
        let own_span = inst.upper[e] - inst.lower[e];
        let mut t_best = if own_span.is_finite() {
            own_span
        } else {
            f64::INFINITY
        };
        // (row, pivot magnitude, leaves at upper bound)
        let mut leave: Option<(usize, f64, bool)> = None;
        for (i, &wi) in w.iter().enumerate() {
            if wi.abs() <= EPS_RATIO {
                continue;
            }
            let delta = -sigma * wi;
            let b = sim.basis[i];
            let v = sim.xb[i];
            let (l, u) = (inst.lower[b], inst.upper[b]);
            let hit: Option<(f64, bool)> = if v < l - EPS_FEAS {
                (delta > 0.0).then(|| ((l - v) / delta, false))
            } else if v > u + EPS_FEAS {
                (delta < 0.0).then(|| ((u - v) / delta, true))
            } else if delta > 0.0 && u.is_finite() {
                Some(((u - v) / delta, true))
            } else if delta < 0.0 && l.is_finite() {
                Some(((l - v) / delta, false))
            } else {
                None
            };
            let Some((ratio, to_upper)) = hit else {
                continue;
            };
            let ratio = ratio.max(0.0);
            let better = if ratio < t_best - EPS_RATIO {
                true
            } else if ratio > t_best + EPS_RATIO {
                false
            } else {
                match leave {
                    // Tied with the entering column's own bound flip: only a
                    // strictly smaller ratio displaces the flip.
                    None => ratio < t_best,
                    // Tie window between rows: Bland wants the smallest
                    // basic column for termination; otherwise prefer the
                    // biggest pivot for stability, then the smaller column
                    // for determinism.
                    Some((lr, labs, _)) => {
                        let lb = sim.basis[lr];
                        if bland {
                            b < lb
                        } else {
                            wi.abs() > labs + EPS_ZERO || (wi.abs() > labs - EPS_ZERO && b < lb)
                        }
                    }
                }
            };
            if better {
                t_best = t_best.min(ratio);
                leave = Some((i, wi.abs(), to_upper));
            }
        }

        if t_best.is_infinite() {
            // Phase 1 always has a blocking row for an improving direction,
            // so an unblocked ray is genuine unboundedness.
            return Err(if phase1 {
                SimplexError::IterationLimit
            } else {
                SimplexError::Unbounded
            });
        }

        match leave {
            None => {
                // Bound flip: the entering column crosses its whole span
                // without any basic variable blocking. No basis change.
                let t = own_span;
                for (i, &wi) in w.iter().enumerate() {
                    if wi != 0.0 {
                        sim.xb[i] -= sigma * t * wi;
                    }
                }
                sim.status[e] = if sigma > 0.0 {
                    VarStatus::AtUpper
                } else {
                    VarStatus::AtLower
                };
                out.bound_flips += 1;
            }
            Some((r, _, to_upper)) => {
                let t = t_best;
                let xe = sim.nb_value(e) + sigma * t;
                for (i, &wi) in w.iter().enumerate() {
                    if wi != 0.0 {
                        sim.xb[i] -= sigma * t * wi;
                    }
                }
                let lb = sim.basis[r];
                sim.status[lb] = if to_upper {
                    VarStatus::AtUpper
                } else {
                    VarStatus::AtLower
                };
                sim.pos_of[lb] = usize::MAX;
                sim.status[e] = VarStatus::Basic;
                sim.basis[r] = e;
                sim.pos_of[e] = r;
                sim.xb[r] = xe;
                sim.etas.push(Eta {
                    pos: r,
                    diag: w[r],
                    others: w
                        .iter()
                        .enumerate()
                        .filter(|&(i, &wi)| i != r && wi.abs() > EPS_ZERO)
                        .map(|(i, &wi)| (i, wi))
                        .collect(),
                });
                if phase1 {
                    out.phase1_pivots += 1;
                } else {
                    out.phase2_pivots += 1;
                }
                if sim.etas.len() - sim.base_etas >= REFACTOR_EVERY {
                    if sim.install_basis(&sim.basic_candidates()).is_err() {
                        return Err(SimplexError::IterationLimit);
                    }
                    sim.compute_xb();
                }
            }
        }
    }

    Err(SimplexError::IterationLimit)
}

fn finish(inst: &Instance, sim: Simplex<'_>, mut out: SolveOut) -> SolveOut {
    let mut x = vec![0.0; inst.n_struct];
    for (j, xv) in x.iter_mut().enumerate() {
        *xv = if sim.status[j] == VarStatus::Basic {
            sim.xb[sim.pos_of[j]]
        } else {
            sim.nb_value(j)
        };
    }
    out.objective = x.iter().zip(inst.cost.iter()).map(|(xv, c)| xv * c).sum();
    out.x = x;
    out.statuses = sim.status;
    out.refactorizations = sim.refactorizations;
    out
}
