//! The sharded, durable session store.
//!
//! # Sharding
//!
//! Keys hash (FNV-1a) onto `W` independent shards, each with its own map
//! lock and its own on-disk directory. Requests for sessions on different
//! shards never touch the same map lock, so cross-session contention is
//! bounded by the shard count rather than a single global mutex; requests
//! for the *same* session still serialize on exactly one per-session lock.
//!
//! # Durability
//!
//! With a data directory configured, every absorbed trace is appended to
//! the session's oplog *before* it is applied (write-ahead), stamped with a
//! monotonically increasing per-session operation id. After
//! `snapshot_every` logged operations the whole session state is serialized
//! to `snapshot.json` (atomic tmp-write + rename) and the log truncated.
//!
//! **Crash consistency**: the only non-atomic window is between the
//! snapshot rename and the log truncate. A crash there leaves records with
//! `op ≤ snapshot.last_op` in the log; replay skips them by op-id dedup, so
//! applying "snapshot + every log record with a greater op id" is correct
//! in every interleaving. A torn final append is discarded by CRC recovery
//! (see [`crate::framing`]). Replay is deterministic — sessions absorb
//! traces in log order and the solver orders everything by resolved
//! operation names — so a rehydrated session re-solves byte-identical to
//! the process that wrote the log.
//!
//! # Eviction
//!
//! Evicting a durable session is a *spill*: a snapshot captures its state,
//! the log is truncated, and the next request under the key transparently
//! rebuilds it. Only without a data directory does eviction lose state
//! (the pre-durability LRU behavior).
//!
//! # Concurrency protocol
//!
//! Exactly one [`Entry`] per key ever exists, and the key's on-disk files
//! are only touched under that entry's session lock:
//!
//! * A miss *reserves* the key by inserting a [`Slot::Vacant`] entry under
//!   the shard's map lock (allocation only, no I/O). The first
//!   `with_session` holder then opens — possibly rehydrates — the state
//!   under the session lock. Losing a create race therefore costs an
//!   allocation, never a second oplog handle on the same file.
//! * Eviction re-checks the victim under its shard's map lock and skips it
//!   if any worker still holds a reference (`Arc::strong_count > 1`): a
//!   live handle keeps appending to the entry it already owns, and that
//!   entry stays authoritative in the map. The spill snapshot runs *before*
//!   the `remove`, while the map lock excludes new lookups for the key, so
//!   a rehydrator can never observe the half-spilled window (new snapshot
//!   renamed, log not yet truncated) — by the time the key misses, the
//!   spill is complete and the oplog handle is closed.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use sherlock_core::{InferenceReport, RoundStats, Session, SherLockConfig};
use sherlock_obs as obs;
use sherlock_obs::json::Json;
use sherlock_trace::{json as trace_json, Trace};

use crate::keys::escape_key;
use crate::oplog::Oplog;

/// Store-wide tunables.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Live-session bound across all shards (0 = unbounded).
    pub max_sessions: usize,
    /// Independent shards (clamped to ≥ 1).
    pub shards: usize,
    /// Root directory for oplogs and snapshots; `None` keeps every session
    /// in memory only.
    pub data_dir: Option<PathBuf>,
    /// Logged operations between snapshots (0 = snapshot only on
    /// spill/persist).
    pub snapshot_every: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            max_sessions: 64,
            shards: 8,
            data_dir: None,
            snapshot_every: 256,
        }
    }
}

/// Durable bookkeeping for one live session.
struct Durable {
    dir: PathBuf,
    log: Oplog,
    /// Id the next logged operation receives.
    next_op: u64,
    /// Highest op id captured by the on-disk snapshot.
    last_snapshot_op: u64,
    /// Logged (not yet snapshotted) operations.
    ops_since_snapshot: u64,
    snapshot_every: u64,
}

/// One live session plus its optional durability state, behind the
/// per-session lock.
struct SessionState {
    session: Session,
    durable: Option<Durable>,
}

/// What the per-session lock guards: a reserved-but-unopened key, or the
/// live state.
enum Slot {
    /// The key is claimed in the shard map but no on-disk files have been
    /// touched; the first `with_session` holder opens the state.
    Vacant,
    Ready(Box<SessionState>),
}

struct Entry {
    state: Mutex<Slot>,
    touched: AtomicU64,
}

struct Shard {
    map: Mutex<HashMap<String, Arc<Entry>>>,
    dir: Option<PathBuf>,
}

/// Exclusive view of one session inside
/// [`SessionStore::with_session`]. Mutations that change durable state
/// (absorbing traces) go through the handle so they hit the oplog first;
/// everything read-only is reachable through `Deref<Target = Session>`.
pub struct SessionHandle<'a> {
    state: &'a mut SessionState,
}

impl std::ops::Deref for SessionHandle<'_> {
    type Target = Session;

    fn deref(&self) -> &Session {
        &self.state.session
    }
}

impl SessionHandle<'_> {
    /// Write-ahead logs (when durable) and absorbs one trace.
    pub fn absorb_trace(&mut self, trace: &Trace) -> RoundStats {
        self.log_traces(std::slice::from_ref(trace));
        let stats = self.state.session.absorb_trace(trace);
        self.maybe_snapshot();
        stats
    }

    /// Write-ahead logs (when durable) and absorbs a batch of traces.
    pub fn absorb_traces<'t>(&mut self, traces: impl IntoIterator<Item = &'t Trace>) -> RoundStats {
        let traces: Vec<&Trace> = traces.into_iter().collect();
        self.log_traces(traces.iter().copied());
        let stats = self.state.session.absorb_traces(traces);
        self.maybe_snapshot();
        stats
    }

    /// Solves over the session's accumulated observations (memoized; see
    /// [`Session::solve`]).
    ///
    /// # Errors
    ///
    /// Propagates [`sherlock_lp::LpError`] from the Solver.
    pub fn solve(&mut self) -> Result<&InferenceReport, sherlock_lp::LpError> {
        self.state.session.solve()
    }

    fn log_traces<'t>(&mut self, traces: impl IntoIterator<Item = &'t Trace>) {
        let Some(d) = self.state.durable.as_mut() else {
            return;
        };
        for trace in traces {
            let payload = Json::Obj(vec![
                ("op".to_string(), Json::from(d.next_op)),
                ("trace".to_string(), trace_json::to_value(trace)),
            ])
            .render();
            match d.log.append(payload.as_bytes()) {
                Ok(n) => {
                    obs::counter!("store.oplog_bytes").add(n);
                    obs::counter!("store.oplog_records").incr();
                    d.next_op += 1;
                    d.ops_since_snapshot += 1;
                }
                Err(_) => {
                    // Degrade to in-memory for this record: the session
                    // stays correct for the life of the process, the next
                    // rehydration just misses this trace.
                    obs::counter!("store.oplog_errors").incr();
                }
            }
        }
    }

    fn maybe_snapshot(&mut self) {
        let due = self
            .state
            .durable
            .as_ref()
            .is_some_and(|d| d.snapshot_every > 0 && d.ops_since_snapshot >= d.snapshot_every);
        if due {
            snapshot_locked(self.state);
        }
    }
}

/// Serializes the session to `snapshot.json` and truncates the oplog. Must
/// run under the per-session lock (it is the session lock that makes the
/// snapshot + truncate pair atomic with respect to concurrent absorbs).
fn snapshot_locked(state: &mut SessionState) {
    let Some(d) = state.durable.as_mut() else {
        return;
    };
    if d.ops_since_snapshot == 0 {
        return; // nothing new since the last snapshot
    }
    let last_op = d.next_op - 1;
    let doc = Json::Obj(vec![
        ("format".to_string(), Json::from(1u64)),
        ("last_op".to_string(), Json::from(last_op)),
        ("session".to_string(), state.session.to_snapshot_value()),
    ]);
    let result: io::Result<()> = (|| {
        let tmp = d.dir.join("snapshot.json.tmp");
        std::fs::write(&tmp, doc.render())?;
        std::fs::rename(&tmp, d.dir.join("snapshot.json"))?;
        // Crash window: snapshot renamed, log not yet truncated. Replay
        // dedups on `op ≤ last_op`, so the stale records are harmless.
        d.log.truncate()
    })();
    match result {
        Ok(()) => {
            d.last_snapshot_op = last_op;
            d.ops_since_snapshot = 0;
            obs::counter!("store.snapshots").incr();
        }
        Err(_) => obs::counter!("store.snapshot_errors").incr(),
    }
}

/// Bounded, sharded map of session key → incremental inference session,
/// with optional oplog + snapshot durability per session.
pub struct SessionStore {
    config: SherLockConfig,
    max_sessions: usize,
    snapshot_every: u64,
    shards: Vec<Shard>,
    clock: AtomicU64,
    evictions: AtomicU64,
    rehydrations: AtomicU64,
}

impl SessionStore {
    /// Creates a store. With `options.data_dir` set, shard directories are
    /// created eagerly so configuration errors surface at startup, not on
    /// the first request.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the data directory tree.
    pub fn open(config: SherLockConfig, options: StoreOptions) -> io::Result<Self> {
        let nshards = options.shards.max(1);
        let mut shards = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let dir = match &options.data_dir {
                Some(root) => {
                    let dir = root.join(format!("shard-{i:02}"));
                    std::fs::create_dir_all(&dir)?;
                    Some(dir)
                }
                None => None,
            };
            shards.push(Shard {
                map: Mutex::new(HashMap::new()),
                dir,
            });
        }
        // Register the flight-recorder series up front: the `metrics` verb
        // reports every interned series, so `store.*` is visible (at zero)
        // from the first request even before any durability event fires.
        for name in [
            "store.oplog_bytes",
            "store.oplog_records",
            "store.snapshots",
            "store.rehydrations",
            "store.replayed_records",
            "store.oplog_errors",
            "store.snapshot_errors",
            "store.sessions.created",
            "store.sessions.evicted",
        ] {
            obs::counter(name);
        }
        obs::histogram("store.replay_ms");
        Ok(SessionStore {
            config,
            max_sessions: options.max_sessions,
            snapshot_every: options.snapshot_every,
            shards,
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rehydrations: AtomicU64::new(0),
        })
    }

    /// An in-memory store (no durability) — the pre-durability constructor
    /// shape, used by tests and embedders without a data directory.
    pub fn in_memory(config: SherLockConfig, max_sessions: usize) -> Self {
        SessionStore::open(
            config,
            StoreOptions {
                max_sessions,
                data_dir: None,
                ..StoreOptions::default()
            },
        )
        .expect("in-memory store cannot fail")
    }

    /// Live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_map(s).len()).sum()
    }

    /// Whether the store holds no live sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted (spilled) over the store's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Sessions rebuilt from disk over the store's lifetime.
    pub fn rehydrations(&self) -> u64 {
        self.rehydrations.load(Ordering::Relaxed)
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sorted keys of the live sessions. Each shard's keys are collected
    /// under that shard's lock only; the merge and sort happen after every
    /// lock is released.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = Vec::new();
        for shard in &self.shards {
            let collected: Vec<String> = lock_map(shard).keys().cloned().collect();
            keys.extend(collected);
        }
        keys.sort();
        keys
    }

    fn shard_of(&self, key: &str) -> &Shard {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn touch(&self, entry: &Entry) {
        entry.touched.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Opens (possibly rehydrating) the state for `key`. Runs *without* any
    /// map lock held: rehydration replays arbitrarily many traces.
    fn open_state(&self, shard: &Shard, key: &str) -> SessionState {
        let Some(shard_dir) = &shard.dir else {
            return SessionState {
                session: Session::new(self.config.clone()),
                durable: None,
            };
        };
        let dir = shard_dir.join(escape_key(key));
        match self.load_durable(&dir) {
            Ok(state) => state,
            Err(_) => {
                // Filesystem trouble: keep serving from memory.
                obs::counter!("store.oplog_errors").incr();
                SessionState {
                    session: Session::new(self.config.clone()),
                    durable: None,
                }
            }
        }
    }

    fn load_durable(&self, dir: &Path) -> io::Result<SessionState> {
        std::fs::create_dir_all(dir)?;
        let started = Instant::now();

        let mut last_snapshot_op = 0u64;
        let mut next_op = 1u64;
        let mut session = None;
        let snap_path = dir.join("snapshot.json");
        let mut had_state = false;
        let snapshot_text = match std::fs::read_to_string(&snap_path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            // Any other error (permissions, transient EIO) means a snapshot
            // may exist that we failed to read. Propagate so the session
            // degrades to memory-only: rehydrating from the log alone while
            // staying durable would let the next snapshot overwrite the
            // good snapshot.json with the reduced state.
            Err(e) => return Err(e),
        };
        if let Some(text) = snapshot_text {
            match parse_snapshot(&self.config, &text) {
                Ok((s, last_op)) => {
                    session = Some(s);
                    last_snapshot_op = last_op;
                    next_op = last_op + 1;
                    had_state = true;
                }
                Err(_) => {
                    // A corrupt snapshot cannot be partially trusted; fall
                    // back to replaying whatever the log still holds.
                    obs::counter!("store.snapshot_errors").incr();
                }
            }
        }
        let mut session = session.unwrap_or_else(|| Session::new(self.config.clone()));

        let (log, recovered) = Oplog::open(&dir.join("oplog.bin"))?;
        let mut replayed = 0u64;
        for payload in &recovered.payloads {
            let Ok((op, trace)) = parse_record(payload) else {
                obs::counter!("store.oplog_errors").incr();
                continue;
            };
            next_op = next_op.max(op + 1);
            if op <= last_snapshot_op {
                continue; // captured by the snapshot (crash before truncate)
            }
            session.absorb_trace(&trace);
            replayed += 1;
            had_state = true;
        }

        if had_state {
            self.rehydrations.fetch_add(1, Ordering::Relaxed);
            obs::counter!("store.rehydrations").incr();
            obs::counter!("store.replayed_records").add(replayed);
            obs::histogram!("store.replay_ms")
                .observe(u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX));
        }

        Ok(SessionState {
            session,
            durable: Some(Durable {
                dir: dir.to_path_buf(),
                log,
                next_op,
                last_snapshot_op,
                ops_since_snapshot: 0,
                snapshot_every: self.snapshot_every,
            }),
        })
    }

    fn get_or_create(&self, key: &str) -> Arc<Entry> {
        let shard = self.shard_of(key);
        if let Some(entry) = lock_map(shard).get(key) {
            self.touch(entry);
            return Arc::clone(entry);
        }
        if self.max_sessions > 0 && self.len() >= self.max_sessions {
            self.evict_lru();
        }
        let mut map = lock_map(shard);
        if let Some(entry) = map.get(key) {
            // Lost a create race; the winner's entry is authoritative. No
            // on-disk files were touched, so losing is free.
            self.touch(entry);
            return Arc::clone(entry);
        }
        // Reserve the key with a vacant slot (allocation only — the map
        // lock is never held across I/O). The first `with_session` holder
        // opens the on-disk state under the entry's session lock, so only
        // one thread ever opens a given session's oplog.
        obs::counter!("store.sessions.created").incr();
        let entry = Arc::new(Entry {
            state: Mutex::new(Slot::Vacant),
            touched: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        });
        map.insert(key.to_string(), Arc::clone(&entry));
        entry
    }

    /// Evicts the globally least-recently-touched idle session. Shard locks
    /// are taken one at a time (never nested), so eviction cannot deadlock
    /// with concurrent lookups.
    fn evict_lru(&self) {
        let mut oldest: Option<(usize, String, u64)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let map = lock_map(shard);
            for (k, e) in map.iter() {
                let stamp = e.touched.load(Ordering::Relaxed);
                if oldest.as_ref().is_none_or(|(_, _, s)| stamp < *s) {
                    oldest = Some((i, k.clone(), stamp));
                }
            }
        }
        let Some((i, key, _)) = oldest else { return };
        let mut map = lock_map(&self.shards[i]);
        let Some(entry) = map.get(&key) else { return };
        // A strong count above 1 means some worker holds (or is acquiring)
        // a handle to this session. Removing it now would let a later miss
        // rehydrate from files the live handle still appends to — two
        // oplog handles on one file. Skip this round; the store runs over
        // budget by at most the number of in-flight requests.
        if Arc::strong_count(entry) > 1 {
            return;
        }
        // Spill snapshot *before* the remove, while the map lock excludes
        // lookups for this key: a rehydrator can only start once the key
        // misses, by which point snapshot + truncate are both done — it can
        // never observe the new snapshot with the untruncated log, whose
        // replay it would otherwise lose on its next snapshot. The strong
        // count of 1 guarantees the session lock is free, so `try_lock`
        // cannot fail; it is used to stay deadlock-proof regardless.
        if let Ok(mut slot) = entry.state.try_lock() {
            if let Slot::Ready(state) = &mut *slot {
                snapshot_locked(state);
            }
        }
        map.remove(&key); // drops the only Arc: the oplog handle closes here
        drop(map);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        obs::counter!("store.sessions.evicted").incr();
    }

    /// Runs `f` with exclusive access to the session stored under `key`,
    /// creating — or rehydrating from disk — if absent. No map lock is held
    /// while `f` runs, only the per-session lock, so long solves on one
    /// session never block other sessions.
    pub fn with_session<R>(&self, key: &str, f: impl FnOnce(&mut SessionHandle<'_>) -> R) -> R {
        let entry = self.get_or_create(key);
        let mut slot = entry
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if matches!(*slot, Slot::Vacant) {
            // First holder of a reserved key: open (possibly rehydrate) the
            // state. Runs under the session lock but *not* the map lock, so
            // long replays never stall the shard.
            *slot = Slot::Ready(Box::new(self.open_state(self.shard_of(key), key)));
        }
        let Slot::Ready(state) = &mut *slot else {
            unreachable!("slot initialized above")
        };
        let mut handle = SessionHandle { state };
        f(&mut handle)
    }

    /// Snapshots every live durable session (graceful-shutdown path), so a
    /// clean restart rehydrates from snapshots alone.
    pub fn persist_all(&self) {
        for shard in &self.shards {
            let entries: Vec<Arc<Entry>> = lock_map(shard).values().cloned().collect();
            for entry in entries {
                let mut slot = entry
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Slot::Ready(state) = &mut *slot {
                    snapshot_locked(state);
                }
            }
        }
    }
}

fn lock_map(shard: &Shard) -> MutexGuard<'_, HashMap<String, Arc<Entry>>> {
    // A panic while holding a map lock (never expected: the critical
    // sections are allocation-only) must not wedge the daemon.
    shard
        .map
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn parse_snapshot(config: &SherLockConfig, text: &str) -> Result<(Session, u64), String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("format").and_then(Json::as_u64) {
        Some(1) => {}
        other => return Err(format!("snapshot: unsupported format {other:?}")),
    }
    let last_op = doc
        .get("last_op")
        .and_then(Json::as_u64)
        .ok_or("snapshot: missing last_op")?;
    let session = Session::from_snapshot_value(
        config.clone(),
        doc.get("session").ok_or("snapshot: missing session")?,
    )?;
    Ok((session, last_op))
}

fn parse_record(payload: &[u8]) -> Result<(u64, Trace), String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let op = doc
        .get("op")
        .and_then(Json::as_u64)
        .ok_or("record: missing op id")?;
    let trace = trace_json::from_value(doc.get("trace").ok_or("record: missing trace")?)?;
    Ok((op, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sherlock_sim::SimConfig;

    fn sample_trace(seed: u64) -> Trace {
        let app = &sherlock_apps::all_apps()[0];
        let mut sim_cfg = SimConfig::with_seed(seed);
        sim_cfg.instrument = SherLockConfig::default().instrument.clone();
        app.tests[0].run(sim_cfg).trace
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sherlock-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sessions_are_created_on_demand_and_reused() {
        let store = SessionStore::in_memory(SherLockConfig::default(), 8);
        assert!(store.is_empty());
        let n = store.with_session("a", |s| {
            assert_eq!(s.traces_absorbed(), 0);
            41
        });
        assert_eq!(n, 41);
        assert_eq!(store.len(), 1);
        store.with_session("a", |_| ());
        assert_eq!(store.len(), 1, "same key reuses the entry");
        store.with_session("b", |_| ());
        assert_eq!(store.keys(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted_across_shards() {
        let store = SessionStore::in_memory(SherLockConfig::default(), 2);
        assert!(store.shard_count() > 1, "default options shard the map");
        store.with_session("a", |_| ());
        store.with_session("b", |_| ());
        store.with_session("a", |_| ()); // refresh a; b is now oldest
        store.with_session("c", |_| ());
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.keys(), vec!["a".to_string(), "c".to_string()]);
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let store = SessionStore::in_memory(SherLockConfig::default(), 0);
        for i in 0..32 {
            store.with_session(&format!("k{i}"), |_| ());
        }
        assert_eq!(store.len(), 32);
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn absorbed_traces_survive_a_store_restart() {
        let dir = tmp_dir("restart");
        let options = StoreOptions {
            data_dir: Some(dir.clone()),
            ..StoreOptions::default()
        };
        let traces: Vec<Trace> = (0..3).map(sample_trace).collect();

        let first = SessionStore::open(SherLockConfig::default(), options.clone()).unwrap();
        let live = first.with_session("app", |s| {
            for t in &traces {
                s.absorb_trace(t);
            }
            s.solve().unwrap().render()
        });
        drop(first); // simulate a crash: no persist_all, oplog only

        let second = SessionStore::open(SherLockConfig::default(), options).unwrap();
        let rebuilt = second.with_session("app", |s| {
            assert_eq!(s.traces_absorbed(), traces.len());
            s.solve().unwrap().render()
        });
        assert_eq!(live, rebuilt, "rehydrated session re-solves identically");
        assert_eq!(second.rehydrations(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_spills_and_rehydrates_instead_of_losing_state() {
        let dir = tmp_dir("spill");
        let options = StoreOptions {
            max_sessions: 1,
            data_dir: Some(dir.clone()),
            ..StoreOptions::default()
        };
        let store = SessionStore::open(SherLockConfig::default(), options).unwrap();
        let trace = sample_trace(11);
        store.with_session("victim", |s| {
            s.absorb_trace(&trace);
        });
        store.with_session("usurper", |_| ()); // evicts (spills) "victim"
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.keys(), vec!["usurper".to_string()]);
        store.with_session("victim", |s| {
            assert_eq!(s.traces_absorbed(), 1, "state came back from disk");
        });
        assert!(store.rehydrations() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_cadence_truncates_the_oplog() {
        let dir = tmp_dir("cadence");
        let options = StoreOptions {
            data_dir: Some(dir.clone()),
            snapshot_every: 2,
            ..StoreOptions::default()
        };
        let store = SessionStore::open(SherLockConfig::default(), options.clone()).unwrap();
        store.with_session("app", |s| {
            s.absorb_trace(&sample_trace(1));
            s.absorb_trace(&sample_trace(2)); // triggers the snapshot
            s.absorb_trace(&sample_trace(3)); // logged after the truncate
        });
        let session_dir = dir.join("shard-00").join("app");
        // The key "app" may land on any shard; find it.
        let session_dir = if session_dir.exists() {
            session_dir
        } else {
            (0..store.shard_count())
                .map(|i| dir.join(format!("shard-{i:02}")).join("app"))
                .find(|p| p.exists())
                .expect("session directory exists")
        };
        assert!(session_dir.join("snapshot.json").exists());
        let log_len = std::fs::metadata(session_dir.join("oplog.bin"))
            .unwrap()
            .len();
        let (_, recovered) = Oplog::open(&session_dir.join("oplog.bin")).unwrap();
        assert!(
            log_len > 0 && recovered.payloads.len() == 1,
            "one post-snapshot record"
        );

        drop(store);
        let store = SessionStore::open(SherLockConfig::default(), options).unwrap();
        store.with_session("app", |s| {
            assert_eq!(s.traces_absorbed(), 3, "snapshot + replayed tail");
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_all_snapshots_every_session() {
        let dir = tmp_dir("persist");
        let options = StoreOptions {
            data_dir: Some(dir.clone()),
            ..StoreOptions::default()
        };
        let store = SessionStore::open(SherLockConfig::default(), options.clone()).unwrap();
        store.with_session("a", |s| {
            s.absorb_trace(&sample_trace(5));
        });
        store.with_session("b", |s| {
            s.absorb_trace(&sample_trace(6));
        });
        store.persist_all();
        for key in ["a", "b"] {
            let session_dir = (0..store.shard_count())
                .map(|i| dir.join(format!("shard-{i:02}")).join(key))
                .find(|p| p.exists())
                .expect("session directory exists");
            assert!(
                session_dir.join("snapshot.json").exists(),
                "{key} snapshotted"
            );
            assert_eq!(
                std::fs::metadata(session_dir.join("oplog.bin"))
                    .unwrap()
                    .len(),
                0,
                "{key} oplog truncated"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_use_sessions_are_not_evicted() {
        let store = SessionStore::in_memory(SherLockConfig::default(), 1);
        store.with_session("held", |_| {
            // "held" has a live handle, so the miss for "other" must not
            // evict it out from under us.
            store.with_session("other", |_| ());
        });
        assert_eq!(store.evictions(), 0);
        assert_eq!(store.len(), 2, "over budget beats evicting a held session");
        store.with_session("third", |_| ());
        assert_eq!(store.evictions(), 1, "idle sessions evict normally");
    }

    #[test]
    fn concurrent_absorbs_under_eviction_pressure_lose_nothing() {
        // Regression for the spill/rehydrate race: with max_sessions far
        // below the live key count and a snapshot after every op, sessions
        // continually spill and rehydrate while other threads absorb. Every
        // logged op must survive to a fresh store.
        const THREADS: usize = 4;
        const KEYS: usize = 6;
        const ITERS: usize = 24;
        let dir = tmp_dir("race");
        let options = StoreOptions {
            max_sessions: 2,
            snapshot_every: 1,
            data_dir: Some(dir.clone()),
            ..StoreOptions::default()
        };
        let trace = sample_trace(42);
        let store = SessionStore::open(SherLockConfig::default(), options.clone()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..ITERS {
                        store.with_session(&format!("k{}", i % KEYS), |s| {
                            s.absorb_trace(&trace);
                        });
                    }
                });
            }
        });
        drop(store);

        let reopened = SessionStore::open(SherLockConfig::default(), options).unwrap();
        for k in 0..KEYS {
            reopened.with_session(&format!("k{k}"), |s| {
                assert_eq!(
                    s.traces_absorbed(),
                    THREADS * ITERS / KEYS,
                    "k{k} lost absorbed traces across spill/rehydrate"
                );
            });
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_snapshot_degrades_to_memory_only() {
        let dir = tmp_dir("unreadable");
        let options = StoreOptions {
            data_dir: Some(dir.clone()),
            ..StoreOptions::default()
        };
        let store = SessionStore::open(SherLockConfig::default(), options.clone()).unwrap();
        store.with_session("app", |s| {
            s.absorb_trace(&sample_trace(7));
        });
        store.persist_all();
        drop(store);
        let session_dir = (0..StoreOptions::default().shards)
            .map(|i| dir.join(format!("shard-{i:02}")).join("app"))
            .find(|p| p.exists())
            .expect("session directory exists");
        // Make snapshot.json readable-as-a-path but unreadable-as-a-file
        // (EISDIR), standing in for EACCES/EIO: the snapshot may hold good
        // state we just cannot see right now.
        let snap = session_dir.join("snapshot.json");
        std::fs::remove_file(&snap).unwrap();
        std::fs::create_dir(&snap).unwrap();

        let store = SessionStore::open(SherLockConfig::default(), options).unwrap();
        store.with_session("app", |s| {
            assert_eq!(s.traces_absorbed(), 0, "degraded, not wedged");
            s.absorb_trace(&sample_trace(8));
        });
        store.persist_all();
        // Memory-only degradation must leave the on-disk state untouched —
        // a transient read error must never become permanent data loss by
        // overwriting the (possibly good) snapshot with reduced state.
        assert!(snap.is_dir(), "snapshot path not overwritten");
        assert_eq!(store.rehydrations(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_degrades_to_log_replay() {
        let dir = tmp_dir("corrupt");
        let options = StoreOptions {
            data_dir: Some(dir.clone()),
            ..StoreOptions::default()
        };
        let store = SessionStore::open(SherLockConfig::default(), options.clone()).unwrap();
        store.with_session("app", |s| {
            s.absorb_trace(&sample_trace(9));
        });
        store.persist_all(); // state now lives in the snapshot only
        drop(store);
        let session_dir = (0..StoreOptions::default().shards)
            .map(|i| dir.join(format!("shard-{i:02}")).join("app"))
            .find(|p| p.exists())
            .expect("session directory exists");
        std::fs::write(session_dir.join("snapshot.json"), "{ not json").unwrap();

        let store = SessionStore::open(SherLockConfig::default(), options).unwrap();
        store.with_session("app", |s| {
            // The snapshot was trash and the log was truncated by the
            // snapshot, so the session starts empty — degraded, not wedged.
            assert_eq!(s.traces_absorbed(), 0);
            s.absorb_trace(&sample_trace(10));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
