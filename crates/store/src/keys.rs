//! Filesystem-safe encoding of session keys.
//!
//! Session keys become on-disk directory names, so the store never trusts
//! them raw: every byte outside `[A-Za-z0-9_-]` is percent-encoded
//! (including `.`, which removes any possibility of `.`/`..` path
//! components, and `%` itself, which makes the encoding injective). The
//! protocol layer additionally *rejects* hostile keys with a structured
//! error before they reach the store; this escape is defense in depth for
//! embedders driving the store directly.

/// Escapes `key` into a string safe to use as a single directory name.
/// Injective: distinct keys never collide after escaping.
pub fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for b in key.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_keys_pass_through() {
        assert_eq!(escape_key("default"), "default");
        assert_eq!(escape_key("App-1_session9"), "App-1_session9");
    }

    #[test]
    fn hostile_bytes_are_escaped() {
        assert_eq!(escape_key("../etc"), "%2E%2E%2Fetc");
        assert_eq!(escape_key("a/b\\c"), "a%2Fb%5Cc");
        assert_eq!(escape_key("dot.dot"), "dot%2Edot");
        assert_eq!(escape_key("per%cent"), "per%25cent");
        assert_eq!(escape_key("nul\0tab\t"), "nul%00tab%09");
        assert_eq!(escape_key(""), "%00");
    }

    #[test]
    fn escaping_is_injective_on_tricky_pairs() {
        // `%2F` as literal text must not collide with an escaped `/`.
        assert_ne!(escape_key("%2F"), escape_key("/"));
        assert_ne!(escape_key("a.b"), escape_key("a%2Eb"));
    }
}
