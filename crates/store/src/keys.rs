//! Filesystem-safe encoding of session keys.
//!
//! Session keys become on-disk directory names, so the store never trusts
//! them raw: every byte outside `[A-Za-z0-9_-]` is percent-encoded
//! (including `.`, which removes any possibility of `.`/`..` path
//! components, and `%` itself, which makes the encoding injective). The
//! protocol layer additionally *rejects* hostile keys with a structured
//! error before they reach the store; this escape is defense in depth for
//! embedders driving the store directly.
//!
//! Escaping can triple a key's length (every byte → `%XX`), and Linux
//! caps a single directory name at `NAME_MAX` = 255 bytes. Names that
//! would exceed [`MAX_ESCAPED_LEN`] are therefore truncated and suffixed
//! with `~` plus the FNV-1a hash of the *full* raw key. Short names never
//! contain `~` (it escapes to `%7E`), so the two forms cannot collide;
//! two over-long keys collide only if they share the truncated prefix
//! *and* a 64-bit hash — negligible next to the protocol's 128-byte key
//! cap.

/// Longest escaped directory name [`escape_key`] produces. Well below
/// Linux `NAME_MAX` (255) so every accepted key yields a legal name on
/// any common filesystem.
pub const MAX_ESCAPED_LEN: usize = 200;

/// `~` + 16 hex digits of FNV-1a over the full key.
const HASH_SUFFIX_LEN: usize = 17;

/// Escapes `key` into a string safe to use as a single directory name,
/// at most [`MAX_ESCAPED_LEN`] bytes long. Injective for any key whose
/// escaped form fits the bound (over-long keys are disambiguated by a
/// 64-bit hash of the whole key — see the module docs).
pub fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for b in key.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    if out.is_empty() {
        out.push_str("%00");
    }
    if out.len() > MAX_ESCAPED_LEN {
        out.truncate(MAX_ESCAPED_LEN - HASH_SUFFIX_LEN);
        out.push('~');
        out.push_str(&format!("{:016x}", fnv1a(key.as_bytes())));
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_keys_pass_through() {
        assert_eq!(escape_key("default"), "default");
        assert_eq!(escape_key("App-1_session9"), "App-1_session9");
    }

    #[test]
    fn hostile_bytes_are_escaped() {
        assert_eq!(escape_key("../etc"), "%2E%2E%2Fetc");
        assert_eq!(escape_key("a/b\\c"), "a%2Fb%5Cc");
        assert_eq!(escape_key("dot.dot"), "dot%2Edot");
        assert_eq!(escape_key("per%cent"), "per%25cent");
        assert_eq!(escape_key("nul\0tab\t"), "nul%00tab%09");
        assert_eq!(escape_key(""), "%00");
    }

    #[test]
    fn escaping_is_injective_on_tricky_pairs() {
        // `%2F` as literal text must not collide with an escaped `/`.
        assert_ne!(escape_key("%2F"), escape_key("/"));
        assert_ne!(escape_key("a.b"), escape_key("a%2Eb"));
    }

    #[test]
    fn escaped_names_never_exceed_name_max() {
        // The protocol's worst case: a max-length key of bytes that all
        // escape 1→3, which unbounded would be 384 bytes > NAME_MAX.
        let worst = "/".repeat(128);
        let name = escape_key(&worst);
        assert_eq!(name.len(), MAX_ESCAPED_LEN);
        assert!(name.len() < 255, "fits Linux NAME_MAX");
        // And far beyond the protocol cap, for direct embedders.
        assert_eq!(escape_key(&"é".repeat(4096)).len(), MAX_ESCAPED_LEN);
    }

    #[test]
    fn long_keys_stay_distinct_and_stable() {
        let a = "/".repeat(127) + "a";
        let b = "/".repeat(127) + "b";
        assert_ne!(escape_key(&a), escape_key(&b), "hash suffix disambiguates");
        assert_eq!(escape_key(&a), escape_key(&a), "deterministic");
        // Truncated names end in `~hash`; short names cannot contain `~`.
        assert!(escape_key(&a).contains('~'));
        assert_eq!(escape_key("~"), "%7E");
    }
}
