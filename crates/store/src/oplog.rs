//! The per-session append-only oplog file.
//!
//! One oplog holds the session's absorbed traces since its last snapshot,
//! one framed record per absorb (see [`crate::framing`]). Appends are
//! write-then-flush — the daemon survives `kill -9` because the page cache
//! holds flushed bytes even if the process never returns; an `fsync` per
//! record would also survive power loss but costs ~1ms per absorb, and the
//! session tier's contract is process-crash durability (the paper's
//! accumulated constraints are an optimization, so the failure mode of a
//! lost final record is a re-explored schedule, not corruption).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::framing::{encode_record, recover, Recovered};

/// An open, recovered oplog positioned for appends.
pub struct Oplog {
    file: File,
    path: PathBuf,
    len: u64,
}

impl Oplog {
    /// Opens `path` (creating it if absent), scans it for the longest valid
    /// record prefix, truncates any torn tail, and returns the log handle
    /// plus the recovered payloads in append order.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a *corrupt* log is not an error (the
    /// valid prefix is recovered and the tail discarded).
    pub fn open(path: &Path) -> io::Result<(Oplog, Recovered)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let recovered = recover(&bytes);
        if recovered.torn {
            file.set_len(recovered.valid_len)?;
        }
        file.seek(SeekFrom::Start(recovered.valid_len))?;
        let len = recovered.valid_len;
        Ok((
            Oplog {
                file,
                path: path.to_path_buf(),
                len,
            },
            recovered,
        ))
    }

    /// Appends one framed record and flushes it; returns the bytes written
    /// (frame overhead included).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the in-memory length is only advanced
    /// on success, so a failed append leaves the next one positioned over
    /// the partial frame (which recovery would discard anyway).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let frame = encode_record(payload);
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Drops every record (after a snapshot has captured their effects).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }

    /// Current valid byte length.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file path (diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sherlock-oplog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn append_reopen_recovers_in_order() {
        let dir = tmp_dir("order");
        let path = dir.join("oplog.bin");
        {
            let (mut log, r) = Oplog::open(&path).unwrap();
            assert!(r.payloads.is_empty());
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
        }
        let (log, r) = Oplog::open(&path).unwrap();
        assert_eq!(r.payloads, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!r.torn);
        assert!(!log.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let path = dir.join("oplog.bin");
        let keep = {
            let (mut log, _) = Oplog::open(&path).unwrap();
            log.append(b"keep").unwrap();
            log.append(b"torn").unwrap();
            log.len()
        };
        // Chop mid-way through the second record.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep - 2).unwrap();
        drop(f);
        let (log, r) = Oplog::open(&path).unwrap();
        assert_eq!(r.payloads, vec![b"keep".to_vec()]);
        assert!(r.torn);
        assert_eq!(log.len(), std::fs::metadata(&path).unwrap().len());
        // The next append lands cleanly after the recovered prefix.
        let mut log = log;
        log.append(b"after").unwrap();
        let (_, r) = Oplog::open(&path).unwrap();
        assert_eq!(r.payloads, vec![b"keep".to_vec(), b"after".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_empties_the_log() {
        let dir = tmp_dir("trunc");
        let path = dir.join("oplog.bin");
        let (mut log, _) = Oplog::open(&path).unwrap();
        log.append(b"gone").unwrap();
        log.truncate().unwrap();
        assert!(log.is_empty());
        log.append(b"fresh").unwrap();
        let (_, r) = Oplog::open(&path).unwrap();
        assert_eq!(r.payloads, vec![b"fresh".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
