//! Durable sharded session tier for SherLock's long-running services.
//!
//! The paper's inference quality comes from *accumulating* observation
//! windows across many explored schedules, which makes session state the
//! most valuable thing a `sherlock-serve` daemon holds — and, before this
//! crate, the most fragile: a restart or an LRU eviction silently threw it
//! away and clients started over from zero constraints.
//!
//! This crate makes session state durable and bounded-memory at once:
//!
//! * [`framing`] — length-prefixed, CRC-guarded record framing that
//!   tolerates torn tails (a writer killed mid-append never corrupts the
//!   prefix).
//! * [`oplog`] — the per-session append-only log of absorbed traces,
//!   recovered on open.
//! * [`keys`] — injective filesystem-safe escaping of session keys.
//! * [`store`] — the sharded [`SessionStore`]: write-ahead logging,
//!   periodic snapshots, rehydrate-on-miss, and spill-to-disk eviction.
//!
//! Rehydration is *exact*: a session rebuilt from snapshot + log replay
//! re-solves byte-identical to the never-evicted original, because every
//! ordering the solver feeds the LP is derived from resolved operation
//! names rather than process-local intern ids (see
//! `sherlock_core::solver`).

pub mod framing;
pub mod keys;
pub mod oplog;
pub mod store;

pub use keys::escape_key;
pub use oplog::Oplog;
pub use store::{SessionHandle, SessionStore, StoreOptions};
