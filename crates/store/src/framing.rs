//! Length-prefixed, CRC-guarded record framing for the oplog.
//!
//! Every record is `[u32 len][u32 crc32][payload]` (both integers
//! little-endian, CRC-32/IEEE over the payload bytes). The frame makes the
//! log *torn-tail tolerant*: a writer killed mid-append leaves a short or
//! corrupt final frame, and recovery simply stops at the first frame that
//! fails its length or checksum and truncates the file back to the end of
//! the last valid record. Nothing before the tear is ever at risk — records
//! are append-only and never rewritten in place.

/// Upper bound on a single record payload; a length prefix beyond this is
/// treated as corruption rather than an allocation request. Generous: the
/// largest payloads are serialized traces, a few hundred KiB at most.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of framing overhead per record (length + checksum prefix).
pub const FRAME_OVERHEAD: usize = 8;

/// CRC-32/IEEE (the zlib/PNG polynomial), bitwise-reflected, table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames one payload: `[len][crc][payload]`.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("record payload fits in u32");
    assert!(
        len <= MAX_RECORD_LEN,
        "record payload exceeds MAX_RECORD_LEN"
    );
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a log image for valid records.
pub struct Recovered {
    /// Payloads of every record in the longest valid prefix, in log order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of that prefix — the offset recovery truncates to.
    pub valid_len: u64,
    /// Whether trailing bytes past `valid_len` were discarded (a torn or
    /// corrupt tail).
    pub torn: bool,
}

/// Scans `bytes` from the start, decoding frames until the first short,
/// oversized, or checksum-failing one. Never panics on arbitrary input.
pub fn recover(bytes: &[u8]) -> Recovered {
    let mut payloads = Vec::new();
    let mut off = 0usize;
    while let Some(header) = bytes.get(off..off + FRAME_OVERHEAD) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as u64 > u64::from(MAX_RECORD_LEN) {
            break;
        }
        let Some(payload) = bytes.get(off + FRAME_OVERHEAD..off + FRAME_OVERHEAD + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        off += FRAME_OVERHEAD + len;
    }
    Recovered {
        payloads,
        valid_len: off as u64,
        torn: off < bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_then_recover_round_trips() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(b"first"));
        log.extend_from_slice(&encode_record(b""));
        log.extend_from_slice(&encode_record(b"third record"));
        let r = recover(&log);
        assert_eq!(
            r.payloads,
            vec![b"first".to_vec(), vec![], b"third record".to_vec()]
        );
        assert_eq!(r.valid_len, log.len() as u64);
        assert!(!r.torn);
    }

    #[test]
    fn truncation_at_every_offset_recovers_prefix() {
        let mut log = Vec::new();
        let first = encode_record(b"keep me");
        log.extend_from_slice(&first);
        log.extend_from_slice(&encode_record(b"the torn one"));
        for cut in first.len()..log.len() {
            let r = recover(&log[..cut]);
            assert_eq!(r.payloads.len(), 1, "cut at {cut}");
            assert_eq!(r.payloads[0], b"keep me");
            assert_eq!(r.valid_len, first.len() as u64);
            assert_eq!(r.torn, cut > first.len());
        }
    }

    #[test]
    fn corrupt_crc_and_absurd_length_stop_recovery() {
        let mut log = encode_record(b"ok");
        let mut bad = encode_record(b"flipped");
        let n = bad.len();
        bad[n - 1] ^= 0x01; // flip a payload bit: CRC mismatch
        log.extend_from_slice(&bad);
        let r = recover(&log);
        assert_eq!(r.payloads, vec![b"ok".to_vec()]);
        assert!(r.torn);

        let mut huge = vec![0xFFu8; 12]; // length prefix of ~4 GiB
        huge[4..8].copy_from_slice(&[0; 4]);
        let r = recover(&huge);
        assert!(r.payloads.is_empty());
        assert_eq!(r.valid_len, 0);
    }
}
