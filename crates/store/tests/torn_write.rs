//! Torn-write recovery property: chop a real session's oplog at **every**
//! byte offset inside its final record (header and payload alike) and the
//! store must rehydrate the longest valid prefix of traces — never panic,
//! never lose an earlier record, never resurrect the torn one — and keep
//! accepting appends cleanly afterwards.

use std::path::{Path, PathBuf};

use sherlock_core::SherLockConfig;
use sherlock_sim::SimConfig;
use sherlock_store::framing::FRAME_OVERHEAD;
use sherlock_store::{SessionStore, StoreOptions};
use sherlock_trace::Trace;

fn sample_trace(seed: u64) -> Trace {
    let app = &sherlock_apps::all_apps()[0];
    let mut sim = SimConfig::with_seed(seed);
    sim.instrument = SherLockConfig::default().instrument.clone();
    app.tests[0].run(sim).trace
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sherlock-torn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(dir: &Path) -> StoreOptions {
    StoreOptions {
        data_dir: Some(dir.to_path_buf()),
        // No cadence snapshots: the whole session state lives in the oplog,
        // so the test controls exactly which bytes recovery sees.
        snapshot_every: 0,
        ..StoreOptions::default()
    }
}

fn session_oplog(dir: &Path, shards: usize, key: &str) -> PathBuf {
    (0..shards)
        .map(|i| {
            dir.join(format!("shard-{i:02}"))
                .join(key)
                .join("oplog.bin")
        })
        .find(|p| p.exists())
        .expect("session oplog exists")
}

#[test]
fn truncation_at_every_offset_of_the_final_record_recovers_the_prefix() {
    let dir = tmp_dir("every-offset");
    let traces: Vec<Trace> = (0..3).map(sample_trace).collect();

    let store = SessionStore::open(SherLockConfig::default(), options(&dir)).unwrap();
    store.with_session("app", |s| {
        for t in &traces {
            s.absorb_trace(t);
        }
    });
    let shards = store.shard_count();
    drop(store);

    let log_path = session_oplog(&dir, shards, "app");
    let full = std::fs::read(&log_path).unwrap();

    // Locate the final record's frame by decoding lengths from the front.
    let mut off = 0usize;
    let mut last_start = 0usize;
    while off < full.len() {
        last_start = off;
        let len =
            u32::from_le_bytes(full[off..off + 4].try_into().unwrap()) as usize + FRAME_OVERHEAD;
        off += len;
    }
    assert_eq!(off, full.len(), "log is exactly the appended frames");

    // Every cut inside the final record — from its first header byte up to
    // one short of intact — must rehydrate exactly the first two traces.
    for cut in last_start..full.len() {
        std::fs::write(&log_path, &full[..cut]).unwrap();
        let store = SessionStore::open(SherLockConfig::default(), options(&dir)).unwrap();
        store.with_session("app", |s| {
            assert_eq!(
                s.traces_absorbed(),
                traces.len() - 1,
                "cut at byte {cut}: wrong prefix recovered"
            );
        });
        drop(store);
        // Recovery truncated the tear on open; the reopened session above
        // also re-appended nothing, so the file is back to the valid prefix.
        assert_eq!(
            std::fs::metadata(&log_path).unwrap().len(),
            last_start as u64,
            "cut at byte {cut}: torn tail not truncated"
        );
    }

    // After the last recovery, appends must land cleanly on the prefix and
    // survive a further reopen alongside it.
    let store = SessionStore::open(SherLockConfig::default(), options(&dir)).unwrap();
    store.with_session("app", |s| {
        s.absorb_trace(&traces[2]);
    });
    drop(store);
    let store = SessionStore::open(SherLockConfig::default(), options(&dir)).unwrap();
    store.with_session("app", |s| {
        assert_eq!(s.traces_absorbed(), traces.len());
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_log_bytes_never_panic_rehydration() {
    let dir = tmp_dir("garbage");
    let store = SessionStore::open(SherLockConfig::default(), options(&dir)).unwrap();
    store.with_session("app", |s| {
        s.absorb_trace(&sample_trace(7));
    });
    let shards = store.shard_count();
    drop(store);

    let log_path = session_oplog(&dir, shards, "app");
    let valid = std::fs::read(&log_path).unwrap();
    // A deterministic spread of hostile images: pure noise, a valid record
    // followed by noise, and a bit-flipped valid record.
    let mut noise = Vec::new();
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    for _ in 0..valid.len() + 64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        noise.push((x >> 33) as u8);
    }
    let mut flipped = valid.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let images: Vec<Vec<u8>> = vec![noise.clone(), [valid.clone(), noise].concat(), flipped];
    for (i, image) in images.iter().enumerate() {
        std::fs::write(&log_path, image).unwrap();
        let store = SessionStore::open(SherLockConfig::default(), options(&dir)).unwrap();
        store.with_session("app", |s| {
            assert!(
                s.traces_absorbed() <= 1,
                "image {i}: recovered more traces than were ever written"
            );
        });
        drop(store);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
