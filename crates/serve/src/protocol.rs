//! The `sherlock-serve` wire protocol: line-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every request produces
//! exactly one response line, delivered in request order per connection
//! (the server reassembles out-of-order worker completions). Shared
//! request fields:
//!
//! ```json
//! {"id": 7, "type": "absorb_trace", "session": "App-3",
//!  "deadline_ms": 2000, ...}
//! ```
//!
//! * `id` — echoed verbatim in the response (any JSON value; `null` when
//!   omitted). Clients use it to correlate.
//! * `type` — one of `absorb_trace`, `solve`, `race_check`, `explore`,
//!   `stats`, `metrics`, `ping`, `shutdown`.
//! * `session` — the session-store key (accumulated observations live per
//!   key); defaults to `"default"`. Ignored by
//!   `stats`/`metrics`/`shutdown`.
//! * `deadline_ms` — optional queueing deadline: if the request waits
//!   longer than this before a worker picks it up, it fails with
//!   `"deadline exceeded"` instead of running.
//!
//! Responses are `{"id": ..., "ok": true, "type": ..., ...}` on success and
//! `{"id": ..., "ok": false, "error": "..."}` on failure. Backpressure is
//! explicit: when the server's bounded queue is full the response is
//! `{"id": ..., "ok": false, "error": "busy", "busy": true}` and the client
//! should retry. A malformed line yields a structured error response with
//! `"id": null` — it never kills the connection.

use sherlock_obs::json::Json;
use sherlock_trace::{json as trace_json, Trace};

/// The per-type payload of a request.
#[derive(Debug)]
pub enum RequestBody {
    /// Feed one trace into the session's observations.
    AbsorbTrace {
        /// The trace, in the `sherlock observe` file shape.
        trace: Trace,
    },
    /// Solve over the session's accumulated observations (memoized).
    Solve,
    /// FastTrack race detection over `trace` under the session's last
    /// solved spec; with `app` set, differential against that app's
    /// ground-truth spec.
    RaceCheck {
        /// The trace to check.
        trace: Trace,
        /// Optional bundled-app id (`App-1`..`App-8`) for differential mode.
        app: Option<String>,
    },
    /// Server-wide statistics.
    Stats,
    /// Live introspection: a full metric snapshot (global + per-session
    /// counters, histogram quantiles, worker-pool queue depths).
    Metrics,
    /// Run a novelty-guided schedule campaign server-side against a bundled
    /// app's workload (see `sherlock_sim::campaign`); optionally absorb the
    /// distinct discovered traces into the session and stream per-batch
    /// progress frames (`"progress": true` lines carrying the request id)
    /// before the final response.
    Explore {
        /// Bundled-app id (`App-1`..`App-8`) or name.
        app: String,
        /// Optional unit-test name within the app; omitted means one
        /// schedule runs the app's whole test suite sequentially.
        test: Option<String>,
        /// Total schedules to run.
        max_schedules: u64,
        /// Campaign base seed (run `r` uses `seed + r`).
        seed: u64,
        /// Campaign worker threads (server-side; default 1).
        jobs: usize,
        /// Runs per bandit batch.
        batch: u64,
        /// log2 of dedup-filter bits; omitted auto-sizes from
        /// `max_schedules`.
        filter_bits: Option<u32>,
        /// Stream per-batch progress frames.
        progress: bool,
        /// Absorb distinct traces into the session after the campaign.
        absorb: bool,
    },
    /// Liveness check; `delay_ms` occupies a worker for that long (load
    /// tests use it to saturate the pool deterministically).
    Ping {
        /// Worker busy-time in milliseconds.
        delay_ms: u64,
    },
    /// Begin graceful drain: stop accepting work, finish the queue, exit.
    Shutdown,
}

impl RequestBody {
    /// The wire name of this request type.
    pub fn type_name(&self) -> &'static str {
        match self {
            RequestBody::AbsorbTrace { .. } => "absorb_trace",
            RequestBody::Solve => "solve",
            RequestBody::RaceCheck { .. } => "race_check",
            RequestBody::Explore { .. } => "explore",
            RequestBody::Stats => "stats",
            RequestBody::Metrics => "metrics",
            RequestBody::Ping { .. } => "ping",
            RequestBody::Shutdown => "shutdown",
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Client correlation id, echoed verbatim.
    pub id: Json,
    /// Session-store key.
    pub session: String,
    /// Optional queueing deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// The typed payload.
    pub body: RequestBody,
}

/// Session key used when a request omits `session`.
pub const DEFAULT_SESSION: &str = "default";

/// Longest accepted session key, in bytes. Keys become metric labels and
/// (with a data directory) on-disk names; unbounded keys would let one
/// client bloat both.
pub const MAX_SESSION_KEY_LEN: usize = 128;

/// Validates a client-supplied session key before it reaches the store.
///
/// The durable store escapes keys into filesystem-safe names on its own
/// (defense in depth), but hostile keys are rejected at the protocol edge
/// with a structured error so a confused client learns immediately instead
/// of silently writing under a mangled name: no path separators, no `..`,
/// no control bytes, bounded length.
///
/// # Errors
///
/// Returns a human-readable message naming the first violation.
pub fn validate_session_key(key: &str) -> Result<(), String> {
    if key.is_empty() {
        return Err("\"session\" must be a non-empty string".into());
    }
    if key.len() > MAX_SESSION_KEY_LEN {
        return Err(format!("\"session\" exceeds {MAX_SESSION_KEY_LEN} bytes"));
    }
    if key.contains('/') || key.contains('\\') {
        return Err("\"session\" must not contain path separators".into());
    }
    if key.contains("..") {
        return Err("\"session\" must not contain \"..\"".into());
    }
    if key.chars().any(|c| c.is_control()) {
        return Err("\"session\" must not contain control characters".into());
    }
    Ok(())
}

/// Parses one protocol line.
///
/// # Errors
///
/// Returns a human-readable message naming the first syntax or schema
/// violation; the server turns it into a structured error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if doc.as_object().is_none() {
        return Err("request must be a JSON object".into());
    }
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let session = match doc.get("session") {
        None => DEFAULT_SESSION.to_string(),
        Some(Json::Str(s)) => {
            validate_session_key(s).inspect_err(|_| {
                sherlock_obs::counter!("serve.bad_session_key").incr();
            })?;
            s.clone()
        }
        Some(_) => return Err("\"session\" must be a non-empty string".into()),
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("\"deadline_ms\" must be a nonnegative integer")?,
        ),
    };
    let typ = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing string \"type\"")?;
    let trace_field = || {
        let v = doc.get("trace").ok_or("missing \"trace\" object")?;
        trace_json::from_value(v).map_err(|e| format!("bad trace: {e}"))
    };
    let body = match typ {
        "absorb_trace" => RequestBody::AbsorbTrace {
            trace: trace_field()?,
        },
        "solve" => RequestBody::Solve,
        "race_check" => RequestBody::RaceCheck {
            trace: trace_field()?,
            app: match doc.get("app") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err("\"app\" must be a string".into()),
            },
        },
        "explore" => {
            let opt_u64 = |key: &str, default: u64| -> Result<u64, String> {
                match doc.get(key) {
                    None | Some(Json::Null) => Ok(default),
                    Some(v) => v
                        .as_u64()
                        .ok_or_else(|| format!("{key:?} must be a nonnegative integer")),
                }
            };
            let opt_bool = |key: &str, default: bool| -> Result<bool, String> {
                match doc.get(key) {
                    None | Some(Json::Null) => Ok(default),
                    Some(Json::Bool(b)) => Ok(*b),
                    Some(_) => Err(format!("{key:?} must be a boolean")),
                }
            };
            RequestBody::Explore {
                app: doc
                    .get("app")
                    .and_then(Json::as_str)
                    .ok_or("missing string \"app\"")?
                    .to_string(),
                test: match doc.get("test") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(s.clone()),
                    Some(_) => return Err("\"test\" must be a string".into()),
                },
                max_schedules: opt_u64("max_schedules", 1024)?,
                seed: opt_u64("seed", 0)?,
                jobs: opt_u64("jobs", 1)? as usize,
                batch: opt_u64("batch", 64)?,
                filter_bits: match doc.get("filter_bits") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or("\"filter_bits\" must be a nonnegative integer")?
                            as u32,
                    ),
                },
                progress: opt_bool("progress", false)?,
                absorb: opt_bool("absorb", true)?,
            }
        }
        "stats" => RequestBody::Stats,
        "metrics" => RequestBody::Metrics,
        "ping" => RequestBody::Ping {
            delay_ms: match doc.get("delay_ms") {
                None => 0,
                Some(v) => v.as_u64().ok_or("\"delay_ms\" must be an integer")?,
            },
        },
        "shutdown" => RequestBody::Shutdown,
        other => return Err(format!("unknown request type {other:?}")),
    };
    Ok(Request {
        id,
        session,
        deadline_ms,
        body,
    })
}

/// Builds a success response line (no trailing newline).
pub fn ok_response(id: &Json, typ: &str, mut fields: Vec<(String, Json)>) -> String {
    let mut members = vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(true)),
        ("type".to_string(), Json::from(typ)),
    ];
    members.append(&mut fields);
    Json::Obj(members).render()
}

/// Builds an incremental progress frame (no trailing newline): shaped like
/// a success response but carrying `"progress": true`, so clients that read
/// line-by-line can tell it apart from the request's final response. Frames
/// are written directly to the connection as they happen — they bypass the
/// per-connection response-ordering buffer, so a pipelined client may see
/// frames for one request interleaved between other requests' responses
/// (each frame is still one complete line carrying its request's id).
pub fn progress_frame(id: &Json, typ: &str, mut fields: Vec<(String, Json)>) -> String {
    let mut members = vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(true)),
        ("type".to_string(), Json::from(typ)),
        ("progress".to_string(), Json::Bool(true)),
    ];
    members.append(&mut fields);
    Json::Obj(members).render()
}

/// Builds a failure response line (no trailing newline).
pub fn error_response(id: &Json, error: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::from(error)),
    ])
    .render()
}

/// Builds the explicit-backpressure response line (no trailing newline).
pub fn busy_response(id: &Json) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::from("busy")),
        ("busy".to_string(), Json::Bool(true)),
    ])
    .render()
}

/// Client-side view of one response line.
#[derive(Clone, Debug)]
pub struct ParsedResponse {
    /// The echoed correlation id.
    pub id: Json,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Explicit-backpressure marker (`error == "busy"`).
    pub busy: bool,
    /// Incremental progress frame (not the request's final response).
    pub progress: bool,
    /// Error message when `ok` is false.
    pub error: Option<String>,
    /// The full response document.
    pub doc: Json,
}

/// Parses one response line (the client half of the protocol; the load
/// generator and tests use this).
///
/// # Errors
///
/// Returns a message when the line is not a JSON object with a boolean
/// `ok`.
pub fn parse_response(line: &str) -> Result<ParsedResponse, String> {
    let doc = Json::parse(line).map_err(|e| format!("malformed response: {e}"))?;
    let ok = match doc.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("response missing boolean \"ok\"".into()),
    };
    Ok(ParsedResponse {
        id: doc.get("id").cloned().unwrap_or(Json::Null),
        ok,
        busy: matches!(doc.get("busy"), Some(Json::Bool(true))),
        progress: matches!(doc.get("progress"), Some(Json::Bool(true))),
        error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        doc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_requests() {
        let r = parse_request(r#"{"type":"solve"}"#).unwrap();
        assert_eq!(r.session, DEFAULT_SESSION);
        assert_eq!(r.id, Json::Null);
        assert!(matches!(r.body, RequestBody::Solve));

        let r = parse_request(r#"{"id":3,"type":"ping","session":"s1","deadline_ms":50}"#).unwrap();
        assert_eq!(r.id, Json::Num(3.0));
        assert_eq!(r.session, "s1");
        assert_eq!(r.deadline_ms, Some(50));
        assert!(matches!(r.body, RequestBody::Ping { delay_ms: 0 }));
    }

    #[test]
    fn parses_absorb_with_embedded_trace() {
        let line = r#"{"id":"a","type":"absorb_trace","trace":{"events":[],"delays":[]}}"#;
        let r = parse_request(line).unwrap();
        match r.body {
            RequestBody::AbsorbTrace { trace } => assert_eq!(trace.len(), 0),
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_lines_with_messages() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"type":"warp"}"#)
            .unwrap_err()
            .contains("unknown request type"));
        assert!(parse_request(r#"{"type":"absorb_trace"}"#)
            .unwrap_err()
            .contains("trace"));
        assert!(parse_request(r#"{"type":"solve","session":""}"#).is_err());
    }

    #[test]
    fn hostile_session_keys_are_rejected_with_structured_errors() {
        let reject = |key: &str, needle: &str| {
            let line = format!(
                r#"{{"type":"solve","session":{}}}"#,
                Json::from(key).render()
            );
            let err = parse_request(&line).unwrap_err();
            assert!(err.contains(needle), "{key:?}: {err}");
        };
        reject("..", "..");
        reject("a..b", "..");
        reject("../other", "path separator");
        reject("a/b", "path separator");
        reject("a\\b", "path separator");
        reject("tab\there", "control");
        reject("nul\u{0}", "control");
        reject(&"x".repeat(MAX_SESSION_KEY_LEN + 1), "exceeds");
        // The counter tracks every rejection above.
        assert!(sherlock_obs::counter!("serve.bad_session_key").get() >= 6);

        // Ordinary keys — including dots that are not `..` — still pass.
        for key in ["default", "App-3", "my.app.v2", "x"] {
            assert!(validate_session_key(key).is_ok(), "{key:?}");
        }
        let r = parse_request(r#"{"type":"solve","session":"my.app.v2"}"#).unwrap();
        assert_eq!(r.session, "my.app.v2");
    }

    #[test]
    fn parses_explore_requests() {
        let r = parse_request(r#"{"id":1,"type":"explore","app":"App-3"}"#).unwrap();
        match r.body {
            RequestBody::Explore {
                app,
                test,
                max_schedules,
                seed,
                jobs,
                batch,
                filter_bits,
                progress,
                absorb,
            } => {
                assert_eq!(app, "App-3");
                assert_eq!(test, None);
                assert_eq!(max_schedules, 1024);
                assert_eq!(seed, 0);
                assert_eq!(jobs, 1);
                assert_eq!(batch, 64);
                assert_eq!(filter_bits, None);
                assert!(!progress);
                assert!(absorb, "absorb defaults on");
            }
            other => panic!("wrong body: {other:?}"),
        }

        let r = parse_request(
            r#"{"type":"explore","app":"App-1","test":"t1","max_schedules":200,
                "seed":7,"jobs":2,"batch":32,"filter_bits":18,"progress":true,
                "absorb":false}"#,
        )
        .unwrap();
        match r.body {
            RequestBody::Explore {
                test,
                max_schedules,
                filter_bits,
                progress,
                absorb,
                ..
            } => {
                assert_eq!(test.as_deref(), Some("t1"));
                assert_eq!(max_schedules, 200);
                assert_eq!(filter_bits, Some(18));
                assert!(progress && !absorb);
            }
            other => panic!("wrong body: {other:?}"),
        }

        assert!(parse_request(r#"{"type":"explore"}"#)
            .unwrap_err()
            .contains("app"));
        assert!(parse_request(r#"{"type":"explore","app":"App-1","batch":-1}"#).is_err());
    }

    #[test]
    fn progress_frames_are_distinguishable() {
        let frame = progress_frame(
            &Json::Num(4.0),
            "explore",
            vec![("runs".to_string(), Json::from(64u64))],
        );
        let p = parse_response(&frame).unwrap();
        assert!(p.ok && p.progress && !p.busy);
        assert_eq!(p.doc.get("runs").unwrap().as_u64(), Some(64));
        // Final responses never carry the marker.
        let done = parse_response(&ok_response(&Json::Num(4.0), "explore", vec![])).unwrap();
        assert!(done.ok && !done.progress);
    }

    #[test]
    fn response_round_trip() {
        let ok = ok_response(
            &Json::Num(9.0),
            "solve",
            vec![("windows".to_string(), Json::from(4u64))],
        );
        let p = parse_response(&ok).unwrap();
        assert!(p.ok && !p.busy);
        assert_eq!(p.id, Json::Num(9.0));
        assert_eq!(p.doc.get("windows").unwrap().as_u64(), Some(4));

        let busy = parse_response(&busy_response(&Json::Null)).unwrap();
        assert!(!busy.ok && busy.busy);

        let err = parse_response(&error_response(&Json::Null, "nope")).unwrap();
        assert!(!err.ok && !err.busy);
        assert_eq!(err.error.as_deref(), Some("nope"));
    }
}
