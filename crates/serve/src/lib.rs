//! `sherlock-serve` — the long-lived inference service.
//!
//! Batch-mode SherLock (`sherlock infer`) rebuilds its whole pipeline per
//! invocation. This crate keeps the pipeline **resident**: a TCP daemon
//! holds per-client [`sherlock_core::Session`]s (accumulated observations,
//! memoized window extraction, memoized solve) so clients stream traces in
//! as they are produced and ask for refreshed synchronization specs at any
//! point — the service analogue of the paper's accumulate-across-rounds
//! design (§5.2: constraints and observations carry forward; re-solving is
//! incremental, not from scratch).
//!
//! The pieces:
//!
//! * [`protocol`] — line-delimited JSON requests/responses (zero
//!   dependencies; built on `sherlock_obs::json`).
//! * `sherlock_store` — the durable sharded session tier (re-exported
//!   here): per-session oplogs, periodic snapshots, rehydrate-on-miss,
//!   spill-to-disk eviction.
//! * [`server`] — listener, per-connection readers, per-session mailboxes,
//!   the worker pool with request batching, backpressure, deadlines, and
//!   graceful drain.
//! * [`client`] — a minimal blocking client used by the load generator,
//!   the CLI, and tests.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use server::{spawn, ServeConfig, ServeSummary, Server, ShutdownHandle, SpawnedServer};
pub use sherlock_store::{SessionStore, StoreOptions};
