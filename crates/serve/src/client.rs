//! A minimal blocking protocol client.
//!
//! One request in, one response out ([`Client::call`]), plus a pipelined
//! mode ([`Client::pipeline`]) that writes a burst of request lines before
//! reading any responses — the shape the server's per-session batching is
//! designed for, and what the load generator uses.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use sherlock_obs::json::Json;
use sherlock_trace::{json as trace_json, Trace};

use crate::protocol::{parse_response, ParsedResponse};

/// One request in a [`Client::pipeline`] burst:
/// `(type, session, extra fields)`.
pub type PipelinedRequest<'a> = (&'a str, &'a str, Vec<(String, Json)>);

/// A blocking connection to a `sherlock-serve` daemon.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to the daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            next_id: 0,
        })
    }

    fn request_line(&mut self, typ: &str, session: &str, extra: Vec<(String, Json)>) -> String {
        let id = self.next_id;
        self.next_id += 1;
        let mut members = vec![
            ("id".to_string(), Json::from(id)),
            ("type".to_string(), Json::from(typ)),
            ("session".to_string(), Json::from(session)),
        ];
        members.extend(extra);
        Json::Obj(members).render()
    }

    /// Sends one raw line and reads one response line.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a closed connection is
    /// [`io::ErrorKind::UnexpectedEof`]. Protocol-level failures come back
    /// as `ok: false` responses, not errors.
    pub fn call_raw(&mut self, line: &str) -> io::Result<ParsedResponse> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Reads the next response line.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and response-parse failures.
    pub fn read_response(&mut self) -> io::Result<ParsedResponse> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        parse_response(line.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Builds and sends one typed request, then reads its response.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn call(
        &mut self,
        typ: &str,
        session: &str,
        extra: Vec<(String, Json)>,
    ) -> io::Result<ParsedResponse> {
        let line = self.request_line(typ, session, extra);
        self.call_raw(&line)
    }

    /// Writes a burst of typed requests without reading responses, then
    /// reads all of them. Responses arrive in request order (the server
    /// guarantees per-connection ordering).
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn pipeline(
        &mut self,
        requests: Vec<PipelinedRequest<'_>>,
    ) -> io::Result<Vec<ParsedResponse>> {
        let mut burst = String::new();
        let n = requests.len();
        for (typ, session, extra) in requests {
            burst.push_str(&self.request_line(typ, session, extra));
            burst.push('\n');
        }
        self.stream.write_all(burst.as_bytes())?;
        self.stream.flush()?;
        (0..n).map(|_| self.read_response()).collect()
    }

    /// `absorb_trace` for `trace` into `session`.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn absorb_trace(&mut self, session: &str, trace: &Trace) -> io::Result<ParsedResponse> {
        self.call(
            "absorb_trace",
            session,
            vec![("trace".to_string(), trace_json::to_value(trace))],
        )
    }

    /// Builds one `absorb_trace` request line around a pre-rendered trace
    /// value (`trace_json::to_value(t).render()`), consuming a request id.
    /// Pairs with [`Client::call_raw`] or [`Client::pipeline_raw`] so a
    /// load generator can serialize each trace once and replay it from
    /// many connections without paying per-call serialization.
    pub fn absorb_trace_line(&mut self, session: &str, rendered_trace: &str) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!(
            "{{\"id\":{id},\"type\":\"absorb_trace\",\"session\":{},\"trace\":{rendered_trace}}}",
            Json::from(session).render()
        )
    }

    /// Writes pre-built request lines as one burst, then reads every
    /// response, in request order.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn pipeline_raw(&mut self, lines: &[String]) -> io::Result<Vec<ParsedResponse>> {
        let mut burst = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines {
            burst.push_str(line);
            burst.push('\n');
        }
        self.stream.write_all(burst.as_bytes())?;
        self.stream.flush()?;
        (0..lines.len()).map(|_| self.read_response()).collect()
    }

    /// `solve` over `session`'s accumulated observations.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn solve(&mut self, session: &str) -> io::Result<ParsedResponse> {
        self.call("solve", session, vec![])
    }

    /// `race_check` of `trace` under `session`'s solved spec; `app` turns
    /// on differential mode against that bundled app's ground truth.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn race_check(
        &mut self,
        session: &str,
        trace: &Trace,
        app: Option<&str>,
    ) -> io::Result<ParsedResponse> {
        let mut extra = vec![("trace".to_string(), trace_json::to_value(trace))];
        if let Some(app) = app {
            extra.push(("app".to_string(), Json::from(app)));
        }
        self.call("race_check", session, extra)
    }

    /// Server-side `explore` campaign against bundled app `app`. `extra`
    /// carries optional fields (`max_schedules`, `seed`, `jobs`, `batch`,
    /// `filter_bits`, `test`, `progress`, `absorb`); `on_progress` is
    /// invoked for every incremental `"progress": true` frame before the
    /// final response is returned. Do not pipeline an explore with
    /// `progress: true` alongside other requests on this connection — the
    /// frames would be consumed as their responses.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn explore(
        &mut self,
        session: &str,
        app: &str,
        extra: Vec<(String, Json)>,
        mut on_progress: impl FnMut(&Json),
    ) -> io::Result<ParsedResponse> {
        let mut fields = vec![("app".to_string(), Json::from(app))];
        fields.extend(extra);
        let line = self.request_line("explore", session, fields);
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        loop {
            let resp = self.read_response()?;
            if resp.progress {
                on_progress(&resp.doc);
                continue;
            }
            return Ok(resp);
        }
    }

    /// Server-wide `stats`.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn stats(&mut self) -> io::Result<ParsedResponse> {
        self.call("stats", crate::protocol::DEFAULT_SESSION, vec![])
    }

    /// Live `metrics` snapshot: global + per-session counters, histogram
    /// quantiles, worker-pool queue depths.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn metrics(&mut self) -> io::Result<ParsedResponse> {
        self.call("metrics", crate::protocol::DEFAULT_SESSION, vec![])
    }

    /// Requests graceful drain.
    ///
    /// # Errors
    ///
    /// See [`Client::call_raw`].
    pub fn shutdown(&mut self) -> io::Result<ParsedResponse> {
        self.call("shutdown", crate::protocol::DEFAULT_SESSION, vec![])
    }
}
