//! The session store: accumulated inference state per client/app key.
//!
//! Each entry wraps a [`sherlock_core::Session`] (observations, memoized
//! window extraction, memoized solve) behind its own mutex, so concurrent
//! requests against *different* sessions proceed in parallel while requests
//! against the *same* session serialize on exactly one lock. The store is
//! bounded: when a new key would exceed `max_sessions`, the
//! least-recently-touched entry is evicted (`serve.sessions.evicted`
//! counter) — an evicted client transparently restarts from an empty
//! session on its next request, mirroring how the paper's accumulated
//! Perturber constraints are an optimization, not a correctness
//! requirement.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use sherlock_core::{Session, SherLockConfig};
use sherlock_obs as obs;

/// One stored session with its LRU touch stamp.
struct Entry {
    session: Mutex<Session>,
    touched: AtomicU64,
}

/// Bounded map of session key → incremental inference session.
pub struct SessionStore {
    config: SherLockConfig,
    max_sessions: usize,
    inner: Mutex<HashMap<String, Arc<Entry>>>,
    clock: AtomicU64,
    evictions: AtomicU64,
}

impl SessionStore {
    /// Creates a store; `max_sessions` of 0 means unbounded.
    pub fn new(config: SherLockConfig, max_sessions: usize) -> Self {
        SessionStore {
            config,
            max_sessions,
            inner: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Live sessions.
    pub fn len(&self) -> usize {
        self.lock_inner().len()
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted over the store's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Sorted keys of the live sessions.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.lock_inner().keys().cloned().collect();
        keys.sort();
        keys
    }

    fn lock_inner(&self) -> MutexGuard<'_, HashMap<String, Arc<Entry>>> {
        // A panic while holding the map lock (never expected: the critical
        // sections below are allocation-only) must not wedge the daemon.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn get_or_create(&self, key: &str) -> Arc<Entry> {
        let mut map = self.lock_inner();
        if let Some(entry) = map.get(key) {
            entry.touched.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            return Arc::clone(entry);
        }
        if self.max_sessions > 0 && map.len() >= self.max_sessions {
            // Evict the least-recently-touched key. O(n) scan; the store is
            // small (defaults to 64 sessions).
            if let Some(oldest) = map
                .iter()
                .min_by_key(|(_, e)| e.touched.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                obs::counter!("serve.sessions.evicted").incr();
            }
        }
        obs::counter!("serve.sessions.created").incr();
        let entry = Arc::new(Entry {
            session: Mutex::new(Session::new(self.config.clone())),
            touched: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        });
        map.insert(key.to_string(), Arc::clone(&entry));
        entry
    }

    /// Runs `f` with exclusive access to the session stored under `key`,
    /// creating it if absent. The store's map lock is *not* held while `f`
    /// runs — only the per-session lock — so long solves on one session
    /// never block other sessions.
    ///
    /// An entry evicted while another thread still works on it finishes
    /// that work on the orphaned session; the next request under the key
    /// starts fresh.
    pub fn with_session<R>(&self, key: &str, f: impl FnOnce(&mut Session) -> R) -> R {
        let entry = self.get_or_create(key);
        let mut session = entry
            .session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_are_created_on_demand_and_reused() {
        let store = SessionStore::new(SherLockConfig::default(), 8);
        assert!(store.is_empty());
        let n = store.with_session("a", |s| {
            assert_eq!(s.traces_absorbed(), 0);
            41
        });
        assert_eq!(n, 41);
        assert_eq!(store.len(), 1);
        store.with_session("a", |_| ());
        assert_eq!(store.len(), 1, "same key reuses the entry");
        store.with_session("b", |_| ());
        assert_eq!(store.keys(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        let store = SessionStore::new(SherLockConfig::default(), 2);
        store.with_session("a", |_| ());
        store.with_session("b", |_| ());
        store.with_session("a", |_| ()); // refresh a; b is now oldest
        store.with_session("c", |_| ());
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.keys(), vec!["a".to_string(), "c".to_string()]);
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let store = SessionStore::new(SherLockConfig::default(), 0);
        for i in 0..32 {
            store.with_session(&format!("k{i}"), |_| ());
        }
        assert_eq!(store.len(), 32);
        assert_eq!(store.evictions(), 0);
    }
}
