//! The daemon: TCP listener, per-connection readers, a worker pool over
//! per-session mailboxes, and graceful drain.
//!
//! # Scheduling
//!
//! Each session key owns a **mailbox** (FIFO of queued jobs). Readers push
//! parsed requests into the target session's mailbox and, when no worker is
//! already responsible for it, enqueue the session key as a token; workers
//! pop tokens and process that session's mailbox to exhaustion, taking up
//! to `batch_max` jobs per session-lock acquisition (**request batching**:
//! a burst of `absorb_trace` requests against one session pays for the
//! session lock and solve-dirtying once). This gives:
//!
//! * per-session FIFO semantics — a pipelined `absorb, absorb, solve` is
//!   always solved after both absorbs;
//! * cross-session parallelism — independent sessions run on independent
//!   workers;
//! * bounded admission — at most `queue_capacity` jobs may be queued
//!   across all mailboxes; beyond that, clients get an explicit `busy`
//!   response (**backpressure**) instead of unbounded memory growth.
//!
//! # Response ordering
//!
//! Responses are written strictly in request order per connection: the
//! reader stamps every request with a sequence number and writers
//! reassemble out-of-order completions ([`Conn::send`]), so clients can
//! pipeline freely and never observe reordering.
//!
//! # Drain
//!
//! A `shutdown` request (or [`ShutdownHandle::shutdown`]) stops the
//! listener and new admissions, lets every already-admitted job finish and
//! flush its response, then joins workers and readers. `stats` and
//! `shutdown` are handled inline by the reader, so the daemon stays
//! responsive under full queues.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sherlock_apps::app_by_id;
use sherlock_core::SherLockConfig;
use sherlock_obs as obs;
use sherlock_obs::json::Json;
use sherlock_racer::{detect, differential, SyncSpec};
use sherlock_store::{SessionHandle, SessionStore, StoreOptions};

use sherlock_sim::{Campaign, CampaignConfig, CampaignProgress};

use crate::protocol::{
    busy_response, error_response, ok_response, parse_request, progress_frame, Request, RequestBody,
};

/// Configuration of one daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Worker OS threads; 0 means `std::thread::available_parallelism`.
    pub workers: usize,
    /// Maximum jobs queued across all session mailboxes before clients get
    /// explicit `busy` responses.
    pub queue_capacity: usize,
    /// Session-store LRU bound (0 = unbounded).
    pub max_sessions: usize,
    /// Maximum jobs a worker takes per session-lock acquisition.
    pub batch_max: usize,
    /// Root directory for session oplogs and snapshots. `None` (the
    /// default) keeps every session in memory only — eviction and restart
    /// then lose state, the pre-durability behavior.
    pub data_dir: Option<PathBuf>,
    /// Session-store shards (independent map locks and disk directories).
    pub shards: usize,
    /// Absorbed traces logged per session between snapshots.
    pub snapshot_every: u64,
    /// Inference configuration shared by all sessions.
    pub sherlock: SherLockConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let store = StoreOptions::default();
        ServeConfig {
            addr: "127.0.0.1:7477".to_string(),
            workers: 0,
            queue_capacity: 256,
            max_sessions: store.max_sessions,
            batch_max: 16,
            data_dir: None,
            shards: store.shards,
            snapshot_every: store.snapshot_every,
            sherlock: SherLockConfig::default(),
        }
    }
}

/// End-of-life statistics returned by [`Server::serve`].
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed (including inline-handled ones).
    pub requests: u64,
    /// Response lines written (or attempted on closed peers).
    pub responses: u64,
    /// Malformed lines answered with structured errors.
    pub protocol_errors: u64,
    /// Requests rejected with `busy`.
    pub busy_rejections: u64,
    /// Requests that expired in the queue.
    pub deadline_expired: u64,
    /// Multi-job session batches processed.
    pub batches: u64,
    /// Sessions live at shutdown.
    pub sessions: usize,
    /// Sessions evicted (spilled to disk when durable) by the LRU cap.
    pub evictions: u64,
    /// Sessions rehydrated from disk.
    pub rehydrations: u64,
}

impl ServeSummary {
    /// JSON rendering (the CLI prints this after drain).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("connections".to_string(), Json::from(self.connections)),
            ("requests".to_string(), Json::from(self.requests)),
            ("responses".to_string(), Json::from(self.responses)),
            (
                "protocol_errors".to_string(),
                Json::from(self.protocol_errors),
            ),
            (
                "busy_rejections".to_string(),
                Json::from(self.busy_rejections),
            ),
            (
                "deadline_expired".to_string(),
                Json::from(self.deadline_expired),
            ),
            ("batches".to_string(), Json::from(self.batches)),
            ("sessions".to_string(), Json::from(self.sessions)),
            ("evictions".to_string(), Json::from(self.evictions)),
            ("rehydrations".to_string(), Json::from(self.rehydrations)),
        ])
    }
}

/// One admitted unit of work.
struct Job {
    conn: Arc<Conn>,
    seq: u64,
    request: Request,
    enqueued: Instant,
    /// Trace context minted by the reader (connection trace id + session +
    /// seq); the worker re-enters it so the request's spans and events
    /// reconstruct into one causal tree across the thread hop.
    ctx: obs::TraceCtx,
}

/// Per-connection state: the write half plus the response-reordering
/// buffer.
struct Conn {
    stream: Mutex<TcpStream>,
    /// `(next sequence to write, completed-but-not-yet-writable lines)`.
    pending: Mutex<(u64, BTreeMap<u64, String>)>,
    open: AtomicBool,
}

impl Conn {
    /// Queues the response for `seq` and flushes every contiguously ready
    /// line, preserving request order no matter which worker finished
    /// first.
    fn send(&self, seq: u64, line: String, shared: &Shared) {
        let mut ready = String::new();
        {
            let mut p = self
                .pending
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            p.1.insert(seq, line);
            loop {
                let next = p.0;
                let Some(l) = p.1.remove(&next) else { break };
                ready.push_str(&l);
                ready.push('\n');
                p.0 += 1;
                shared.responses.fetch_add(1, Ordering::Relaxed);
            }
            if !ready.is_empty() && self.open.load(Ordering::Relaxed) {
                // Written under the pending lock so interleaved flushes from
                // two workers cannot split lines.
                let mut s = self
                    .stream
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if s.write_all(ready.as_bytes())
                    .and_then(|()| s.flush())
                    .is_err()
                {
                    self.open.store(false, Ordering::Relaxed);
                }
            }
        }
    }

    /// Writes one progress frame immediately, bypassing the response-order
    /// buffer — incremental frames must reach the client *before* their
    /// request's final response, which ordered delivery can't express. The
    /// stream lock keeps each frame one unsplit line; frames may land
    /// between other requests' response lines (documented in
    /// [`progress_frame`]).
    fn emit(&self, line: &str) {
        if !self.open.load(Ordering::Relaxed) {
            return;
        }
        let mut s = self
            .stream
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if s.write_all(line.as_bytes())
            .and_then(|()| s.write_all(b"\n"))
            .and_then(|()| s.flush())
            .is_err()
        {
            self.open.store(false, Ordering::Relaxed);
        }
    }
}

/// A session's job queue and scheduling state.
#[derive(Default)]
struct Mailbox {
    /// `(jobs, a worker currently owns this mailbox)`.
    inner: Mutex<(VecDeque<Job>, bool)>,
}

/// The token queue feeding workers: session keys with non-empty mailboxes.
#[derive(Default)]
struct TokenQueue {
    inner: Mutex<(VecDeque<String>, bool)>,
    cv: Condvar,
}

impl TokenQueue {
    fn push(&self, key: String) {
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.0.push_back(key);
        drop(q);
        self.cv.notify_one();
    }

    /// Blocks for the next token; `None` once closed *and* empty.
    fn pop(&self) -> Option<String> {
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(k) = q.0.pop_front() {
                return Some(k);
            }
            if q.1 {
                return None;
            }
            q = self
                .cv
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .1 = true;
        self.cv.notify_all();
    }
}

/// Lifetime request tallies for one session key (kept even if the session
/// itself is later evicted from the store).
#[derive(Clone, Copy, Debug, Default)]
struct SessStats {
    requests: u64,
    errors: u64,
    total_ns: u64,
}

struct Shared {
    cfg: ServeConfig,
    store: SessionStore,
    mailboxes: Mutex<HashMap<String, Arc<Mailbox>>>,
    tokens: TokenQueue,
    /// Jobs admitted and not yet responded to (queued + in flight).
    pending: AtomicUsize,
    draining: AtomicBool,
    start: Instant,
    /// Resolved worker-pool size (set once by [`Server::serve`]).
    workers: AtomicUsize,
    /// Per-session request tallies for the `metrics` verb.
    session_stats: Mutex<BTreeMap<String, SessStats>>,
    // Lifetime tallies for the summary.
    connections: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    protocol_errors: AtomicU64,
    busy_rejections: AtomicU64,
    deadline_expired: AtomicU64,
    batches: AtomicU64,
}

/// Triggers a graceful drain from outside the protocol (tests, CLI signal
/// bridges).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begins graceful drain: stop accepting, finish admitted work, exit.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }
}

/// A bound daemon, ready to [`serve`](Server::serve).
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Binds the listen socket without serving yet.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let store = SessionStore::open(
            cfg.sherlock.clone(),
            StoreOptions {
                max_sessions: cfg.max_sessions,
                shards: cfg.shards,
                data_dir: cfg.data_dir.clone(),
                snapshot_every: cfg.snapshot_every,
            },
        )?;
        Ok(Server {
            shared: Arc::new(Shared {
                cfg,
                store,
                mailboxes: Mutex::new(HashMap::new()),
                tokens: TokenQueue::default(),
                pending: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                start: Instant::now(),
                workers: AtomicUsize::new(0),
                session_stats: Mutex::new(BTreeMap::new()),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                responses: AtomicU64::new(0),
                protocol_errors: AtomicU64::new(0),
                busy_rejections: AtomicU64::new(0),
                deadline_expired: AtomicU64::new(0),
                batches: AtomicU64::new(0),
            }),
            listener,
            addr,
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can trigger graceful drain from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until drained: accepts connections, spawns readers, runs the
    /// worker pool, and on shutdown (protocol request or
    /// [`ShutdownHandle`]) drains every admitted job, flushes every
    /// response, and joins all threads.
    pub fn serve(self) -> ServeSummary {
        let shared = self.shared;
        let workers = if shared.cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            shared.cfg.workers
        }
        .max(1);
        shared.workers.store(workers, Ordering::Relaxed);

        let mut worker_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }

        let mut reader_handles = Vec::new();
        let conns: Arc<Mutex<Vec<Arc<Conn>>>> = Arc::new(Mutex::new(Vec::new()));
        while !shared.draining.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("serve.connections").incr();
                    let _ = stream.set_nodelay(true);
                    let conn = Arc::new(Conn {
                        stream: Mutex::new(stream.try_clone().expect("clone stream")),
                        pending: Mutex::new((0, BTreeMap::new())),
                        open: AtomicBool::new(true),
                    });
                    conns
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(Arc::clone(&conn));
                    let shared = Arc::clone(&shared);
                    reader_handles.push(
                        std::thread::Builder::new()
                            .name("serve-reader".to_string())
                            .spawn(move || reader_loop(&shared, &conn, stream))
                            .expect("spawn reader"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }

        // Drain: every admitted job completes and flushes its response.
        while shared.pending.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        shared.tokens.close();
        for h in worker_handles {
            let _ = h.join();
        }
        // Unblock readers stuck in read_line, then join them.
        for conn in conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let s = conn
                .stream
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for h in reader_handles {
            let _ = h.join();
        }

        // All workers joined: every session is quiescent, so one final
        // snapshot pass makes a clean restart rehydrate without log replay.
        shared.store.persist_all();

        ServeSummary {
            connections: shared.connections.load(Ordering::Relaxed),
            requests: shared.requests.load(Ordering::Relaxed),
            responses: shared.responses.load(Ordering::Relaxed),
            protocol_errors: shared.protocol_errors.load(Ordering::Relaxed),
            busy_rejections: shared.busy_rejections.load(Ordering::Relaxed),
            deadline_expired: shared.deadline_expired.load(Ordering::Relaxed),
            batches: shared.batches.load(Ordering::Relaxed),
            sessions: shared.store.len(),
            evictions: shared.store.evictions(),
            rehydrations: shared.store.rehydrations(),
        }
    }
}

/// Binds and serves on a background thread; the common entry point for
/// tests and the in-process load generator.
///
/// # Errors
///
/// Propagates socket bind errors.
pub fn spawn(cfg: ServeConfig) -> io::Result<SpawnedServer> {
    let server = Server::bind(cfg)?;
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::Builder::new()
        .name("serve-main".to_string())
        .spawn(move || server.serve())
        .expect("spawn server");
    Ok(SpawnedServer { addr, handle, join })
}

/// A daemon running on a background thread (see [`spawn`]).
pub struct SpawnedServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    join: std::thread::JoinHandle<ServeSummary>,
}

impl SpawnedServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers graceful drain without a protocol request.
    pub fn shutdown(&self) {
        self.handle.shutdown();
    }

    /// Waits for drain to complete and returns the summary.
    pub fn join(self) -> ServeSummary {
        self.join.join().expect("server thread panicked")
    }
}

fn mailbox(shared: &Shared, key: &str) -> Arc<Mailbox> {
    let mut map = shared
        .mailboxes
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(map.entry(key.to_string()).or_default())
}

/// Reader half of one connection: parse lines, answer
/// `stats`/`metrics`/`shutdown` inline, admit everything else into the
/// target session's mailbox.
fn reader_loop(shared: &Shared, conn: &Arc<Conn>, stream: TcpStream) {
    // One trace id per connection: every request on the connection shares
    // it and is distinguished by `seq`, so a pipelined client burst
    // reconstructs as one trace of ordered requests.
    let trace_id = obs::mint_trace_id();
    let mut reader = BufReader::new(stream);
    let mut seq = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let this_seq = seq;
        seq += 1;
        shared.requests.fetch_add(1, Ordering::Relaxed);

        let request = match parse_request(trimmed) {
            Ok(r) => r,
            Err(msg) => {
                // A bad request yields a structured error — never a dead
                // connection or a killed worker. Salvage the id when the
                // line at least parses as JSON.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                obs::counter!("serve.protocol_errors").incr();
                let id = Json::parse(trimmed)
                    .ok()
                    .and_then(|d| d.get("id").cloned())
                    .unwrap_or(Json::Null);
                conn.send(this_seq, error_response(&id, &msg), shared);
                continue;
            }
        };
        obs::counter!("serve.requests").incr();

        let ctx = obs::TraceCtx {
            trace_id,
            session: Some(request.session.clone()),
            seq: Some(this_seq),
        };
        match &request.body {
            RequestBody::Stats => {
                conn.send(this_seq, stats_response(shared, &request.id), shared);
            }
            RequestBody::Metrics => {
                conn.send(this_seq, metrics_response(shared, &request.id), shared);
            }
            RequestBody::Shutdown => {
                conn.send(
                    this_seq,
                    ok_response(&request.id, "shutdown", vec![]),
                    shared,
                );
                obs::counter!("serve.shutdowns").incr();
                shared.draining.store(true, Ordering::SeqCst);
            }
            _ => {
                if obs::jsonl_enabled() {
                    // Causality marker on the reader thread: ties the
                    // admission to the worker-side spans sharing this ctx.
                    let _scope = obs::trace_scope(ctx.clone());
                    obs::event(
                        "serve.enqueue",
                        &[("request", Json::from(request.body.type_name()))],
                    );
                }
                enqueue(shared, conn, this_seq, request, ctx);
            }
        }
    }
    conn.open.store(false, Ordering::Relaxed);
}

/// Admission control: bounded queue with explicit backpressure.
fn enqueue(shared: &Shared, conn: &Arc<Conn>, seq: u64, request: Request, ctx: obs::TraceCtx) {
    // Count first, check flags second: the drain loop can then trust that
    // `pending == 0` after `draining` was set means no admitted job is
    // still on its way into a mailbox.
    shared.pending.fetch_add(1, Ordering::SeqCst);
    if shared.draining.load(Ordering::SeqCst) {
        shared.pending.fetch_sub(1, Ordering::SeqCst);
        conn.send(seq, error_response(&request.id, "shutting down"), shared);
        return;
    }
    if shared.pending.load(Ordering::SeqCst) > shared.cfg.queue_capacity {
        shared.pending.fetch_sub(1, Ordering::SeqCst);
        shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
        obs::counter!("serve.busy").incr();
        conn.send(seq, busy_response(&request.id), shared);
        return;
    }

    let key = request.session.clone();
    let mb = mailbox(shared, &key);
    let needs_token = {
        let mut inner = mb
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.0.push_back(Job {
            conn: Arc::clone(conn),
            seq,
            request,
            enqueued: Instant::now(),
            ctx,
        });
        if inner.1 {
            false
        } else {
            inner.1 = true;
            true
        }
    };
    if needs_token {
        shared.tokens.push(key);
    }
}

/// Worker: claim a session token, process its mailbox to exhaustion in
/// FIFO order, batching up to `batch_max` jobs per session-lock
/// acquisition.
fn worker_loop(shared: &Shared) {
    while let Some(key) = shared.tokens.pop() {
        let mb = mailbox(shared, &key);
        loop {
            let batch: Vec<Job> = {
                let mut inner = mb
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if inner.0.is_empty() {
                    inner.1 = false;
                    break;
                }
                let n = inner.0.len().min(shared.cfg.batch_max.max(1));
                inner.0.drain(..n).collect()
            };
            if batch.len() > 1 {
                shared.batches.fetch_add(1, Ordering::Relaxed);
                obs::counter!("serve.batch.requests").add(batch.len() as u64);
                obs::histogram!("serve.batch.size").observe(batch.len() as u64);
            }
            shared.store.with_session(&key, |session| {
                for job in batch {
                    process_job(shared, session, job);
                }
            });
        }
    }
}

/// Runs one job against its (already locked) session and sends exactly one
/// response.
fn process_job(shared: &Shared, session: &mut SessionHandle<'_>, job: Job) {
    let Job {
        conn,
        seq,
        request,
        enqueued,
        ctx,
    } = job;
    let queued_for = enqueued.elapsed();
    // Re-enter the trace context minted by the reader: every span and event
    // below (session absorb, phase.solve, lp.simplex, ...) now carries this
    // request's trace_id/session/seq.
    let _scope = obs::trace_scope(ctx);
    obs::histogram!("serve.queue_wait_ns")
        .observe(u64::try_from(queued_for.as_nanos()).unwrap_or(u64::MAX));

    let (line, ok) = if request
        .deadline_ms
        .is_some_and(|d| queued_for.as_millis() as u64 > d)
    {
        shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
        obs::counter!("serve.deadline_expired").incr();
        (error_response(&request.id, "deadline exceeded"), false)
    } else {
        // The request's root span: depth 0 on this worker thread, so the
        // nested session/solver spans hang off it in the reconstruction.
        let _req = obs::span("serve.request");
        let typ = request.body.type_name();
        let outcome = catch_unwind(AssertUnwindSafe(|| handle(session, &request, &conn)));
        match outcome {
            Ok(Ok(fields)) => (ok_response(&request.id, typ, fields), true),
            Ok(Err(msg)) => (error_response(&request.id, &msg), false),
            Err(_) => {
                obs::counter!("serve.handler_panics").incr();
                (error_response(&request.id, "internal error"), false)
            }
        }
    };

    let total_ns = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
    obs::histogram!("serve.request_ns").observe(total_ns);
    {
        let mut stats = shared
            .session_stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let s = stats.entry(request.session.clone()).or_default();
        s.requests += 1;
        s.errors += u64::from(!ok);
        s.total_ns = s.total_ns.saturating_add(total_ns);
    }
    conn.send(seq, line, shared);
    shared.pending.fetch_sub(1, Ordering::SeqCst);
}

/// The session-targeted request handlers. `conn` is only used by `explore`
/// to emit incremental progress frames.
fn handle(
    session: &mut SessionHandle<'_>,
    request: &Request,
    conn: &Conn,
) -> Result<Vec<(String, Json)>, String> {
    match &request.body {
        RequestBody::AbsorbTrace { trace } => {
            let stats = session.absorb_trace(trace);
            Ok(vec![
                ("events".to_string(), Json::from(stats.events)),
                ("windows".to_string(), Json::from(stats.windows_extracted)),
                ("racy_windows".to_string(), Json::from(stats.racy_windows)),
                ("confirmations".to_string(), Json::from(stats.confirmations)),
                ("exclusions".to_string(), Json::from(stats.exclusions)),
                (
                    "traces_absorbed".to_string(),
                    Json::from(session.traces_absorbed()),
                ),
            ])
        }
        RequestBody::Solve => {
            let traces_absorbed = session.traces_absorbed();
            let report = session.solve().map_err(|e| format!("solver failed: {e}"))?;
            let sites = |ops: Vec<String>| Json::Arr(ops.into_iter().map(Json::Str).collect());
            Ok(vec![
                (
                    "releases".to_string(),
                    sites(
                        report
                            .releases()
                            .map(|op| op.resolve().to_string())
                            .collect(),
                    ),
                ),
                (
                    "acquires".to_string(),
                    sites(
                        report
                            .acquires()
                            .map(|op| op.resolve().to_string())
                            .collect(),
                    ),
                ),
                ("spec".to_string(), Json::from(report.render())),
                ("num_windows".to_string(), Json::from(report.num_windows)),
                (
                    "num_variables".to_string(),
                    Json::from(report.num_variables),
                ),
                ("racy_pairs".to_string(), Json::from(report.racy_pairs)),
                ("objective".to_string(), Json::Num(report.objective)),
                ("traces_absorbed".to_string(), Json::from(traces_absorbed)),
            ])
        }
        RequestBody::RaceCheck { trace, app } => {
            if session.traces_absorbed() == 0 {
                return Err("session has no observations; absorb traces first".into());
            }
            // Memoized: only re-solves when observations changed.
            let report = session.solve().map_err(|e| format!("solver failed: {e}"))?;
            let inferred = SyncSpec::from_report(report);
            let races = detect(trace, &inferred);
            let mut fields = vec![
                ("races".to_string(), Json::from(races.len())),
                (
                    "locations".to_string(),
                    Json::Arr(
                        races
                            .iter()
                            .map(|r| Json::from(r.location.clone()))
                            .collect(),
                    ),
                ),
            ];
            if let Some(app_id) = app {
                let app =
                    app_by_id(app_id).ok_or_else(|| format!("unknown application {app_id:?}"))?;
                let ground = app.truth.full_spec();
                let diff = differential(&[trace], &ground, &inferred, &app.truth.race_locations);
                fields.push(("app".to_string(), Json::from(app.id)));
                fields.push((
                    "disagreements".to_string(),
                    Json::from(diff.disagreements.len()),
                ));
                fields.push(("agrees".to_string(), Json::Bool(diff.agrees())));
                fields.push((
                    "ground_reports".to_string(),
                    Json::from(diff.ground_reports),
                ));
                fields.push((
                    "inferred_reports".to_string(),
                    Json::from(diff.inferred_reports),
                ));
            }
            Ok(fields)
        }
        RequestBody::Explore {
            app,
            test,
            max_schedules,
            seed,
            jobs,
            batch,
            filter_bits,
            progress,
            absorb,
        } => {
            let app = app_by_id(app).ok_or_else(|| format!("unknown application {app:?}"))?;
            let workload: std::sync::Arc<dyn Fn() + Send + Sync> = match test {
                Some(name) => app
                    .tests
                    .iter()
                    .find(|t| t.name() == name)
                    .ok_or_else(|| format!("unknown test {name:?} in {}", app.id))?
                    .body(),
                None => {
                    // One schedule = the whole suite sequentially, so a
                    // single campaign covers every test's interleavings.
                    let bodies: Vec<_> = app.tests.iter().map(|t| t.body()).collect();
                    std::sync::Arc::new(move || {
                        for body in &bodies {
                            body();
                        }
                    })
                }
            };
            let ccfg = CampaignConfig {
                max_schedules: *max_schedules,
                base_seed: *seed,
                jobs: (*jobs).max(1),
                batch: *batch,
                filter_bits: *filter_bits,
                // Absorbing needs the distinct traces themselves; otherwise
                // a few exemplars suffice.
                report_cap: if *absorb { 4096 } else { 16 },
                ..CampaignConfig::default()
            };
            let id = request.id.clone();
            let on_batch = |p: &CampaignProgress| {
                if !*progress {
                    return;
                }
                let arms: Vec<Json> = p
                    .arms
                    .iter()
                    .map(|(label, runs, fresh, weight)| {
                        Json::Obj(vec![
                            ("label".to_string(), Json::from(label.as_str())),
                            ("runs".to_string(), Json::from(*runs)),
                            ("fresh".to_string(), Json::from(*fresh)),
                            ("weight".to_string(), Json::from(*weight)),
                        ])
                    })
                    .collect();
                conn.emit(&progress_frame(
                    &id,
                    "explore",
                    vec![
                        ("runs".to_string(), Json::from(p.runs)),
                        ("max_schedules".to_string(), Json::from(p.max_schedules)),
                        ("distinct".to_string(), Json::from(p.distinct)),
                        ("dedup_hits".to_string(), Json::from(p.dedup_hits)),
                        (
                            "sched_per_sec".to_string(),
                            Json::Num(p.sched_per_sec.round()),
                        ),
                        ("occupancy".to_string(), Json::Num(p.occupancy)),
                        ("arms".to_string(), Json::Arr(arms)),
                    ],
                ));
            };
            let result = Campaign::new(ccfg).run_with_progress(workload, on_batch);

            let mut absorbed = 0u64;
            if *absorb {
                session.absorb_traces(result.reports.iter().map(|r| &r.trace));
                absorbed = result.reports.len() as u64;
            }
            let arms: Vec<Json> = result
                .arms
                .iter()
                .map(|a| {
                    Json::Obj(vec![
                        ("label".to_string(), Json::from(a.label.as_str())),
                        ("runs".to_string(), Json::from(a.runs)),
                        ("fresh".to_string(), Json::from(a.fresh)),
                    ])
                })
                .collect();
            Ok(vec![
                ("app".to_string(), Json::from(app.id)),
                ("runs".to_string(), Json::from(result.runs)),
                ("distinct".to_string(), Json::from(result.distinct)),
                ("dedup_hits".to_string(), Json::from(result.dedup_hits)),
                ("deadlocks".to_string(), Json::from(result.deadlocks)),
                ("panics".to_string(), Json::from(result.panics)),
                (
                    "distinct_digest".to_string(),
                    Json::Str(format!("{:016x}", result.distinct_digest)),
                ),
                (
                    "sched_per_sec".to_string(),
                    Json::Num(result.sched_per_sec.round()),
                ),
                (
                    "elapsed_ms".to_string(),
                    Json::from(result.elapsed.as_millis() as u64),
                ),
                (
                    "filter_bytes".to_string(),
                    Json::from(result.filter_bytes as u64),
                ),
                (
                    "filter_occupancy".to_string(),
                    Json::Num(result.filter_occupancy),
                ),
                ("est_fp_rate".to_string(), Json::Num(result.est_fp_rate)),
                ("absorbed".to_string(), Json::from(absorbed)),
                (
                    "traces_absorbed".to_string(),
                    Json::from(session.traces_absorbed()),
                ),
                ("arms".to_string(), Json::Arr(arms)),
            ])
        }
        RequestBody::Ping { delay_ms } => {
            if *delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(*delay_ms));
            }
            Ok(vec![])
        }
        // Handled inline by the reader.
        RequestBody::Stats | RequestBody::Metrics | RequestBody::Shutdown => {
            unreachable!("inline request in worker")
        }
    }
}

/// Builds the `stats` response from store internals and the `serve.*` /
/// `session.*` slices of the process-wide metric registry.
fn stats_response(shared: &Shared, id: &Json) -> String {
    let snap = obs::snapshot();
    let counters: Vec<(String, Json)> = snap
        .counters
        .iter()
        .filter(|(k, _)| {
            k.starts_with("serve.") || k.starts_with("session.") || k.starts_with("store.")
        })
        .map(|(k, &v)| (k.clone(), Json::from(v)))
        .collect();
    let latency = snap.histograms.get("serve.request_ns");
    let quant = |q: f64| latency.map_or(0, |h| h.quantile(q));
    let uptime_ms = u64::try_from(shared.start.elapsed().as_millis()).unwrap_or(u64::MAX);
    ok_response(
        id,
        "stats",
        vec![
            ("uptime_ms".to_string(), Json::from(uptime_ms)),
            ("sessions".to_string(), Json::from(shared.store.len())),
            (
                "session_keys".to_string(),
                Json::Arr(shared.store.keys().into_iter().map(Json::from).collect()),
            ),
            (
                "evictions".to_string(),
                Json::from(shared.store.evictions()),
            ),
            (
                "rehydrations".to_string(),
                Json::from(shared.store.rehydrations()),
            ),
            (
                "pending".to_string(),
                Json::from(shared.pending.load(Ordering::SeqCst) as u64),
            ),
            (
                "queue_capacity".to_string(),
                Json::from(shared.cfg.queue_capacity),
            ),
            (
                "latency_ns".to_string(),
                Json::Obj(vec![
                    ("p50".to_string(), Json::from(quant(0.50))),
                    ("p95".to_string(), Json::from(quant(0.95))),
                    ("p99".to_string(), Json::from(quant(0.99))),
                    (
                        "count".to_string(),
                        Json::from(latency.map_or(0, |h| h.count)),
                    ),
                ]),
            ),
            ("counters".to_string(), Json::Obj(counters)),
        ],
    )
}

/// Builds the `metrics` response: the full live metric registry (every
/// counter, span aggregate, and histogram quantile summary — including the
/// solver flight-recorder series `lp.pivots` / `session.solve_memo.*`),
/// plus worker-pool state (queue depths per mailbox, pending, busy
/// rejections) and per-session request tallies. Handled inline by the
/// reader so it stays live under a saturated worker pool.
fn metrics_response(shared: &Shared, id: &Json) -> String {
    let snap = obs::snapshot();
    let counters: Json = snap
        .counters
        .iter()
        .map(|(k, &v)| (k.clone(), Json::from(v)))
        .collect();
    let spans: Json = snap
        .spans
        .iter()
        .map(|(k, s)| {
            let obj: Json = vec![
                ("count", Json::from(s.count)),
                ("total_ns", Json::from(s.total_ns)),
                ("max_ns", Json::from(s.max_ns)),
            ]
            .into_iter()
            .collect();
            (k.clone(), obj)
        })
        .collect();
    let histograms: Json = snap
        .histograms
        .iter()
        .map(|(k, h)| (k.clone(), h.summary_json()))
        .collect();
    let queue_depths: Json = {
        let map = shared
            .mailboxes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.iter()
            .map(|(k, mb)| {
                let depth = mb
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0
                    .len();
                (k.clone(), Json::from(depth as u64))
            })
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_iter()
            .collect()
    };
    let per_session: Json = {
        let stats = shared
            .session_stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        stats
            .iter()
            .map(|(k, s)| {
                let obj: Json = vec![
                    ("requests", Json::from(s.requests)),
                    ("errors", Json::from(s.errors)),
                    ("total_ns", Json::from(s.total_ns)),
                ]
                .into_iter()
                .collect();
                (k.clone(), obj)
            })
            .collect()
    };
    let uptime_ms = u64::try_from(shared.start.elapsed().as_millis()).unwrap_or(u64::MAX);
    ok_response(
        id,
        "metrics",
        vec![
            ("uptime_ms".to_string(), Json::from(uptime_ms)),
            (
                "workers".to_string(),
                Json::from(shared.workers.load(Ordering::Relaxed) as u64),
            ),
            (
                "pending".to_string(),
                Json::from(shared.pending.load(Ordering::SeqCst) as u64),
            ),
            (
                "queue_capacity".to_string(),
                Json::from(shared.cfg.queue_capacity),
            ),
            (
                "busy_rejections".to_string(),
                Json::from(shared.busy_rejections.load(Ordering::Relaxed)),
            ),
            ("sessions".to_string(), Json::from(shared.store.len())),
            (
                "evictions".to_string(),
                Json::from(shared.store.evictions()),
            ),
            (
                "rehydrations".to_string(),
                Json::from(shared.store.rehydrations()),
            ),
            ("queue_depths".to_string(), queue_depths),
            ("per_session".to_string(), per_session),
            ("counters".to_string(), counters),
            ("spans".to_string(), spans),
            ("histograms".to_string(), histograms),
        ],
    )
}
