//! End-to-end protocol tests: a real daemon on an ephemeral port, real TCP
//! clients, covering the happy path plus every failure lane the protocol
//! promises — structured errors for malformed lines, explicit `busy`
//! backpressure, queueing deadlines, and graceful drain that finishes
//! admitted work.

mod common;

use sherlock_obs::json::Json;
use sherlock_serve::{spawn, Client, ServeConfig};

use common::app_traces;

fn small_config() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".to_string();
    cfg.workers = 2;
    cfg
}

#[test]
fn absorb_solve_race_check_round_trip() {
    let server = spawn(small_config()).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");
    let traces = app_traces("App-1", 3);

    for trace in &traces {
        let r = client.absorb_trace("app1", trace).expect("absorb");
        assert!(r.ok, "absorb failed: {:?}", r.error);
        assert!(r.doc.get("events").unwrap().as_u64().unwrap() > 0);
    }
    let r = client.absorb_trace("app1", &traces[0]).expect("re-absorb");
    assert_eq!(
        r.doc.get("traces_absorbed").unwrap().as_u64(),
        Some(4),
        "re-absorbing the same trace still counts (accumulation is additive)"
    );

    let solve = client.solve("app1").expect("solve");
    assert!(solve.ok, "solve failed: {:?}", solve.error);
    let spec = solve.doc.get("spec").unwrap().as_str().unwrap();
    assert!(spec.contains("Releasing sites:"), "unexpected spec: {spec}");

    let rc = client
        .race_check("app1", &traces[0], Some("App-1"))
        .expect("race_check");
    assert!(rc.ok, "race_check failed: {:?}", rc.error);
    assert!(rc.doc.get("races").unwrap().as_u64().is_some());
    assert_eq!(rc.doc.get("app").unwrap().as_str(), Some("App-1"));
    assert!(matches!(rc.doc.get("agrees"), Some(Json::Bool(_))));

    // race_check on a session with no observations is a structured error.
    let empty = client
        .race_check("untouched", &traces[0], None)
        .expect("race_check empty");
    assert!(!empty.ok);
    assert!(empty.error.unwrap().contains("no observations"));

    let stats = client.stats().expect("stats");
    assert!(stats.ok);
    assert!(stats.doc.get("sessions").unwrap().as_u64().unwrap() >= 2);

    let bye = client.shutdown().expect("shutdown");
    assert!(bye.ok);
    let summary = server.join();
    assert_eq!(summary.protocol_errors, 0);
    assert!(summary.requests >= 8);
    assert_eq!(summary.requests, summary.responses);
}

#[test]
fn malformed_lines_get_structured_errors_and_never_kill_the_connection() {
    let server = spawn(small_config()).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");

    let r = client.call_raw("this is not json").expect("raw garbage");
    assert!(!r.ok);
    assert!(r.error.as_deref().unwrap().contains("malformed JSON"));
    assert_eq!(r.id, Json::Null);

    // Valid JSON, invalid request: the id is still echoed back.
    let r = client
        .call_raw(r#"{"id": 41, "type": "warp"}"#)
        .expect("unknown type");
    assert!(!r.ok);
    assert_eq!(r.id, Json::Num(41.0));
    assert!(r.error.as_deref().unwrap().contains("unknown request type"));

    let r = client
        .call_raw(r#"{"type": "absorb_trace", "trace": 7}"#)
        .expect("bad trace");
    assert!(!r.ok);

    // The connection and the workers are still alive.
    let r = client
        .call("ping", "default", vec![])
        .expect("ping after garbage");
    assert!(r.ok);

    server.shutdown();
    let summary = server.join();
    assert_eq!(summary.protocol_errors, 3);
}

#[test]
fn full_queue_yields_explicit_busy_and_order_is_preserved() {
    let mut cfg = small_config();
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    let server = spawn(cfg).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");

    // One slow ping occupies the single worker; the reader admits at most
    // `queue_capacity` jobs, so later pings in the burst bounce with `busy`.
    let burst: Vec<_> = (0..6)
        .map(|_| {
            (
                "ping",
                "default",
                vec![("delay_ms".to_string(), Json::from(120u64))],
            )
        })
        .collect();
    let responses = client.pipeline(burst).expect("pipeline");
    assert_eq!(responses.len(), 6);
    // Per-connection ordering: ids echo back strictly in request order.
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.id.as_u64(), Some(i as u64), "response {i} out of order");
    }
    let busy = responses.iter().filter(|r| r.busy).count();
    let ok = responses.iter().filter(|r| r.ok).count();
    assert!(
        busy >= 1,
        "no busy response despite capacity 2 and 6 requests"
    );
    assert!(ok >= 2, "admitted requests must still succeed");
    assert_eq!(busy + ok, 6, "every response is either ok or busy");

    server.shutdown();
    let summary = server.join();
    assert_eq!(summary.busy_rejections, busy as u64);
}

#[test]
fn queueing_deadline_expires_instead_of_running() {
    let mut cfg = small_config();
    cfg.workers = 1;
    let server = spawn(cfg).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");

    let responses = client
        .pipeline(vec![
            (
                "ping",
                "default",
                vec![("delay_ms".to_string(), Json::from(150u64))],
            ),
            (
                "ping",
                "default",
                vec![("deadline_ms".to_string(), Json::from(10u64))],
            ),
        ])
        .expect("pipeline");
    assert!(responses[0].ok, "slow ping should succeed");
    assert!(!responses[1].ok, "queued past its deadline");
    assert_eq!(responses[1].error.as_deref(), Some("deadline exceeded"));

    server.shutdown();
    let summary = server.join();
    assert_eq!(summary.deadline_expired, 1);
}

#[test]
fn shutdown_drains_admitted_work_before_exiting() {
    let mut cfg = small_config();
    cfg.workers = 1;
    let server = spawn(cfg).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");
    let trace = app_traces("App-2", 1).remove(0);

    // Pipelined: slow ping, absorb, solve, then shutdown. The shutdown is
    // handled inline the moment it is read, yet every admitted job still
    // completes and all responses come back in order.
    let responses = client
        .pipeline(vec![
            (
                "ping",
                "d",
                vec![("delay_ms".to_string(), Json::from(100u64))],
            ),
            (
                "absorb_trace",
                "d",
                vec![("trace".to_string(), sherlock_trace::json::to_value(&trace))],
            ),
            ("solve", "d", vec![]),
            ("shutdown", "d", vec![]),
        ])
        .expect("pipeline");
    assert!(responses[0].ok, "ping: {:?}", responses[0].error);
    assert!(responses[1].ok, "absorb: {:?}", responses[1].error);
    assert!(responses[2].ok, "solve: {:?}", responses[2].error);
    assert!(responses[3].ok, "shutdown: {:?}", responses[3].error);

    let addr = server.addr();
    let summary = server.join();
    assert_eq!(summary.requests, 4);
    assert_eq!(summary.responses, 4);

    // The daemon is gone: new connections are refused or die immediately.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.call("ping", "d", vec![]).is_err()),
    }
}

#[test]
fn sessions_are_isolated_and_lru_evicted() {
    let mut cfg = small_config();
    cfg.max_sessions = 2;
    let server = spawn(cfg).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");
    let trace = app_traces("App-3", 1).remove(0);

    // Absorbing into s1 must not leak into s2.
    assert!(client.absorb_trace("s1", &trace).unwrap().ok);
    let s1 = client.solve("s1").unwrap();
    assert_eq!(s1.doc.get("traces_absorbed").unwrap().as_u64(), Some(1));
    let s2 = client.solve("s2").unwrap();
    assert_eq!(
        s2.doc.get("traces_absorbed").unwrap().as_u64(),
        Some(0),
        "fresh session sees no foreign observations"
    );

    // A third key evicts the least-recently-touched one.
    assert!(client.call("ping", "s3", vec![]).unwrap().ok);
    let stats = client.stats().unwrap();
    assert_eq!(stats.doc.get("sessions").unwrap().as_u64(), Some(2));
    assert!(stats.doc.get("evictions").unwrap().as_u64().unwrap() >= 1);

    server.shutdown();
    let summary = server.join();
    assert!(summary.evictions >= 1);
    assert_eq!(summary.sessions, 2);
}

#[test]
fn stats_reports_latency_quantiles_and_serve_counters() {
    let server = spawn(small_config()).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");
    for _ in 0..5 {
        assert!(client.call("ping", "default", vec![]).unwrap().ok);
    }
    let stats = client.stats().unwrap();
    assert!(stats.ok);
    let latency = stats.doc.get("latency_ns").unwrap();
    let p50 = latency.get("p50").unwrap().as_u64().unwrap();
    let p99 = latency.get("p99").unwrap().as_u64().unwrap();
    assert!(latency.get("count").unwrap().as_u64().unwrap() >= 5);
    assert!(p50 > 0 && p99 >= p50, "p50={p50} p99={p99}");
    let counters = stats.doc.get("counters").unwrap();
    assert!(counters.get("serve.requests").is_some());

    server.shutdown();
    server.join();
}
