//! End-to-end tests of the server-side `explore` verb: a real daemon runs a
//! novelty-guided campaign against a bundled app, streams progress frames,
//! absorbs the distinct traces into the session, and surfaces the
//! `explore.*` flight-recorder series through the `metrics` verb.

use sherlock_obs::json::Json;
use sherlock_serve::{spawn, Client, ServeConfig};

fn small_config() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".to_string();
    cfg.workers = 2;
    cfg
}

#[test]
fn explore_runs_campaign_and_absorbs() {
    let server = spawn(small_config()).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut frames = 0u64;
    let mut last_runs = 0u64;
    let resp = client
        .explore(
            "exp1",
            "App-1",
            vec![
                ("max_schedules".to_string(), Json::from(48u64)),
                ("seed".to_string(), Json::from(11u64)),
                ("batch".to_string(), Json::from(16u64)),
                ("progress".to_string(), Json::Bool(true)),
            ],
            |frame| {
                frames += 1;
                let runs = frame.get("runs").unwrap().as_u64().unwrap();
                assert!(runs > last_runs, "progress frames advance");
                last_runs = runs;
                assert!(frame.get("arms").is_some());
                assert!(frame.get("sched_per_sec").is_some());
            },
        )
        .expect("explore");
    assert!(resp.ok, "explore failed: {:?}", resp.error);
    assert_eq!(frames, 3, "48 runs at batch 16 → 3 frames");
    assert_eq!(resp.doc.get("runs").unwrap().as_u64(), Some(48));
    let distinct = resp.doc.get("distinct").unwrap().as_u64().unwrap();
    assert!(distinct >= 1);
    let absorbed = resp.doc.get("absorbed").unwrap().as_u64().unwrap();
    assert_eq!(absorbed, distinct, "every distinct trace absorbed");
    assert_eq!(
        resp.doc.get("traces_absorbed").unwrap().as_u64(),
        Some(distinct),
        "session accumulated the campaign's distinct traces"
    );
    assert!(resp.doc.get("distinct_digest").unwrap().as_str().is_some());
    assert!(resp.doc.get("filter_bytes").unwrap().as_u64().unwrap() > 0);

    // The absorbed session solves.
    let solve = client.solve("exp1").expect("solve");
    assert!(solve.ok, "solve after explore failed: {:?}", solve.error);

    // Flight-recorder series are visible through the metrics verb.
    let metrics = client.metrics().expect("metrics");
    let counters = metrics.doc.get("counters").unwrap();
    assert!(
        counters.get("explore.dedup_hits").is_some(),
        "explore.dedup_hits series missing from metrics"
    );
    assert!(
        counters.get("explore.arm_selections").is_some(),
        "explore.arm_selections series missing from metrics"
    );
    let histograms = metrics.doc.get("histograms").unwrap();
    assert!(
        histograms.get("explore.sched_per_sec").is_some(),
        "explore.sched_per_sec series missing from metrics"
    );

    server.shutdown();
    server.join();
}

#[test]
fn explore_replay_is_deterministic_server_side() {
    let server = spawn(small_config()).expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");
    let fields = || {
        vec![
            ("max_schedules".to_string(), Json::from(32u64)),
            ("seed".to_string(), Json::from(5u64)),
            ("test".to_string(), Json::from("racy_metric_counter")),
            ("absorb".to_string(), Json::Bool(false)),
        ]
    };
    let a = client
        .explore("ra", "App-1", fields(), |_| {})
        .expect("explore a");
    let b = client
        .explore("rb", "App-1", fields(), |_| {})
        .expect("explore b");
    assert!(a.ok && b.ok, "{:?} {:?}", a.error, b.error);
    assert_eq!(
        a.doc.get("distinct_digest").unwrap().as_str(),
        b.doc.get("distinct_digest").unwrap().as_str(),
        "same (config, seed) must replay to the same distinct-hash set"
    );
    assert_eq!(
        a.doc.get("distinct").unwrap().as_u64(),
        b.doc.get("distinct").unwrap().as_u64()
    );
    // absorb:false leaves the session untouched.
    assert_eq!(a.doc.get("absorbed").unwrap().as_u64(), Some(0));
    assert_eq!(a.doc.get("traces_absorbed").unwrap().as_u64(), Some(0));

    // Unknown apps and tests are structured errors, not dead connections.
    let bad = client
        .explore("rx", "App-99", vec![], |_| {})
        .expect("explore bad");
    assert!(!bad.ok);
    assert!(bad.error.unwrap().contains("unknown application"));

    server.shutdown();
    server.join();
}
