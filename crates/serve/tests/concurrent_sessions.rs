//! Concurrency coverage for the session layer: many clients hammering one
//! shared session (absorbs racing a solver) must end in exactly the state
//! a sequential replay produces, and the session abstraction itself must
//! be order-independent — verified with the in-tree property harness,
//! which shrinks a failing request order to a minimal witness.

mod common;

use sherlock_core::{Session, SherLockConfig};
use sherlock_serve::{spawn, Client, ServeConfig};
use sherlock_sim::testutil::{check, shrink_vec, Config as PropConfig};
use sherlock_trace::Trace;

use common::app_traces;

/// Absorbs `traces` in the given order into a fresh in-process session and
/// renders the solved report.
fn replay_render(traces: &[&Trace]) -> String {
    let mut session = Session::new(SherLockConfig::default());
    for t in traces {
        session.absorb_trace(t);
    }
    session.solve().expect("solve").render()
}

/// Four client threads absorb disjoint slices of one app's traces into the
/// *same* server session while a fifth thread issues interleaved solves.
/// Nothing may error, intermediate solves must be internally consistent,
/// and the final solve must equal a sequential in-process replay of all
/// traces.
#[test]
fn concurrent_absorbs_into_one_session_match_sequential_replay() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 2;
    let traces = app_traces("App-1", WRITERS * PER_WRITER);

    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".to_string();
    cfg.workers = 4;
    let server = spawn(cfg).expect("spawn");
    let addr = server.addr();

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let slice: Vec<&Trace> = traces[w * PER_WRITER..(w + 1) * PER_WRITER]
                .iter()
                .collect();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("writer connect");
                for trace in slice {
                    let r = client.absorb_trace("shared", trace).expect("absorb");
                    assert!(r.ok, "absorb failed: {:?}", r.error);
                }
            });
        }
        // A reader thread racing the writers: every interleaved solve must
        // succeed and report a trace count no larger than the total.
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("solver connect");
            for _ in 0..6 {
                let r = client.solve("shared").expect("solve");
                assert!(r.ok, "interleaved solve failed: {:?}", r.error);
                let n = r.doc.get("traces_absorbed").unwrap().as_u64().unwrap();
                assert!(n as usize <= WRITERS * PER_WRITER);
            }
        });
    });

    let mut client = Client::connect(addr).expect("final connect");
    let r = client.solve("shared").expect("final solve");
    assert!(r.ok);
    assert_eq!(
        r.doc.get("traces_absorbed").unwrap().as_u64(),
        Some((WRITERS * PER_WRITER) as u64),
        "every concurrent absorb must land"
    );
    let served_spec = r.doc.get("spec").unwrap().as_str().unwrap().to_string();

    let all: Vec<&Trace> = traces.iter().collect();
    assert_eq!(
        served_spec,
        replay_render(&all),
        "concurrent absorb interleaving changed the solved spec"
    );

    server.shutdown();
    let summary = server.join();
    assert_eq!(summary.protocol_errors, 0);
}

/// Property: the solved spec is independent of the order requests arrive
/// in — any sequence of absorbs drawn from a trace pool renders the same
/// report as the same multiset absorbed in canonical order. On failure the
/// harness shrinks the request order to a minimal reordering witness.
#[test]
fn absorb_order_never_changes_the_solved_spec() {
    let pool = app_traces("App-3", 4);
    check(
        &PropConfig {
            cases: 12,
            ..PropConfig::default()
        },
        // A request order: indices into the trace pool, with repeats.
        |g| g.vec(1, 6, |g| g.usize_in(0, 4)),
        |order| shrink_vec(order),
        |order| {
            let as_given: Vec<&Trace> = order.iter().map(|&i| &pool[i]).collect();
            let mut canonical = order.clone();
            canonical.sort_unstable();
            let sorted: Vec<&Trace> = canonical.iter().map(|&i| &pool[i]).collect();
            let a = replay_render(&as_given);
            let b = replay_render(&sorted);
            if a == b {
                Ok(())
            } else {
                Err(format!(
                    "order {order:?} rendered a different spec than sorted \
                     {canonical:?}"
                ))
            }
        },
    );
}
