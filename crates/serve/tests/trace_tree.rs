//! The tentpole acceptance test: a serve request traced over TCP must
//! reconstruct into **one** connected span tree keyed by a single
//! `trace_id`.
//!
//! This lives in its own integration-test binary because the JSONL sink is
//! process-global: installing it here must not race with other tests'
//! telemetry expectations.

mod common;

use std::collections::BTreeSet;

use sherlock_obs::json::Json;
use sherlock_serve::{spawn, Client, ServeConfig};

/// One span/event record pulled back out of the JSONL file.
#[derive(Debug)]
struct Record {
    typ: String,
    name: String,
    thread: String,
    depth: Option<u64>,
    start_us: Option<u64>,
    dur_us: Option<u64>,
    trace_id: Option<u64>,
    session: Option<String>,
    seq: Option<u64>,
}

fn parse_records(path: &std::path::Path) -> Vec<Record> {
    let text = std::fs::read_to_string(path).expect("read jsonl");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let d = Json::parse(l).unwrap_or_else(|e| panic!("invalid JSONL line {l:?}: {e}"));
            let s = |k: &str| d.get(k).and_then(Json::as_str).map(str::to_string);
            let n = |k: &str| d.get(k).and_then(Json::as_u64);
            Record {
                typ: s("type").unwrap_or_default(),
                name: s("name").unwrap_or_default(),
                thread: s("thread").unwrap_or_default(),
                depth: n("depth"),
                start_us: n("start_us"),
                dur_us: n("dur_us"),
                trace_id: n("trace_id"),
                session: s("session"),
                seq: n("seq"),
            }
        })
        .collect()
}

#[test]
fn traced_request_reconstructs_one_span_tree() {
    let dir = std::env::temp_dir().join(format!("sherlock-trace-tree-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let jsonl = dir.join("trace.jsonl");
    sherlock_obs::set_jsonl_file(jsonl.to_str().expect("utf8 path")).expect("install sink");

    let server = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("spawn server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let session = "tree-test";
    for t in common::app_traces("App-1", 2) {
        let r = client.absorb_trace(session, &t).expect("absorb");
        assert!(r.ok, "absorb failed: {:?}", r.error);
    }
    let r = client.call("solve", session, vec![]).expect("solve");
    assert!(r.ok, "solve failed: {:?}", r.error);

    server.shutdown();
    let _ = server.join();
    sherlock_obs::flush_jsonl();

    let records = parse_records(&jsonl);
    let ours: Vec<&Record> = records
        .iter()
        .filter(|r| r.session.as_deref() == Some(session))
        .collect();
    assert!(
        !ours.is_empty(),
        "no traced records for session {session:?}"
    );

    // One connection → one trace id across every span and event.
    let ids: BTreeSet<u64> = ours.iter().filter_map(|r| r.trace_id).collect();
    assert_eq!(ids.len(), 1, "expected one trace_id, got {ids:?}");

    // Requests are distinguished by seq; the two absorbs and the solve each
    // contribute records.
    let seqs: BTreeSet<u64> = ours.iter().filter_map(|r| r.seq).collect();
    assert_eq!(seqs, BTreeSet::from([0, 1, 2]), "one seq per request");

    for &seq in &seqs {
        let in_req: Vec<&&Record> = ours
            .iter()
            .filter(|r| r.seq == Some(seq) && r.typ == "span")
            .collect();
        // Exactly one root: the worker's serve.request span at depth 0.
        let roots: Vec<&&&Record> = in_req.iter().filter(|r| r.depth == Some(0)).collect();
        assert_eq!(
            roots.len(),
            1,
            "seq {seq}: exactly one depth-0 span, got {roots:?}"
        );
        let root = roots[0];
        assert_eq!(root.name, "serve.request");
        let root_start = root.start_us.expect("root start");
        let root_end = root_start + root.dur_us.expect("root dur");

        // Every other span of this request nests inside the root: same
        // worker thread, positive depth, and timing within the root's
        // interval — i.e. the records connect into one tree.
        for r in &in_req {
            if r.depth == Some(0) {
                continue;
            }
            assert_eq!(
                r.thread, root.thread,
                "span {:?} crossed threads within one request",
                r.name
            );
            assert!(r.depth.expect("depth") > 0);
            let start = r.start_us.expect("start");
            let end = start + r.dur_us.expect("dur");
            assert!(
                start >= root_start && end <= root_end + 1,
                "span {:?} [{start}, {end}] outside root [{root_start}, {root_end}]",
                r.name
            );
        }

        // The reader thread's admission event carries the same identity,
        // linking the cross-thread hop into the tree.
        let enqueue = ours
            .iter()
            .find(|r| r.typ == "event" && r.name == "serve.enqueue" && r.seq == Some(seq));
        let e = enqueue.unwrap_or_else(|| panic!("seq {seq}: no serve.enqueue event"));
        assert_eq!(e.trace_id, root.trace_id);
        assert_ne!(e.thread, root.thread, "enqueue happens on the reader");
    }

    // The solve request produced solver flight-recorder events inside the
    // same trace (lp.solve from the simplex, session.solve from the memo
    // layer).
    assert!(
        ours.iter()
            .any(|r| r.typ == "event" && r.name == "session.solve"),
        "no session.solve flight event in the trace"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
