//! Shared helpers for the serve integration tests.

use sherlock_apps::app_by_id;
use sherlock_core::SherLockConfig;
use sherlock_sim::SimConfig;
use sherlock_trace::Trace;

/// Runs `app_id`'s tests (cycling) under the default instrumentation and
/// returns `n` traces, seeded deterministically.
pub fn app_traces(app_id: &str, n: usize) -> Vec<Trace> {
    let app = app_by_id(app_id).expect("bundled app");
    let cfg = SherLockConfig::default();
    (0..n)
        .map(|i| {
            let test = &app.tests[i % app.tests.len()];
            let mut sim_cfg = SimConfig::with_seed(0xA11C_E000 + i as u64);
            sim_cfg.instrument = cfg.instrument.clone();
            test.run(sim_cfg).trace
        })
        .collect()
}
