//! Observer-side analyses: acquire/release window extraction and method
//! duration extraction over large traces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sherlock_trace::windows::{self, WindowConfig};
use sherlock_trace::{durations, OpRef, Time, Trace, TraceBuilder};

fn synthetic_trace(events: usize) -> Trace {
    let mut tb = TraceBuilder::new();
    let fields: Vec<_> = (0..16)
        .map(|i| {
            (
                OpRef::field_write("Obs.Cls", format!("f{i}")).intern(),
                OpRef::field_read("Obs.Cls", format!("f{i}")).intern(),
            )
        })
        .collect();
    let m_begin = OpRef::app_begin("Obs.Cls", "work").intern();
    let m_end = OpRef::app_end("Obs.Cls", "work").intern();
    for e in 0..events {
        let t = Time::from_micros(e as u64);
        let thread = (e % 3) as u32;
        match e % 5 {
            0 => tb.push(t, thread, fields[e % 16].0, (e % 16) as u64 + 1),
            1 | 2 => tb.push(t, thread, fields[e % 16].1, (e % 16) as u64 + 1),
            3 => tb.push(t, thread, m_begin, 1),
            _ => tb.push(t, thread, m_end, 1),
        }
    }
    tb.finish()
}

fn bench_observer(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let trace = synthetic_trace(n);
        let cfg = WindowConfig::default();
        group.bench_with_input(BenchmarkId::new("extract_windows", n), &trace, |b, t| {
            b.iter(|| windows::extract(t, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("extract_durations", n), &trace, |b, t| {
            b.iter(|| durations::extract(t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observer);
criterion_main!(benches);
