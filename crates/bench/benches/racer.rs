//! FastTrack throughput over traces, with and without synchronization specs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sherlock_racer::{detect, SyncSpec};
use sherlock_sim::prims::{Monitor, SimThread, TracedVar};
use sherlock_sim::{Sim, SimConfig};
use sherlock_trace::Trace;

fn locked_trace(iterations: u32) -> Trace {
    Sim::new(SimConfig::with_seed(99))
        .run(move || {
            let m = Monitor::new();
            let v = TracedVar::new("RaceBench", "shared", 0u32);
            let (m2, v2) = (m.clone(), v.clone());
            let t = SimThread::start("RaceBench", "Worker", move || {
                for _ in 0..iterations {
                    m2.with_lock(|| {
                        v2.update(|x| x + 1);
                    });
                }
            });
            for _ in 0..iterations {
                m.with_lock(|| {
                    v.update(|x| x + 1);
                });
            }
            t.join();
        })
        .trace
}

fn bench_racer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fasttrack");
    for &iters in &[50u32, 400] {
        let trace = locked_trace(iters);
        let manual = SyncSpec::manual();
        let empty = SyncSpec::empty();
        group.bench_with_input(
            BenchmarkId::new("manual_spec", trace.len()),
            &trace,
            |b, t| b.iter(|| detect(t, &manual)),
        );
        group.bench_with_input(
            BenchmarkId::new("empty_spec", trace.len()),
            &trace,
            |b, t| b.iter(|| detect(t, &empty)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_racer);
criterion_main!(benches);
