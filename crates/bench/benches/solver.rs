//! Solver scaling: LP encode+solve time against the number of observed
//! windows and candidate operations (the paper attributes 94% overhead to
//! solving).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sherlock_core::{solver, Observations, SherLockConfig};
use sherlock_trace::windows::{Candidate, Window};
use sherlock_trace::{ObjectId, OpRef, ThreadId, Time};

fn synthetic_observations(num_pairs: usize, windows_per_pair: usize) -> Observations {
    let mut obs = Observations::new();
    for p in 0..num_pairs {
        let class = format!("Bench.C{}", p % 7);
        let w = OpRef::field_write(&class, format!("f{p}")).intern();
        let r = OpRef::field_read(&class, format!("f{p}")).intern();
        let rel_m = OpRef::app_end(&class, format!("publish{}", p % 5)).intern();
        let acq_m = OpRef::app_begin(&class, format!("consume{}", p % 5)).intern();
        for k in 0..windows_per_pair {
            let window = Window {
                a_op: w,
                b_op: r,
                a_thread: ThreadId(0),
                b_thread: ThreadId(1),
                a_time: Time::from_micros((p * windows_per_pair + k) as u64 * 10),
                b_time: Time::from_micros((p * windows_per_pair + k) as u64 * 10 + 5),
                object: ObjectId(p as u64 + 1),
                release: vec![
                    Candidate { op: w, count: 1 },
                    Candidate {
                        op: rel_m,
                        count: (k % 3 + 1) as u32,
                    },
                ],
                acquire: vec![
                    Candidate {
                        op: r,
                        count: (k % 4 + 1) as u32,
                    },
                    Candidate {
                        op: acq_m,
                        count: 1,
                    },
                ],
                release_capable: true,
                acquire_capable: true,
            };
            obs.add_window(&window);
        }
        obs.finish_run();
    }
    obs
}

fn bench_solver(c: &mut Criterion) {
    let cfg = SherLockConfig::default();
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for &pairs in &[10usize, 40, 160] {
        let obs = synthetic_observations(pairs, 5);
        group.bench_with_input(BenchmarkId::new("solve", pairs * 5), &obs, |b, obs| {
            b.iter(|| solver::solve(obs, &cfg).expect("solvable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
