//! End-to-end overhead: a representative unit test run bare (instrumentation
//! disabled) vs traced vs a full SherLock round — the paper's Sec. 5.6
//! overhead study as a benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use sherlock_apps::app_by_id;
use sherlock_core::{SherLock, SherLockConfig};
use sherlock_sim::{InstrumentConfig, SimConfig};

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);

    let app = app_by_id("App-2").expect("App-2 exists");
    let test = app.tests[0].clone();

    group.bench_function("bare_run", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::with_seed(1);
            cfg.instrument = InstrumentConfig {
                skip_method_substrings: vec![String::new()],
                classify_unsafe_apis: false,
            };
            test.run(cfg)
        })
    });

    group.bench_function("traced_run", |b| {
        b.iter(|| test.run(SimConfig::with_seed(1)))
    });

    group.bench_function("full_round", |b| {
        let app = app_by_id("App-2").expect("App-2 exists");
        b.iter(|| {
            let mut sl = SherLock::new(SherLockConfig::default());
            sl.run_round(&app.tests).expect("solver failed");
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
