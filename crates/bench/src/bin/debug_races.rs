//! Diagnostic: per-test first races under Manual_dr and SherLock_dr.

use sherlock_apps::{all_apps, app_by_id};
use sherlock_bench::run_inference;
use sherlock_core::SherLockConfig;
use sherlock_racer::{first_race, SyncSpec};
use sherlock_sim::SimConfig;

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let id = std::env::args().nth(1).unwrap_or_else(|| "App-1".into());
    let apps = if id == "all" {
        all_apps()
    } else {
        vec![app_by_id(&id).unwrap()]
    };
    for app in apps {
        let sl = run_inference(&app, &SherLockConfig::default(), 3);
        let manual = app.truth.manual_spec();
        let inferred = SyncSpec::from_report(sl.report());
        println!("== {}", app.id);
        for (i, test) in app.tests.iter().enumerate() {
            let run = test.run(SimConfig::with_seed(0xD00Du64.wrapping_add(i as u64)));
            for (name, spec) in [("manual ", &manual), ("sherlock", &inferred)] {
                match first_race(&run.trace, spec) {
                    Some(r) => println!(
                        "  {name} {:28} -> {} race at {} ({:?} {} / {})",
                        test.name(),
                        if app.truth.is_true_race(&r.location) {
                            "TRUE "
                        } else {
                            "false"
                        },
                        r.location,
                        r.kind,
                        r.prior_op
                            .map(|o| o.resolve().to_string())
                            .unwrap_or_default(),
                        r.current_op.resolve(),
                    ),
                    None => println!("  {name} {:28} -> no race", test.name()),
                }
            }
        }
    }
}
