//! Regenerates paper Table 7: sensitivity of the `Near` window.

use sherlock_apps::all_apps;
use sherlock_bench::{cells, run_inference, score, unique_correct, unique_ops, TablePrinter};
use sherlock_core::SherLockConfig;
use sherlock_trace::Time;

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let nears = [
        ("0.01s", Time::from_millis(10)),
        ("1s", Time::from_secs(1)),
        ("100s", Time::from_secs(100)),
    ];
    let p = TablePrinter::new(&[10, 9, 8]);
    println!("Table 7: Sensitivity of Near (unique sums across 8 apps, 3 rounds)");
    println!("{}", p.row(cells!["Near", "#correct", "#total"]));
    println!("{}", p.rule());
    for (name, near) in nears {
        let mut cfg = SherLockConfig::default();
        cfg.near = near;
        let mut scores = Vec::new();
        for app in all_apps() {
            let sl = run_inference(&app, &cfg, 3);
            scores.push(score(&app, sl.report()));
        }
        println!(
            "{}",
            p.row(cells![
                name,
                unique_correct(&scores).len(),
                unique_ops(&scores).len()
            ])
        );
    }
    println!(
        "\n(paper: 47/85 at 0.01s, 122/155 at 1s, 117/183 at 100s — too small\n misses pairs, too large floods windows with noise)"
    );
}
