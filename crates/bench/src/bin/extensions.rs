//! Evaluates the paper's two discussed-but-unimplemented variants:
//!
//! 1. **Probabilistic delay injection** (footnote 1): "we also tried
//!    injecting the delay probabilistically, but did not see much difference
//!    in inference results."
//! 2. **Soft Single-Role** (§5.5): "Future SherLock can try turning the
//!    Single-Role assumption into a soft constraint" — recovering the role
//!    `UpgradeToWriterLock` loses under the hard constraint.

use sherlock_apps::all_apps;
use sherlock_bench::{cells, run_inference, score, unique_correct, unique_ops, TablePrinter};
use sherlock_core::{Role, SherLockConfig};
use sherlock_trace::OpRef;

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let variants: Vec<(&str, SherLockConfig)> = vec![
        (
            "baseline (always delay, hard SR)",
            SherLockConfig::default(),
        ),
        ("probabilistic delays (p=0.5)", {
            let mut c = SherLockConfig::default();
            c.delay_probability = 0.5;
            c
        }),
        ("soft Single-Role", {
            let mut c = SherLockConfig::default();
            c.soft_single_role = true;
            c
        }),
    ];

    let p = TablePrinter::new(&[34, 9, 7, 10, 14]);
    println!("Extensions study (paper footnote 1 and Sec. 5.5 future work)");
    println!(
        "{}",
        p.row(cells![
            "Variant",
            "#Correct",
            "#Total",
            "Precision",
            "Upgrade roles"
        ])
    );
    println!("{}", p.rule());

    let upg_b =
        OpRef::lib_begin("System.Threading.ReaderWriterLock", "UpgradeToWriterLock").intern();
    let upg_e = OpRef::lib_end("System.Threading.ReaderWriterLock", "UpgradeToWriterLock").intern();

    for (name, cfg) in variants {
        let mut scores = Vec::new();
        let mut upgrade_roles = 0usize;
        for app in all_apps() {
            let sl = run_inference(&app, &cfg, 3);
            if sl.report().contains(upg_b, Role::Release) {
                upgrade_roles += 1;
            }
            if sl.report().contains(upg_e, Role::Acquire) {
                upgrade_roles += 1;
            }
            scores.push(score(&app, sl.report()));
        }
        let correct = unique_correct(&scores).len();
        let total = unique_ops(&scores).len();
        println!(
            "{}",
            p.row(cells![
                name,
                correct,
                total,
                format!("{:.0}%", 100.0 * correct as f64 / total.max(1) as f64),
                format!("{upgrade_roles}/2")
            ])
        );
    }
    println!(
        "\n(expected: probabilistic delays barely move the numbers, matching the\n paper's footnote; soft Single-Role recovers both UpgradeToWriterLock\n roles that the hard constraint forces SherLock to choose between)"
    );
}
