//! Full-sweep fleet benchmark: generate a 200-app deterministic fleet from
//! the idiom grammar, run 2-round inference over every app, and report
//! per-idiom precision/recall plus Table-2-style verdict counts. Writes
//! `results/BENCH_fleet.json` (scores + telemetry) and prints the per-idiom
//! table.

use std::time::Instant;

use sherlock_fleet::{generate_fleet, score_fleet, GrammarConfig};
use sherlock_obs::json::Json;

const APPS: usize = 200;
const ROUNDS: usize = 2;
const BASE_SEED: u64 = 0xf1ee7;

fn main() {
    sherlock_sim::install_sim_panic_hook();
    sherlock_obs::init_from_env();

    println!("Fleet benchmark ({APPS} generated apps, {ROUNDS} rounds each)\n");
    let base = sherlock_obs::snapshot();
    let wall_start = Instant::now();
    let apps = generate_fleet(&GrammarConfig::default(), APPS, BASE_SEED);
    let score = score_fleet(&apps, ROUNDS).expect("fleet solves");
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let delta = sherlock_obs::snapshot().delta(&base);

    print!("{}", score.render());

    let doc = Json::Obj(vec![
        ("benchmark".to_string(), Json::from("fleet")),
        ("apps".to_string(), Json::from(APPS)),
        ("rounds".to_string(), Json::from(ROUNDS)),
        ("base_seed".to_string(), Json::from(BASE_SEED)),
        ("wall_ns".to_string(), Json::from(wall_ns)),
        ("scores".to_string(), score.to_json()),
        ("telemetry".to_string(), delta.to_json()),
    ]);
    let path = sherlock_bench::results_path("BENCH_fleet.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_fleet.json");

    let count = |name: &str| delta.counters.get(name).copied().unwrap_or(0);
    println!(
        "\ntotal {:.1} ms wall; {} windows extracted, {} simplex pivots across {} solves",
        wall_ns as f64 / 1e6,
        count("windows.extracted"),
        count("simplex.pivots"),
        count("simplex.solves"),
    );
    println!("wrote {}", path.display());
}
