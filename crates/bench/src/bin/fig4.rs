//! Regenerates paper Figure 4: correctly inferred unique synchronizations by
//! round, under different Perturber and feedback settings.

use sherlock_apps::all_apps;
use sherlock_bench::{score, unique_correct};
use sherlock_core::{Feedback, SherLock, SherLockConfig};

fn main() {
    sherlock_sim::install_sim_panic_hook();
    const ROUNDS: usize = 6;
    let variants: Vec<(&str, Feedback)> = vec![
        ("SherLock (full)", Feedback::default()),
        (
            "no delay injection",
            Feedback {
                inject_delays: false,
                ..Feedback::default()
            },
        ),
        (
            "no accumulation",
            Feedback {
                accumulate: false,
                ..Feedback::default()
            },
        ),
        (
            "no race removal",
            Feedback {
                race_removal: false,
                ..Feedback::default()
            },
        ),
    ];

    println!("Figure 4: correct unique syncs per round, by Perturber/feedback setting\n");
    print!("{:<22}", "setting \\ round");
    for r in 1..=ROUNDS {
        print!("{r:>6}");
    }
    println!();

    for (name, fb) in variants {
        let mut cfg = SherLockConfig::default();
        cfg.feedback = fb;
        // One session per app, stepped round by round.
        let apps = all_apps();
        let mut sessions: Vec<SherLock> = apps.iter().map(|_| SherLock::new(cfg.clone())).collect();
        print!("{name:<22}");
        for _round in 0..ROUNDS {
            let mut scores = Vec::new();
            for (app, sl) in apps.iter().zip(&mut sessions) {
                sl.run_round(&app.tests).expect("solver failed");
                scores.push(score(app, sl.report()));
            }
            print!("{:>6}", unique_correct(&scores).len());
        }
        println!();
    }
    println!(
        "\n(paper: the full setting climbs through rounds 1-3 then stabilizes\n above 120; no-delay and no-accumulation plateau around or below 90)"
    );
}
