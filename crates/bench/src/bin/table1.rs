//! Regenerates paper Table 1: the benchmark-application inventory.

use sherlock_apps::all_apps;
use sherlock_bench::{cells, TablePrinter};

fn main() {
    let p = TablePrinter::new(&[6, 12, 8, 7]);
    println!("Table 1: Applications in benchmarks");
    println!("{}", p.row(cells!["ID", "Name", "LoC", "#Tests"]));
    println!("{}", p.rule());
    let mut loc = 0;
    let mut tests = 0;
    for app in all_apps() {
        println!(
            "{}",
            p.row(cells![app.id, app.name, app.loc, app.num_tests()])
        );
        loc += app.loc;
        tests += app.num_tests();
    }
    println!("{}", p.rule());
    println!("{}", p.row(cells!["Sum", "", loc, tests]));
}
