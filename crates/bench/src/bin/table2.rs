//! Regenerates paper Table 2: SherLock inferred results after 3 rounds.
//!
//! Columns: true synchronizations, data-racy misclassifications,
//! instrumentation errors, and plain false positives, per application.

use sherlock_apps::{all_apps, Verdict};
use sherlock_bench::{cells, run_inference, score, unique_correct, unique_ops, TablePrinter};
use sherlock_core::SherLockConfig;

fn main() {
    sherlock_sim::install_sim_panic_hook(); // seeded racy assertions fire by design
    let cfg = SherLockConfig::default();
    let p = TablePrinter::new(&[6, 6, 10, 14, 9, 8]);
    println!("Table 2: SherLock inferred results after 3 rounds");
    println!(
        "{}",
        p.row(cells![
            "ID",
            "Syncs",
            "Data Racy",
            "Instr. Errors",
            "Not Sync",
            "Recall"
        ])
    );
    println!("{}", p.rule());

    let mut scores = Vec::new();
    let mut totals = [0usize; 4];
    for app in all_apps() {
        let sl = run_inference(&app, &cfg, 3);
        let s = score(&app, sl.report());
        let row = [
            s.count(Verdict::TrueSync),
            s.count(Verdict::DataRacy),
            s.count(Verdict::InstrError),
            s.count(Verdict::NotSync),
        ];
        for (t, r) in totals.iter_mut().zip(row) {
            *t += r;
        }
        println!(
            "{}",
            p.row(cells![
                app.id,
                row[0],
                row[1],
                row[2],
                row[3],
                format!("{}/{}", s.groups_covered, s.groups_total)
            ])
        );
        scores.push(s);
    }
    println!("{}", p.rule());
    let uniq = unique_correct(&scores).len();
    println!(
        "{}",
        p.row(cells![
            "Sum",
            format!("{} ({})", totals[0], uniq),
            totals[1],
            totals[2],
            totals[3],
            ""
        ])
    );
    let all_uniq = unique_ops(&scores).len();
    println!(
        "\ntotal inferred (incl. misclassifications): {} ({} unique); precision {:.0}%",
        totals.iter().sum::<usize>(),
        all_uniq,
        100.0 * totals[0] as f64 / totals.iter().sum::<usize>().max(1) as f64
    );
    println!("(paper: 133 total, 122 unique true syncs, few false positives)");
}
