//! Regenerates paper Table 3: Manual_dr vs SherLock_dr in race detection
//! (only the first data race reported in each test run is counted).

use sherlock_apps::all_apps;
use sherlock_bench::{cells, race_eval, run_inference, TablePrinter};
use sherlock_core::SherLockConfig;
use sherlock_racer::SyncSpec;

fn main() {
    sherlock_sim::install_sim_panic_hook(); // seeded racy assertions fire by design
    let cfg = SherLockConfig::default();
    let p = TablePrinter::new(&[6, 11, 13, 12, 14]);
    println!("Table 3: SherLock vs manual annotation in race detection");
    println!(
        "{}",
        p.row(cells![
            "ID",
            "True/Manual",
            "True/SherLock",
            "False/Manual",
            "False/SherLock"
        ])
    );
    println!("{}", p.rule());
    let mut sums = [0usize; 4];
    for app in all_apps() {
        let sl = run_inference(&app, &cfg, 3);
        let manual = app.truth.manual_spec();
        let inferred = SyncSpec::from_report(sl.report());
        let m = race_eval(&app, &manual, 0xD00D);
        let s = race_eval(&app, &inferred, 0xD00D);
        let row = [m.true_races, s.true_races, m.false_races, s.false_races];
        for (t, r) in sums.iter_mut().zip(row) {
            *t += r;
        }
        println!("{}", p.row(cells![app.id, row[0], row[1], row[2], row[3]]));
    }
    println!("{}", p.rule());
    println!(
        "{}",
        p.row(cells!["Sum", sums[0], sums[1], sums[2], sums[3]])
    );
    println!(
        "\n(paper: Manual_dr 4 true / 391 false; SherLock_dr 29 true / 51 false —\n expected shape: SherLock_dr finds more true and far fewer false races)"
    );
}
