//! Regenerates paper Table 5: inference with individual hypotheses and
//! properties ablated.

use sherlock_apps::all_apps;
use sherlock_bench::{cells, run_inference, score, unique_correct, unique_ops, TablePrinter};
use sherlock_core::{Hypotheses, SherLockConfig};

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let variants: Vec<(&str, Hypotheses)> = vec![
        ("SherLock", Hypotheses::default()),
        (
            "w/o Mostly are Protected",
            Hypotheses::without("mostly_protected"),
        ),
        (
            "w/o Synchronizations are Rare",
            Hypotheses::without("synchronizations_are_rare"),
        ),
        (
            "w/o Acq-Time Varies",
            Hypotheses::without("acquisition_time_varies"),
        ),
        (
            "w/o Mostly are Paired",
            Hypotheses::without("mostly_paired"),
        ),
        (
            "w/o Read-Acq & Write-Rel",
            Hypotheses::without("read_acq_write_rel"),
        ),
        ("w/o Single Role", Hypotheses::without("single_role")),
    ];

    let p = TablePrinter::new(&[30, 9, 7, 10]);
    println!("Table 5: Inference with or without certain hypothesis");
    println!(
        "{}",
        p.row(cells!["Variant", "#Correct", "#Total", "Precision"])
    );
    println!("{}", p.rule());

    for (name, hyp) in variants {
        let mut cfg = SherLockConfig::default();
        cfg.hypotheses = hyp;
        let mut scores = Vec::new();
        for app in all_apps() {
            let sl = run_inference(&app, &cfg, 3);
            scores.push(score(&app, sl.report()));
        }
        let correct = unique_correct(&scores).len();
        let total = unique_ops(&scores).len();
        let precision = if total == 0 {
            "n/a".to_string()
        } else {
            format!("{:.0}%", 100.0 * correct as f64 / total as f64)
        };
        println!("{}", p.row(cells![name, correct, total, precision]));
    }
    println!(
        "\n(paper: full SherLock 122/155 = 79%; w/o Mostly-Protected 0/0;\n w/o Rare 112/271 = 41%; every other ablation loses correct inferences)"
    );
}
