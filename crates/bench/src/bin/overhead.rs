//! Regenerates the paper's §5.6 overhead study: the cost of applying
//! SherLock to a test run, split into tracing, solving, and delay injection,
//! against a baseline without instrumentation or delays.
//!
//! The split comes from the observability layer's own phase spans
//! (`phase.observe` / `phase.windows` / `phase.solve` / `phase.perturb`)
//! rather than ad-hoc timers around the driver, so the numbers here are the
//! same ones `sherlock infer --profile` reports. Wall-clock measures the
//! simulator host cost; the virtual-time dilation from injected delays is
//! reported separately (that is the part a real deployment would feel as
//! slower tests).

use std::time::Instant;

use sherlock_apps::all_apps;
use sherlock_core::{SherLock, SherLockConfig};
use sherlock_sim::{InstrumentConfig, SimConfig};

fn main() {
    sherlock_sim::install_sim_panic_hook();
    println!("Overhead study (paper Sec. 5.6)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "app", "bare(ms)", "observe(ms)", "solve(ms)", "overhead", "delay dilation"
    );

    let mut tot_bare = 0.0;
    let mut tot_observe = 0.0;
    let mut tot_solve = 0.0;
    for app in all_apps() {
        // Baseline: tests without instrumentation (all methods skipped, no
        // access classification), no delays.
        let bare_start = Instant::now();
        let mut bare_virtual = 0u128;
        for (i, t) in app.tests.iter().enumerate() {
            let mut cfg = SimConfig::with_seed(7_000 + i as u64);
            cfg.instrument = InstrumentConfig {
                skip_method_substrings: vec![String::new()], // matches all
                classify_unsafe_apis: false,
            };
            let r = t.run(cfg);
            bare_virtual += u128::from(r.end_time.as_nanos());
        }
        let bare = bare_start.elapsed().as_secs_f64() * 1e3;

        // Three instrumented rounds (the last two with delay injection); the
        // per-phase split is read back from the session's telemetry.
        let base = sherlock_obs::snapshot();
        let wall_start = Instant::now();
        let mut sl = SherLock::new(SherLockConfig::default());
        for _ in 0..3 {
            sl.run_round(&app.tests).expect("solver failed");
        }
        let wall = wall_start.elapsed().as_secs_f64() * 1e3;
        let delta = sherlock_obs::snapshot().delta(&base);
        let phase_ms = |name: &str| {
            delta
                .spans
                .get(name)
                .map_or(0.0, |s| s.total_ns as f64 / 1e6)
        };
        let observe = phase_ms("phase.observe") + phase_ms("phase.windows");
        let solve = phase_ms("phase.solve") + phase_ms("phase.perturb");

        // Virtual-time dilation from the injected delays.
        let mut delayed_virtual = 0u128;
        for (i, t) in app.tests.iter().enumerate() {
            let mut cfg = SimConfig::with_seed(7_000 + i as u64);
            cfg.delay_plan =
                sherlock_core::perturber::delay_plan(sl.report(), SherLockConfig::default().delay);
            let r = t.run(cfg);
            delayed_virtual += u128::from(r.end_time.as_nanos());
        }
        let dilation = delayed_virtual as f64 / bare_virtual.max(1) as f64;

        let overhead = (wall / 3.0) / bare.max(1e-6);
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>13.0}% {:>13.2}x",
            app.id,
            bare,
            observe / 3.0,
            solve / 3.0,
            (overhead - 1.0) * 100.0,
            dilation
        );
        tot_bare += bare;
        tot_observe += observe / 3.0;
        tot_solve += solve / 3.0;
    }
    println!(
        "\ntotals: bare {tot_bare:.1} ms, observe+windows per round {tot_observe:.1} ms, \
         solve+perturb per round {tot_solve:.1} ms"
    );
    println!(
        "(paper: 24%-800% per-test overhead, average 278%; tracing 170%,\n solving 94%, delay injection 156% — same order of magnitude expected)"
    );
}
