//! Regenerates the paper's §5.6 overhead study: the cost of applying
//! SherLock to a test run, split into tracing, solving, and delay injection,
//! against a baseline without instrumentation or delays.
//!
//! Wall-clock here measures the simulator host cost; the virtual-time
//! dilation from injected delays is reported separately (that is the part a
//! real deployment would feel as slower tests).

use std::time::Instant;

use sherlock_apps::all_apps;
use sherlock_core::{SherLock, SherLockConfig};
use sherlock_sim::{InstrumentConfig, SimConfig};

fn main() {
    std::panic::set_hook(Box::new(|_| {}));
    println!("Overhead study (paper Sec. 5.6)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "app", "bare(ms)", "traced(ms)", "solve(ms)", "overhead", "delay dilation"
    );

    let mut tot_bare = 0.0;
    let mut tot_traced = 0.0;
    let mut tot_solve = 0.0;
    for app in all_apps() {
        // Baseline: tests without instrumentation (all methods skipped, no
        // access classification), no delays.
        let bare_start = Instant::now();
        let mut bare_virtual = 0u128;
        for (i, t) in app.tests.iter().enumerate() {
            let mut cfg = SimConfig::with_seed(7_000 + i as u64);
            cfg.instrument = InstrumentConfig {
                skip_method_substrings: vec![String::new()], // matches all
                classify_unsafe_apis: false,
            };
            let r = t.run(cfg);
            bare_virtual += u128::from(r.end_time.as_nanos());
        }
        let bare = bare_start.elapsed().as_secs_f64() * 1e3;

        // Instrumented single round (tracing + window extraction), then the
        // Solver, then two more rounds with delay injection.
        let mut sl = SherLock::new(SherLockConfig::default());
        let traced_start = Instant::now();
        sl.run_round(&app.tests).expect("solver failed");
        let round1 = traced_start.elapsed().as_secs_f64() * 1e3;

        let solve_start = Instant::now();
        sl.run_round(&app.tests).expect("solver failed");
        sl.run_round(&app.tests).expect("solver failed");
        let rounds23 = solve_start.elapsed().as_secs_f64() * 1e3;

        // Virtual-time dilation from the injected delays.
        let mut delayed_virtual = 0u128;
        for (i, t) in app.tests.iter().enumerate() {
            let mut cfg = SimConfig::with_seed(7_000 + i as u64);
            cfg.delay_plan = sherlock_core::perturber::delay_plan(
                sl.report(),
                SherLockConfig::default().delay,
            );
            let r = t.run(cfg);
            delayed_virtual += u128::from(r.end_time.as_nanos());
        }
        let dilation = delayed_virtual as f64 / bare_virtual.max(1) as f64;

        let overhead = (round1 + rounds23 / 2.0) / bare.max(1e-6);
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>13.0}% {:>13.2}x",
            app.id,
            bare,
            round1,
            rounds23 / 2.0,
            (overhead - 1.0) * 100.0,
            dilation
        );
        tot_bare += bare;
        tot_traced += round1;
        tot_solve += rounds23 / 2.0;
    }
    println!(
        "\ntotals: bare {tot_bare:.1} ms, traced round {tot_traced:.1} ms, \
         per-round with solving {tot_solve:.1} ms"
    );
    println!(
        "(paper: 24%-800% per-test overhead, average 278%; tracing 170%,\n solving 94%, delay injection 156% — same order of magnitude expected)"
    );
}
