//! Regenerates the paper's §5.6 overhead study — the cost of applying
//! SherLock to a test run, split into tracing, solving, and delay injection,
//! against a baseline without instrumentation or delays — and measures the
//! cost of this repo's own observability layer: the same inference workload
//! with the full JSONL span/event stream enabled versus without.
//!
//! The §5.6 split comes from the observability layer's own phase spans
//! (`phase.observe` / `phase.windows` / `phase.solve` / `phase.perturb`)
//! rather than ad-hoc timers around the driver, so the numbers here are the
//! same ones `sherlock infer --profile` reports. Wall-clock measures the
//! simulator host cost; the virtual-time dilation from injected delays is
//! reported separately (that is the part a real deployment would feel as
//! slower tests).
//!
//! The whole report is written to `results/overhead.txt`. The bench exits
//! nonzero if full tracing costs more than 5% wall time — the budget the
//! flight recorder is designed to stay under.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use sherlock_apps::all_apps;
use sherlock_core::{SherLock, SherLockConfig};
use sherlock_sim::{InstrumentConfig, SimConfig};

/// Timed repetitions per tracing mode; best-of-N damps scheduler noise so
/// the 5% gate measures the sink, not the machine.
const TRACING_REPS: usize = 3;

/// Tracing overhead above this fails the bench.
const TRACING_BUDGET_PCT: f64 = 5.0;

/// Appends a line to the report and echoes it to stdout.
macro_rules! emit {
    ($report:expr, $($arg:tt)*) => {{
        let line = format!($($arg)*);
        println!("{line}");
        let _ = writeln!($report, "{line}");
    }};
}

fn main() -> ExitCode {
    sherlock_sim::install_sim_panic_hook();
    let mut report = String::new();
    emit!(report, "Overhead study (paper Sec. 5.6)\n");
    emit!(
        report,
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "app",
        "bare(ms)",
        "observe(ms)",
        "solve(ms)",
        "overhead",
        "delay dilation"
    );

    let mut tot_bare = 0.0;
    let mut tot_observe = 0.0;
    let mut tot_solve = 0.0;
    for app in all_apps() {
        // Baseline: tests without instrumentation (all methods skipped, no
        // access classification), no delays.
        let bare_start = Instant::now();
        let mut bare_virtual = 0u128;
        for (i, t) in app.tests.iter().enumerate() {
            let mut cfg = SimConfig::with_seed(7_000 + i as u64);
            cfg.instrument = InstrumentConfig {
                skip_method_substrings: vec![String::new()], // matches all
                classify_unsafe_apis: false,
            };
            let r = t.run(cfg);
            bare_virtual += u128::from(r.end_time.as_nanos());
        }
        let bare = bare_start.elapsed().as_secs_f64() * 1e3;

        // Three instrumented rounds (the last two with delay injection); the
        // per-phase split is read back from the session's telemetry.
        let base = sherlock_obs::snapshot();
        let wall_start = Instant::now();
        let mut sl = SherLock::new(SherLockConfig::default());
        for _ in 0..3 {
            sl.run_round(&app.tests).expect("solver failed");
        }
        let wall = wall_start.elapsed().as_secs_f64() * 1e3;
        let delta = sherlock_obs::snapshot().delta(&base);
        let phase_ms = |name: &str| {
            delta
                .spans
                .get(name)
                .map_or(0.0, |s| s.total_ns as f64 / 1e6)
        };
        let observe = phase_ms("phase.observe") + phase_ms("phase.windows");
        let solve = phase_ms("phase.solve") + phase_ms("phase.perturb");

        // Virtual-time dilation from the injected delays.
        let mut delayed_virtual = 0u128;
        for (i, t) in app.tests.iter().enumerate() {
            let mut cfg = SimConfig::with_seed(7_000 + i as u64);
            cfg.delay_plan =
                sherlock_core::perturber::delay_plan(sl.report(), SherLockConfig::default().delay);
            let r = t.run(cfg);
            delayed_virtual += u128::from(r.end_time.as_nanos());
        }
        let dilation = delayed_virtual as f64 / bare_virtual.max(1) as f64;

        let overhead = (wall / 3.0) / bare.max(1e-6);
        emit!(
            report,
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>13.0}% {:>13.2}x",
            app.id,
            bare,
            observe / 3.0,
            solve / 3.0,
            (overhead - 1.0) * 100.0,
            dilation
        );
        tot_bare += bare;
        tot_observe += observe / 3.0;
        tot_solve += solve / 3.0;
    }
    emit!(
        report,
        "\ntotals: bare {tot_bare:.1} ms, observe+windows per round {tot_observe:.1} ms, \
         solve+perturb per round {tot_solve:.1} ms"
    );
    emit!(
        report,
        "(paper: 24%-800% per-test overhead, average 278%; tracing 170%,\n solving 94%, delay injection 156% — same order of magnitude expected)"
    );

    // --- Tracing overhead: the full pipeline over every app, once with the
    // JSONL span/event stream (plus the flight-recorder events it gates)
    // enabled and once without. The untraced runs come FIRST because the
    // sink is process-global and cannot be uninstalled once installed.
    emit!(
        report,
        "\nTracing overhead (full JSONL span/event stream, best of {TRACING_REPS})\n"
    );
    let cfg = SherLockConfig::default();
    let run_workload = || {
        for app in all_apps() {
            let mut sl = SherLock::new(cfg.clone());
            sl.run_round(&app.tests).expect("solver failed");
        }
    };
    run_workload(); // warmup: page in code, warm allocator + memo layers

    let mut untraced = f64::INFINITY;
    for _ in 0..TRACING_REPS {
        let t = Instant::now();
        run_workload();
        untraced = untraced.min(t.elapsed().as_secs_f64());
    }

    let trace_path =
        std::env::temp_dir().join(format!("sherlock-overhead-{}.jsonl", std::process::id()));
    sherlock_obs::set_jsonl_file(trace_path.to_str().expect("utf8 temp path"))
        .expect("install JSONL sink");
    let mut traced = f64::INFINITY;
    for _ in 0..TRACING_REPS {
        let t = Instant::now();
        run_workload();
        sherlock_obs::sync_jsonl(); // charge the buffered writes to the run
        traced = traced.min(t.elapsed().as_secs_f64());
    }
    let trace_bytes = std::fs::metadata(&trace_path).map_or(0, |m| m.len());
    let _ = std::fs::remove_file(&trace_path);

    let overhead_pct = (traced / untraced.max(1e-9) - 1.0) * 100.0;
    emit!(
        report,
        "untraced {:>8.1} ms    traced {:>8.1} ms    overhead {overhead_pct:>+6.2}%    \
         ({trace_bytes} bytes of JSONL across traced reps)",
        untraced * 1e3,
        traced * 1e3
    );
    let pass = overhead_pct <= TRACING_BUDGET_PCT;
    emit!(
        report,
        "budget: {TRACING_BUDGET_PCT:.0}% — {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let path = sherlock_bench::results_path("overhead.txt");
    std::fs::write(&path, &report).expect("write overhead.txt");
    println!("\nwrote {}", path.display());

    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: full tracing costs {overhead_pct:.2}% wall time (budget {TRACING_BUDGET_PCT}%)"
        );
        ExitCode::FAILURE
    }
}
