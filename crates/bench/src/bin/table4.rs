//! Regenerates paper Table 4: breakdown of SherLock's false positives and
//! the false races SherLock_dr consequently reports, by cause.

use sherlock_apps::{all_apps, Verdict};
use sherlock_bench::{cells, race_reports, run_inference, score, TablePrinter};
use sherlock_core::SherLockConfig;
use sherlock_racer::SyncSpec;
use sherlock_trace::OpRef;

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let cfg = SherLockConfig::default();

    // Causes, mirroring the paper's rows.
    let mut false_sync = [0usize; 4]; // instr, double-role, dispose/static, other
    let mut false_races = [0usize; 4];
    let mut missed = [0usize; 4];

    for app in all_apps() {
        let sl = run_inference(&app, &cfg, 3);
        let s = score(&app, sl.report());
        for op in &s.ops {
            let bucket = match op.verdict {
                Verdict::TrueSync | Verdict::DataRacy => continue,
                Verdict::InstrError => 0,
                Verdict::NotSync => {
                    let r = op.op.resolve();
                    if r.member().contains("Upgrade") || r.member().contains("Downgrade") {
                        1
                    } else if r.member() == ".cctor"
                        || r.member().contains("Finalize")
                        || r.member().contains("Dispose")
                    {
                        2
                    } else {
                        3
                    }
                }
            };
            false_sync[bucket] += 1;
        }

        // Missed synchronizations by cause.
        for g in &app.truth.sync_groups {
            let covered = sl.report().inferred.iter().any(|i| g.matches(i.op, i.role));
            if !covered {
                let d = g.description.to_ascii_lowercase();
                let hidden = g.ops.iter().any(|&op| {
                    matches!(
                        op.resolve(),
                        OpRef::MethodBegin { ref method, .. } | OpRef::MethodEnd { ref method, .. }
                            if cfg.instrument.skips(method)
                    )
                });
                let bucket = if hidden {
                    0
                } else if d.contains("upgrade") {
                    1
                } else if d.contains("dispos") || d.contains("static") || d.contains("cctor") {
                    2
                } else {
                    3
                };
                missed[bucket] += 1;
            }
        }

        // False races under SherLock_dr, attributed by the same heuristic.
        let spec = SyncSpec::from_report(sl.report());
        for race in race_reports(&app, &spec, 0xD00D) {
            if app.truth.is_true_race(&race.location) {
                continue;
            }
            let loc = race.location.to_ascii_lowercase();
            let bucket = if app
                .truth
                .hidden_classes
                .iter()
                .any(|c| race.location.starts_with(c.as_str()))
            {
                0
            } else if loc.contains("classtable") || loc.contains("classcount") {
                1 // guarded by the double-role reader/writer lock
            } else if loc.contains("pendingchanges") || loc.contains("dispos") {
                2
            } else {
                3
            };
            false_races[bucket] += 1;
        }
    }

    let p = TablePrinter::new(&[16, 12, 13, 12]);
    println!("Table 4: Breakdown of false positives/negatives");
    println!(
        "{}",
        p.row(cells![
            "Cause",
            "#False Sync.",
            "#Missed Sync.",
            "#False Races"
        ])
    );
    println!("{}", p.rule());
    let rows = ["Instr. Errors", "Double Roles", "Dispose/Static", "Others"];
    for (i, name) in rows.iter().enumerate() {
        println!(
            "{}",
            p.row(cells![name, false_sync[i], missed[i], false_races[i]])
        );
    }
    println!("{}", p.rule());
    println!(
        "{}",
        p.row(cells![
            "Total",
            false_sync.iter().sum::<usize>(),
            missed.iter().sum::<usize>(),
            false_races.iter().sum::<usize>()
        ])
    );
    println!("\n(paper totals: 17 false syncs, 12 missed, 51 false races)");
}
