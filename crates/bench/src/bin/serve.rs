//! `sherlock-serve` load generator: spawns the daemon in-process (or
//! targets `--addr`), replays the eight bundled apps' traces — plus, with
//! `--fleet N`, N grammar-generated fleet apps — from N concurrent
//! clients, and reports per-request p50/p95/p99 latency plus throughput.
//! Verifies the protocol's delivery guarantees along the way — every
//! request gets exactly one response and responses arrive in request order
//! per connection — and exits nonzero on any violation or protocol error.
//!
//! The in-process daemon runs **durable** (oplog + snapshots in a temp
//! data directory) and the run finishes with a restart phase: the drained
//! daemon is replaced by a fresh one over the same data directory, every
//! client session is solved once more — rehydrate-on-miss under load — and
//! each rehydrated spec is byte-compared against the live daemon's final
//! spec. The report splits solve latency into *cold* (live session, state
//! in memory) and *rehydrated* (state rebuilt from disk on first touch).
//! Writes `results/BENCH_serve.json` (and, when the daemon runs
//! in-process, a collapsed-stack profile `results/serve.folded`).
//!
//! ```text
//! cargo run --release -p sherlock-bench --bin serve -- \
//!     [--clients N] [--seeds N] [--workers N] [--fleet N] [--addr HOST:PORT]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use sherlock_apps::all_apps;
use sherlock_bench::{cells, results_path, TablePrinter};
use sherlock_core::SherLockConfig;
use sherlock_fleet::{generate, GrammarConfig};
use sherlock_obs::json::Json;
use sherlock_serve::{spawn, Client, ServeConfig};
use sherlock_sim::SimConfig;
use sherlock_trace::{json as trace_json, Trace};

/// How often a client interleaves a `solve` between absorbs.
const SOLVE_EVERY: usize = 4;

/// One restart-phase solve: `(session label, Ok((latency, spec)) | Err)`.
type RestartSolve = (String, Result<(u64, Option<String>), String>);

/// Base seed for `--fleet` app generation (fleet app f uses `BASE + f`).
const FLEET_BASE_SEED: u64 = 0x000f_1ee7_0000;

struct Args {
    clients: usize,
    seeds: u64,
    workers: usize,
    fleet: usize,
    addr: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 8,
        seeds: 2,
        workers: 0,
        fleet: 0,
        addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--clients" => args.clients = value()?.parse().map_err(|e| format!("{e}"))?,
            "--seeds" => args.seeds = value()?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => args.workers = value()?.parse().map_err(|e| format!("{e}"))?,
            "--fleet" => args.fleet = value()?.parse().map_err(|e| format!("{e}"))?,
            "--addr" => args.addr = Some(value()?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.clients == 0 || args.seeds == 0 {
        return Err("--clients and --seeds must be positive".into());
    }
    Ok(args)
}

/// Exact percentile over client-side samples (nearest-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ClientOutcome {
    latencies_ns: Vec<u64>,
    requests: u64,
    busy: u64,
    errors: Vec<String>,
    /// Round trip of the final solve against the fully live session (the
    /// "cold" side of the cold/rehydrated split).
    final_solve_ns: Option<u64>,
    /// The spec that final solve returned — the restart phase must serve
    /// it byte-identically from the rehydrated session.
    final_spec: Option<String>,
}

/// One client's replay: absorb its app's traces (with interleaved solves),
/// then a pipelined absorb burst (exercising server-side batching), then a
/// final solve and (bundled apps only) a differential race_check. Checks
/// id echo and ordering on every response. `rendered` carries each trace's
/// pre-rendered JSON value (one serialization per corpus entry, shared by
/// every client replaying it).
fn run_client(
    addr: std::net::SocketAddr,
    session: &str,
    app_id: Option<&str>,
    traces: &[Trace],
    rendered: &[String],
) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies_ns: Vec::new(),
        requests: 0,
        busy: 0,
        errors: Vec::new(),
        final_solve_ns: None,
        final_spec: None,
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            out.errors.push(format!("connect: {e}"));
            return out;
        }
    };
    let mut expected_id = 0u64;

    // Phase 1: sequential absorbs with interleaved solves — each call's
    // round trip is one latency sample.
    for (i, trace_json) in rendered.iter().enumerate() {
        let line = client.absorb_trace_line(session, trace_json);
        let start = Instant::now();
        let r = client.call_raw(&line);
        timed(&mut out, &mut expected_id, "absorb_trace", r, start);
        if (i + 1) % SOLVE_EVERY == 0 {
            let start = Instant::now();
            let r = client.solve(session);
            timed(&mut out, &mut expected_id, "solve", r, start);
        }
    }

    // Phase 2: the same traces as one pipelined burst — the server batches
    // them under one session lock; ordering is still guaranteed.
    let burst: Vec<String> = rendered
        .iter()
        .map(|t| client.absorb_trace_line(session, t))
        .collect();
    let burst_len = burst.len();
    let start = Instant::now();
    match client.pipeline_raw(&burst) {
        Ok(responses) => {
            let per_request =
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX) / burst_len as u64;
            for resp in responses {
                out.requests += 1;
                if resp.id.as_u64() != Some(expected_id) {
                    out.errors.push(format!(
                        "burst: response id {:?} != expected {expected_id} (reordered?)",
                        resp.id
                    ));
                }
                expected_id += 1;
                if resp.busy {
                    out.busy += 1;
                } else if !resp.ok {
                    out.errors
                        .push(format!("burst absorb: {}", resp.error.unwrap_or_default()));
                } else {
                    out.latencies_ns.push(per_request);
                }
            }
        }
        Err(e) => out.errors.push(format!("burst: {e}")),
    }

    // Phase 3: final solve + (bundled apps) differential race_check
    // against ground truth. The solve's latency and spec feed the restart
    // phase's cold/rehydrated comparison.
    let start = Instant::now();
    let r = client.solve(session);
    if let Ok(resp) = &r {
        if resp.ok {
            out.final_solve_ns =
                Some(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            out.final_spec = resp
                .doc
                .get("spec")
                .and_then(Json::as_str)
                .map(str::to_string);
        }
    }
    timed(&mut out, &mut expected_id, "final solve", r, start);
    if let Some(app_id) = app_id {
        let start = Instant::now();
        let r = client.race_check(session, &traces[0], Some(app_id));
        timed(&mut out, &mut expected_id, "race_check", r, start);
    }
    out
}

/// Records one timed response: checks the id echo (ordering), classifies
/// busy/error/ok, and appends the latency sample on success.
fn timed(
    out: &mut ClientOutcome,
    expected_id: &mut u64,
    what: &str,
    r: std::io::Result<sherlock_serve::protocol::ParsedResponse>,
    start: Instant,
) {
    out.requests += 1;
    let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    match r {
        Ok(resp) => {
            if resp.id.as_u64() != Some(*expected_id) {
                out.errors.push(format!(
                    "{what}: response id {:?} != expected {expected_id} (reordered?)",
                    resp.id
                ));
            }
            *expected_id += 1;
            if resp.busy {
                out.busy += 1;
            } else if !resp.ok {
                out.errors
                    .push(format!("{what}: {}", resp.error.unwrap_or_default()));
            } else {
                out.latencies_ns.push(elapsed);
            }
        }
        Err(e) => out.errors.push(format!("{what}: {e}")),
    }
}

fn main() -> ExitCode {
    sherlock_sim::install_sim_panic_hook();
    sherlock_obs::init_from_env();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Pre-generate the replay corpus: every bundled app's tests × `seeds`
    // seeds, plus `--fleet` grammar-generated apps (those have no bundled
    // ground truth, so their entries skip the differential race_check).
    let apps = all_apps();
    let cfg = SherLockConfig::default();
    // (id, bundled, traces, pre-rendered trace JSON values). Rendering once
    // here keeps per-call serialization off every client's hot path.
    let mut corpus: Vec<(String, bool, Vec<Trace>, Vec<String>)> =
        Vec::with_capacity(apps.len() + args.fleet);
    let runs_for = |tests: &[sherlock_core::TestCase]| {
        let mut traces = Vec::new();
        for seed in 0..args.seeds {
            for (i, test) in tests.iter().enumerate() {
                let mut sim_cfg =
                    SimConfig::with_seed(seed.wrapping_mul(1031).wrapping_add(i as u64));
                sim_cfg.instrument = cfg.instrument.clone();
                traces.push(test.run(sim_cfg).trace);
            }
        }
        let rendered = traces
            .iter()
            .map(|t| trace_json::to_value(t).render())
            .collect();
        (traces, rendered)
    };
    for app in &apps {
        let (traces, rendered) = runs_for(&app.tests);
        corpus.push((app.id.to_string(), true, traces, rendered));
    }
    for f in 0..args.fleet {
        let app = generate(&GrammarConfig::default(), FLEET_BASE_SEED + f as u64);
        let (traces, rendered) = runs_for(&app.tests);
        corpus.push((app.id.clone(), false, traces, rendered));
    }
    let total_traces: usize = corpus.iter().map(|(_, _, t, _)| t.len()).sum();

    // Either target an external daemon or spawn one in-process. The
    // in-process daemon runs durable (oplog + snapshots in a temp data
    // directory) so the run can finish with a restart + rehydration phase;
    // its span stacks also land in this process's registry, so a
    // collapsed-stack profile of the run can be exported.
    let data_dir =
        std::env::temp_dir().join(format!("sherlock-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let serve_cfg = || {
        let mut scfg = ServeConfig::default();
        scfg.addr = "127.0.0.1:0".to_string();
        scfg.workers = args.workers;
        scfg.max_sessions = args.clients.max(64);
        scfg.data_dir = Some(data_dir.clone());
        scfg
    };
    let obs_base = sherlock_obs::snapshot();
    let (addr, spawned) = match &args.addr {
        Some(addr) => {
            let addr = addr
                .parse()
                .unwrap_or_else(|e| panic!("--addr {addr:?}: {e}"));
            (addr, None)
        }
        None => {
            let server = spawn(serve_cfg()).expect("spawn daemon");
            (server.addr(), Some(server))
        }
    };
    println!(
        "BENCH_serve: {} clients x {} apps ({} bundled + {} fleet), {total_traces} traces per replay round, daemon at {addr}",
        args.clients,
        corpus.len(),
        apps.len(),
        args.fleet,
    );

    // Fan the clients out; client c replays corpus entry c % len into its
    // own session.
    let wall = Instant::now();
    let outcomes: Vec<(String, ClientOutcome)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..args.clients {
            let (app_id, bundled, traces, rendered) = &corpus[c % corpus.len()];
            let session = format!("{app_id}-client{c}");
            let label = session.clone();
            handles.push((
                label,
                scope.spawn(move || {
                    run_client(
                        addr,
                        &session,
                        bundled.then_some(app_id.as_str()),
                        traces,
                        rendered,
                    )
                }),
            ));
        }
        handles
            .into_iter()
            .map(|(s, h)| (s, h.join().expect("client panicked")))
            .collect()
    });
    let wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);

    // Server-side view before shutdown.
    let server_stats = Client::connect(addr)
        .and_then(|mut c| c.stats())
        .ok()
        .map(|r| r.doc);
    let in_process = spawned.is_some();
    let summary = spawned.map(|server| {
        server.shutdown();
        server.join()
    });

    // Restart phase (in-process only): a fresh daemon over the same data
    // directory serves every session again — each first solve pays
    // rehydration (snapshot load + oplog replay) — and must return the
    // byte-identical spec the live daemon solved last.
    let mut rehydrated_ns: Vec<u64> = Vec::new();
    let mut restart_errors: Vec<String> = Vec::new();
    let mut rehydrations = 0u64;
    if in_process {
        let server = spawn(serve_cfg()).expect("respawn daemon");
        let restarted: Vec<RestartSolve> = std::thread::scope(|scope| {
            let addr = server.addr();
            let mut handles = Vec::new();
            for c in 0..args.clients {
                let (app_id, _, _, _) = &corpus[c % corpus.len()];
                let session = format!("{app_id}-client{c}");
                let label = session.clone();
                handles.push((
                    label,
                    scope.spawn(move || {
                        let mut client =
                            Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                        let start = Instant::now();
                        let resp = client.solve(&session).map_err(|e| format!("solve: {e}"))?;
                        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        if !resp.ok {
                            return Err(format!("solve: {}", resp.error.unwrap_or_default()));
                        }
                        let spec = resp
                            .doc
                            .get("spec")
                            .and_then(Json::as_str)
                            .map(str::to_string);
                        Ok((elapsed, spec))
                    }),
                ));
            }
            handles
                .into_iter()
                .map(|(s, h)| (s, h.join().expect("restart client panicked")))
                .collect()
        });
        for ((session, outcome), (_, live)) in restarted.iter().zip(&outcomes) {
            match outcome {
                Ok((ns, spec)) => {
                    rehydrated_ns.push(*ns);
                    if spec != &live.final_spec {
                        restart_errors.push(format!(
                            "[{session}] rehydrated spec differs from the live daemon's"
                        ));
                    }
                }
                Err(e) => restart_errors.push(format!("[{session}] {e}")),
            }
        }
        rehydrations = Client::connect(server.addr())
            .and_then(|mut c| c.stats())
            .ok()
            .and_then(|r| r.doc.get("rehydrations").and_then(Json::as_u64))
            .unwrap_or(0);
        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&data_dir);
    }

    // Collapsed-stack export (in-process daemon only — an external daemon's
    // spans live in its process, not ours).
    if in_process {
        let folded = sherlock_obs::snapshot().delta(&obs_base).render_folded();
        let folded_path = results_path("serve.folded");
        std::fs::write(&folded_path, folded).expect("write serve.folded");
        println!("wrote {} (collapsed stacks)", folded_path.display());
    }

    // Aggregate.
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|(_, o)| o.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let requests: u64 = outcomes.iter().map(|(_, o)| o.requests).sum();
    let busy: u64 = outcomes.iter().map(|(_, o)| o.busy).sum();
    let errors: Vec<String> = outcomes
        .iter()
        .flat_map(|(s, o)| o.errors.iter().map(move |e| format!("[{s}] {e}")))
        .collect();
    let p50 = percentile(&latencies, 0.50);
    let p95 = percentile(&latencies, 0.95);
    let p99 = percentile(&latencies, 0.99);
    let throughput = requests as f64 / (wall_ns as f64 / 1e9);

    // Cold vs. rehydrated solve split: the live daemon's final solves (all
    // session state hot in memory) against the restarted daemon's first
    // solves (each paying snapshot load + oplog replay on miss).
    let mut cold_ns: Vec<u64> = outcomes
        .iter()
        .filter_map(|(_, o)| o.final_solve_ns)
        .collect();
    cold_ns.sort_unstable();
    rehydrated_ns.sort_unstable();
    let solve_split = |sorted: &[u64]| {
        Json::Obj(vec![
            ("p50".to_string(), Json::from(percentile(sorted, 0.50))),
            ("p95".to_string(), Json::from(percentile(sorted, 0.95))),
            ("p99".to_string(), Json::from(percentile(sorted, 0.99))),
            ("samples".to_string(), Json::from(sorted.len())),
        ])
    };

    let t = TablePrinter::new(&[24, 10, 12, 12]);
    println!(
        "\n{}",
        t.row(cells!["client session", "requests", "ok", "busy"])
    );
    println!("{}", t.rule());
    for (session, o) in &outcomes {
        println!(
            "{}",
            t.row(cells![session, o.requests, o.latencies_ns.len(), o.busy])
        );
    }
    println!("{}", t.rule());
    println!(
        "\n{requests} requests in {:.1} ms ({throughput:.0} req/s), {busy} busy rejections",
        wall_ns as f64 / 1e6
    );
    println!(
        "latency p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6
    );
    if !rehydrated_ns.is_empty() {
        println!(
            "solve p50: cold {:.2} ms vs rehydrated {:.2} ms ({rehydrations} sessions rehydrated after restart)",
            percentile(&cold_ns, 0.50) as f64 / 1e6,
            percentile(&rehydrated_ns, 0.50) as f64 / 1e6,
        );
    }
    for e in &errors {
        eprintln!("error: {e}");
    }
    for e in &restart_errors {
        eprintln!("restart error: {e}");
    }

    let doc = Json::Obj(vec![
        ("benchmark".to_string(), Json::from("serve")),
        ("clients".to_string(), Json::from(args.clients)),
        ("apps".to_string(), Json::from(apps.len())),
        ("fleet_apps".to_string(), Json::from(args.fleet)),
        ("seeds_per_app".to_string(), Json::from(args.seeds)),
        ("traces_per_replay".to_string(), Json::from(total_traces)),
        ("wall_ns".to_string(), Json::from(wall_ns)),
        ("requests".to_string(), Json::from(requests)),
        ("busy_rejections".to_string(), Json::from(busy)),
        ("errors".to_string(), Json::from(errors.len())),
        ("throughput_rps".to_string(), Json::Num(throughput)),
        (
            "latency_ns".to_string(),
            Json::Obj(vec![
                ("p50".to_string(), Json::from(p50)),
                ("p95".to_string(), Json::from(p95)),
                ("p99".to_string(), Json::from(p99)),
                ("samples".to_string(), Json::from(latencies.len())),
            ]),
        ),
        (
            "cold_solve_ns".to_string(),
            if cold_ns.is_empty() {
                Json::Null
            } else {
                solve_split(&cold_ns)
            },
        ),
        (
            "rehydrated_solve_ns".to_string(),
            if rehydrated_ns.is_empty() {
                Json::Null
            } else {
                solve_split(&rehydrated_ns)
            },
        ),
        ("rehydrations".to_string(), Json::from(rehydrations)),
        (
            "restart_errors".to_string(),
            Json::from(restart_errors.len()),
        ),
        (
            "server_stats".to_string(),
            server_stats.unwrap_or(Json::Null),
        ),
        (
            "drain_summary".to_string(),
            summary.as_ref().map_or(Json::Null, |s| s.to_json()),
        ),
    ]);
    let path = results_path("BENCH_serve.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());

    if let Some(s) = &summary {
        if s.protocol_errors > 0 {
            eprintln!(
                "error: daemon counted {} protocol errors",
                s.protocol_errors
            );
            return ExitCode::FAILURE;
        }
    }
    if errors.is_empty() && restart_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} delivery/protocol violation(s), {} restart violation(s) — see above",
            errors.len(),
            restart_errors.len()
        );
        ExitCode::FAILURE
    }
}
