//! Regenerates the paper's §5.6 "Enhancing TSVD inference" study: TSVD's
//! delay-propagation happens-before heuristic vs the happens-before implied
//! by SherLock's inferred synchronizations, over conflicting thread-unsafe
//! API call pairs.

use sherlock_apps::all_apps;
use sherlock_bench::run_inference;
use sherlock_core::SherLockConfig;
use sherlock_racer::SyncSpec;
use sherlock_sim::SimConfig;
use sherlock_trace::Time;
use sherlock_tsvd::{conflicting_api_pairs, run_tsvd, synchronized_pairs};

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let cfg = SherLockConfig::default();
    let mut conflicting = 0usize;
    let mut tsvd_hb = 0usize;
    let mut sherlock_hb = 0usize;

    for app in all_apps() {
        let sl = run_inference(&app, &cfg, 3);
        let spec = SyncSpec::from_report(sl.report());
        for (i, test) in app.tests.iter().enumerate() {
            let seed = 0x75D0u64.wrapping_add(i as u64);
            let report = run_tsvd(test, 3, seed, Time::from_millis(100));
            tsvd_hb += report.hb_pairs().count();

            let run = test.run(SimConfig::with_seed(seed));
            conflicting += conflicting_api_pairs(&run.trace).len();
            sherlock_hb += synchronized_pairs(&run.trace, &spec).len();
        }
    }

    println!("TSVD enhancement study (paper Sec. 5.6)");
    println!("  conflicting thread-unsafe API pairs observed: {conflicting}");
    println!("  pairs with happens-before per TSVD's delay heuristic: {tsvd_hb}");
    println!("  pairs synchronized per SherLock-inferred happens-before: {sherlock_hb}");
    println!(
        "\n(paper: TSVD reports 8 pairs (7 truly synchronized); SherLock identifies\n 20 truly synchronized pairs — SherLock should cover at least TSVD's pairs)"
    );
}
