//! Schedule-exploration throughput benchmark.
//!
//! Headline number: **schedules/sec of the streaming campaign engine vs.
//! the pre-change Explorer at equal worker count (`jobs = 1`)**. The
//! baseline row pins the pre-change configuration — OS-thread simulator
//! backend, single exhaustive strategy, collect-everything retention — so
//! the speedup column isolates what this change bought: fiber scheduling,
//! probabilistic dedup, and bounded retention.
//!
//! Also measured and recorded, because the campaign's claims are about
//! more than throughput:
//!
//! - **memory bound**: the bloom filter's byte size, the retention caps,
//!   and the process peak RSS (`VmHWM`) before/after the campaign;
//! - **replay determinism**: the same `(config, seed)` is run twice and
//!   the distinct-hash digests must be identical;
//! - **per-strategy breakdown**: the bandit's per-arm runs/fresh split
//!   plus the legacy per-strategy table retained from the old benchmark.
//!
//! Writes `results/BENCH_explore.json` and prints summary tables.

use std::sync::Arc;
use std::time::Instant;

use sherlock_apps::{all_apps, App};
use sherlock_bench::{cells, TablePrinter};
use sherlock_obs::json::Json;
use sherlock_sim::{Campaign, CampaignConfig, ExploreConfig, Explorer, SimBackend, StrategyKind};

const APPS: [&str; 2] = ["App-1", "App-7"];
/// Baseline runs are expensive (one OS thread per simulated spawn), so the
/// sample is small; rates are reported per second regardless.
const BASELINE_RUNS: u64 = 96;
const CAMPAIGN_RUNS: u64 = 2048;
const REPLAY_RUNS: u64 = 512;
const LEGACY_RUNS_PER_TEST: u64 = 24;

/// The whole test suite run back to back — the campaign's native workload
/// shape, and what the `explore` verb executes server-side.
fn suite_workload(app: &App) -> Arc<dyn Fn() + Send + Sync> {
    let bodies: Vec<_> = app.tests.iter().map(|t| t.body()).collect();
    Arc::new(move || {
        for body in &bodies {
            body();
        }
    })
}

/// Peak resident set size in bytes, from `/proc/self/status` (Linux only).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    sherlock_sim::install_sim_panic_hook();
    sherlock_obs::init_from_env();

    let apps: Vec<_> = all_apps()
        .into_iter()
        .filter(|a| APPS.contains(&a.id))
        .collect();
    let wall_start = Instant::now();
    let t = TablePrinter::new(&[10, 18, 8, 10, 8, 10, 12, 10]);

    println!("Exploration benchmark (jobs=1, equal worker count)\n");
    println!(
        "{}",
        t.row(cells![
            "app",
            "engine",
            "runs",
            "distinct",
            "dedup%",
            "wall(ms)",
            "sched/sec",
            "speedup"
        ])
    );
    println!("{}", t.rule());

    let mut app_rows: Vec<Json> = Vec::new();
    let mut min_speedup = f64::INFINITY;
    let mut headline_sched_per_sec = 0f64;
    for app in &apps {
        let workload = suite_workload(app);

        // Pre-change equivalent: the Explorer as it shipped before this
        // change — OS-thread backend, one strategy, jobs=1.
        let mut ecfg = ExploreConfig::default();
        ecfg.runs = BASELINE_RUNS;
        ecfg.jobs = 1;
        ecfg.strategy = StrategyKind::RandomWalk;
        ecfg.sim.backend = SimBackend::OsThreads;
        let start = Instant::now();
        let baseline = Explorer::new(ecfg).run(Arc::clone(&workload));
        let baseline_secs = start.elapsed().as_secs_f64().max(1e-9);
        let baseline_rate = baseline.runs as f64 / baseline_secs;
        println!(
            "{}",
            t.row(cells![
                app.id,
                "explorer-os(pre)",
                baseline.runs,
                baseline.distinct.len(),
                format!(
                    "{:.1}",
                    100.0 * baseline.dedup_hits as f64 / baseline.runs as f64
                ),
                format!("{:.1}", baseline_secs * 1e3),
                format!("{baseline_rate:.0}"),
                "1.0x"
            ])
        );

        // The streaming campaign at the same worker count.
        let mut ccfg = CampaignConfig::default();
        ccfg.max_schedules = CAMPAIGN_RUNS;
        ccfg.jobs = 1;
        ccfg.summary_cap = 0;
        ccfg.report_cap = 0;
        let result = Campaign::new(ccfg).run(Arc::clone(&workload));
        let campaign_rate = result.sched_per_sec;
        let speedup = campaign_rate / baseline_rate;
        min_speedup = min_speedup.min(speedup);
        headline_sched_per_sec = headline_sched_per_sec.max(campaign_rate);
        let dedup_rate = result.dedup_hits as f64 / result.runs.max(1) as f64;
        println!(
            "{}",
            t.row(cells![
                app.id,
                "campaign(fibers)",
                result.runs,
                result.distinct,
                format!("{:.1}", 100.0 * dedup_rate),
                format!("{:.1}", result.elapsed.as_secs_f64() * 1e3),
                format!("{campaign_rate:.0}"),
                format!("{speedup:.1}x")
            ])
        );

        let arms: Vec<Json> = result
            .arms
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("label".to_string(), Json::from(a.label.as_str())),
                    ("runs".to_string(), Json::from(a.runs)),
                    ("fresh".to_string(), Json::from(a.fresh)),
                ])
            })
            .collect();
        app_rows.push(Json::Obj(vec![
            ("app".to_string(), Json::from(app.id)),
            (
                "baseline".to_string(),
                Json::Obj(vec![
                    (
                        "engine".to_string(),
                        Json::from("explorer-os-threads-prechange"),
                    ),
                    ("runs".to_string(), Json::from(baseline.runs)),
                    (
                        "distinct".to_string(),
                        Json::from(baseline.distinct.len() as u64),
                    ),
                    ("runs_per_sec".to_string(), Json::Num(baseline_rate)),
                ]),
            ),
            (
                "campaign".to_string(),
                Json::Obj(vec![
                    ("engine".to_string(), Json::from("campaign-fibers")),
                    ("runs".to_string(), Json::from(result.runs)),
                    ("distinct".to_string(), Json::from(result.distinct)),
                    ("dedup_hits".to_string(), Json::from(result.dedup_hits)),
                    ("dedup_rate".to_string(), Json::Num(dedup_rate)),
                    ("sched_per_sec".to_string(), Json::Num(campaign_rate)),
                    (
                        "filter_bytes".to_string(),
                        Json::from(result.filter_bytes as u64),
                    ),
                    (
                        "filter_occupancy".to_string(),
                        Json::Num(result.filter_occupancy),
                    ),
                    ("est_fp_rate".to_string(), Json::Num(result.est_fp_rate)),
                    ("arms".to_string(), Json::Arr(arms)),
                ]),
            ),
            ("speedup".to_string(), Json::Num(speedup)),
        ]));
    }
    println!("{}", t.rule());

    // Replay determinism: same (config, seed) twice → identical digests.
    let replay_app = &apps[0];
    let replay = |seed: u64| {
        let mut ccfg = CampaignConfig::default();
        ccfg.max_schedules = REPLAY_RUNS;
        ccfg.base_seed = seed;
        ccfg.jobs = 1;
        ccfg.summary_cap = 0;
        ccfg.report_cap = 0;
        Campaign::new(ccfg).run(suite_workload(replay_app))
    };
    let (ra, rb) = (replay(7), replay(7));
    let replay_identical = ra.distinct_digest == rb.distinct_digest;
    assert!(
        replay_identical,
        "replay diverged: {:016x} vs {:016x}",
        ra.distinct_digest, rb.distinct_digest
    );
    println!(
        "\nreplay: 2x {} runs on {} -> digest {:016x} both times: identical",
        REPLAY_RUNS, replay_app.id, ra.distinct_digest
    );

    // Memory bound: retention is capped and the dedup set is the fixed-size
    // bloom filter, so peak RSS stays flat as runs grow.
    let peak_rss = peak_rss_bytes();
    if let Some(rss) = peak_rss {
        println!(
            "memory: filter {} KiB, caps summary=0 report=0, peak RSS {} MiB",
            ra.filter_bytes / 1024,
            rss / (1024 * 1024)
        );
    }

    // Legacy per-strategy table (fixed-run Explorer per test), kept for
    // continuity with earlier result files.
    let strategies = [
        StrategyKind::RandomWalk,
        StrategyKind::Pct { depth: 3 },
        StrategyKind::RoundRobin { quantum: 4 },
    ];
    let lt = TablePrinter::new(&[10, 10, 8, 10, 12, 14]);
    println!("\nPer-strategy Explorer ({LEGACY_RUNS_PER_TEST} runs per test, fibers)\n");
    println!(
        "{}",
        lt.row(cells![
            "app", "strategy", "runs", "distinct", "wall(ms)", "runs/sec"
        ])
    );
    println!("{}", lt.rule());
    let mut strategy_rows: Vec<Json> = Vec::new();
    for app in &apps {
        for strategy in strategies {
            let start = Instant::now();
            let mut runs = 0u64;
            let mut distinct = 0u64;
            for (i, test) in app.tests.iter().enumerate() {
                let mut ecfg = ExploreConfig::default();
                ecfg.runs = LEGACY_RUNS_PER_TEST;
                ecfg.base_seed = (i as u64) << 32;
                ecfg.strategy = strategy;
                let result = Explorer::new(ecfg).run(test.body());
                runs += result.runs;
                distinct += result.distinct.len() as u64;
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            println!(
                "{}",
                lt.row(cells![
                    app.id,
                    strategy.name(),
                    runs,
                    distinct,
                    format!("{:.1}", secs * 1e3),
                    format!("{:.0}", runs as f64 / secs)
                ])
            );
            strategy_rows.push(Json::Obj(vec![
                ("app".to_string(), Json::from(app.id)),
                ("strategy".to_string(), Json::from(strategy.name())),
                ("runs".to_string(), Json::from(runs)),
                ("distinct".to_string(), Json::from(distinct)),
                ("runs_per_sec".to_string(), Json::Num(runs as f64 / secs)),
            ]));
        }
    }
    println!("{}", lt.rule());
    let wall_ns = wall_start.elapsed().as_nanos() as u64;

    let mut doc = vec![
        ("benchmark".to_string(), Json::from("explore")),
        ("jobs".to_string(), Json::from(1u64)),
        ("campaign_runs".to_string(), Json::from(CAMPAIGN_RUNS)),
        ("baseline_runs".to_string(), Json::from(BASELINE_RUNS)),
        ("wall_ns".to_string(), Json::from(wall_ns)),
        (
            "headline_sched_per_sec".to_string(),
            Json::Num(headline_sched_per_sec),
        ),
        (
            "min_speedup_vs_prechange".to_string(),
            Json::Num(min_speedup),
        ),
        ("apps".to_string(), Json::Arr(app_rows)),
        ("replay_identical".to_string(), Json::Bool(replay_identical)),
        (
            "replay_digest".to_string(),
            Json::from(format!("{:016x}", ra.distinct_digest)),
        ),
        (
            "memory".to_string(),
            Json::Obj(vec![
                (
                    "filter_bytes".to_string(),
                    Json::from(ra.filter_bytes as u64),
                ),
                ("summary_cap".to_string(), Json::from(0u64)),
                ("report_cap".to_string(), Json::from(0u64)),
                (
                    "peak_rss_bytes".to_string(),
                    peak_rss.map(Json::from).unwrap_or(Json::Null),
                ),
            ]),
        ),
        ("per_strategy".to_string(), Json::Arr(strategy_rows)),
        ("telemetry".to_string(), sherlock_obs::snapshot().to_json()),
    ];
    doc.retain(|(_, v)| !matches!(v, Json::Null));

    let path = sherlock_bench::results_path("BENCH_explore.json");
    std::fs::write(&path, Json::Obj(doc).render_pretty()).expect("write BENCH_explore.json");
    println!(
        "\ntotal {:.1} ms wall, min speedup vs pre-change explorer: {min_speedup:.1}x",
        wall_ns as f64 / 1e6
    );
    println!("wrote {}", path.display());
}
