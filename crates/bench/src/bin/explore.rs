//! Schedule-exploration throughput benchmark: fans two representative apps
//! across seeds under each scheduling strategy, measuring runs/sec and
//! distinct-schedules/sec per strategy. Writes `results/BENCH_explore.json`
//! and prints a summary table.

use std::time::Instant;

use sherlock_apps::all_apps;
use sherlock_bench::{cells, TablePrinter};
use sherlock_obs::json::Json;
use sherlock_sim::{ExploreConfig, Explorer, StrategyKind};

const RUNS_PER_TEST: u64 = 24;
const APPS: [&str; 2] = ["App-1", "App-7"];

fn main() {
    sherlock_sim::install_sim_panic_hook();
    sherlock_obs::init_from_env();

    let strategies = [
        StrategyKind::RandomWalk,
        StrategyKind::Pct { depth: 3 },
        StrategyKind::RoundRobin { quantum: 4 },
    ];

    let t = TablePrinter::new(&[10, 10, 8, 10, 12, 14]);
    println!("Exploration benchmark ({RUNS_PER_TEST} runs per test)\n");
    println!(
        "{}",
        t.row(cells![
            "app", "strategy", "runs", "distinct", "wall(ms)", "runs/sec"
        ])
    );
    println!("{}", t.rule());

    let wall_start = Instant::now();
    let mut rows_json: Vec<Json> = Vec::new();
    for app in all_apps().into_iter().filter(|a| APPS.contains(&a.id)) {
        for strategy in strategies {
            let start = Instant::now();
            let mut runs = 0u64;
            let mut distinct = 0u64;
            for (i, test) in app.tests.iter().enumerate() {
                let mut ecfg = ExploreConfig::default();
                ecfg.runs = RUNS_PER_TEST;
                ecfg.base_seed = (i as u64) << 32;
                ecfg.strategy = strategy;
                let result = Explorer::new(ecfg).run(test.body());
                runs += result.runs();
                distinct += result.distinct.len() as u64;
            }
            let wall_ns = start.elapsed().as_nanos() as u64;
            let secs = (wall_ns as f64 / 1e9).max(1e-9);
            println!(
                "{}",
                t.row(cells![
                    app.id,
                    strategy.name(),
                    runs,
                    distinct,
                    format!("{:.1}", wall_ns as f64 / 1e6),
                    format!("{:.0}", runs as f64 / secs)
                ])
            );
            rows_json.push(Json::Obj(vec![
                ("app".to_string(), Json::from(app.id)),
                ("strategy".to_string(), Json::from(strategy.name())),
                ("runs".to_string(), Json::from(runs)),
                ("distinct".to_string(), Json::from(distinct)),
                ("wall_ns".to_string(), Json::from(wall_ns)),
                ("runs_per_sec".to_string(), Json::Num(runs as f64 / secs)),
                (
                    "distinct_per_sec".to_string(),
                    Json::Num(distinct as f64 / secs),
                ),
            ]));
        }
    }
    let wall_ns = wall_start.elapsed().as_nanos() as u64;

    let doc = Json::Obj(vec![
        ("benchmark".to_string(), Json::from("explore")),
        ("runs_per_test".to_string(), Json::from(RUNS_PER_TEST)),
        ("wall_ns".to_string(), Json::from(wall_ns)),
        ("rows".to_string(), Json::Arr(rows_json)),
        ("telemetry".to_string(), sherlock_obs::snapshot().to_json()),
    ]);
    let path = sherlock_bench::results_path("BENCH_explore.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_explore.json");
    println!("{}", t.rule());
    println!("\ntotal {:.1} ms wall", wall_ns as f64 / 1e6);
    println!("wrote {}", path.display());
}
