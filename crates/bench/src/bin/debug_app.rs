//! Diagnostic: dump inference details for one app (not a paper table).

use sherlock_apps::{all_apps, app_by_id};
use sherlock_bench::{run_inference, score};
use sherlock_core::SherLockConfig;

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let id = std::env::args().nth(1).unwrap_or_else(|| "App-2".into());
    let apps = if id == "all" {
        all_apps()
    } else {
        vec![app_by_id(&id).expect("unknown app")]
    };
    for app in apps {
        let cfg = SherLockConfig::default();
        let sl = run_inference(&app, &cfg, 3);
        let report = sl.report();
        let s = score(&app, report);
        println!(
            "== {} windows={} vars={} racy={} obj={:.2} stats={:?}",
            app.id,
            report.num_windows,
            report.num_variables,
            report.racy_pairs,
            report.objective,
            sl.stats().last().unwrap()
        );
        for o in &s.ops {
            println!("  [{:?}] {:?} {}", o.verdict, o.role, o.op.resolve());
        }
        println!("  -- fractional probabilities (0.05..0.9):");
        for ((op, role), pr) in &report.probabilities {
            if *pr > 0.05 && *pr < 0.9 {
                println!("     {pr:.2} {role:?} {}", op.resolve());
            }
        }
        println!("  -- uncovered groups:");
        for g in &app.truth.sync_groups {
            if !report.inferred.iter().any(|i| g.matches(i.op, i.role)) {
                let best = g
                    .ops
                    .iter()
                    .map(|&op| report.probability(op, g.role))
                    .fold(0.0f64, f64::max);
                println!("     {:?} {} (best p={best:.2})", g.role, g.description);
            }
        }
    }
}
