//! Regenerates paper Table 6: sensitivity of the trade-off knob λ.

use sherlock_apps::all_apps;
use sherlock_bench::{run_inference, score, unique_correct, unique_ops};
use sherlock_core::SherLockConfig;

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let lambdas = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 5.0, 10.0, 50.0, 100.0];
    println!("Table 6: Sensitivity of lambda (unique sums across 8 apps, 3 rounds)");
    print!("{:<10}", "lambda");
    for l in lambdas {
        print!("{l:>7}");
    }
    println!();
    let mut corrects = Vec::new();
    let mut totals = Vec::new();
    for l in lambdas {
        let mut cfg = SherLockConfig::default();
        cfg.lambda = l;
        let mut scores = Vec::new();
        for app in all_apps() {
            let sl = run_inference(&app, &cfg, 3);
            scores.push(score(&app, sl.report()));
        }
        corrects.push(unique_correct(&scores).len());
        totals.push(unique_ops(&scores).len());
    }
    print!("{:<10}", "#correct");
    for c in &corrects {
        print!("{c:>7}");
    }
    println!();
    print!("{:<10}", "#total");
    for t in &totals {
        print!("{t:>7}");
    }
    println!();
    println!(
        "\n(paper: #correct 118,122,115,111,111,110,76,67,29,19 — inference\n shrinks as lambda grows; the default 0.2 sits at the sweet spot)"
    );
}
