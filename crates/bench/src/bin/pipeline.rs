//! End-to-end pipeline benchmark: full 3-round inference over every app,
//! reported from the observability layer's own phase spans and counters
//! (no ad-hoc timers). Writes `results/BENCH_pipeline.json` plus a
//! collapsed-stack profile `results/pipeline.folded`, and prints a
//! summary table.

use std::time::Instant;

use sherlock_apps::all_apps;
use sherlock_bench::{cells, run_inference, TablePrinter};
use sherlock_core::SherLockConfig;
use sherlock_obs::json::Json;

const ROUNDS: usize = 3;

fn main() {
    sherlock_sim::install_sim_panic_hook();
    sherlock_obs::init_from_env();

    // `--gate-lp-ms <ceiling>`: exit nonzero if the run's total `lp.simplex`
    // span time exceeds the ceiling — CI's cheap guard against solver
    // performance regressions.
    let gate_lp_ms: Option<f64> = {
        let mut args = std::env::args().skip(1);
        let mut v = None;
        while let Some(a) = args.next() {
            if a == "--gate-lp-ms" {
                let raw = args.next().unwrap_or_else(|| {
                    eprintln!("--gate-lp-ms needs a millisecond ceiling");
                    std::process::exit(2);
                });
                v = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--gate-lp-ms: not a number: {raw}");
                    std::process::exit(2);
                }));
            }
        }
        v
    };

    let cfg = SherLockConfig::default();
    let t = TablePrinter::new(&[10, 12, 12, 12, 12, 12]);
    println!("Pipeline benchmark ({ROUNDS} rounds per app)\n");
    println!(
        "{}",
        t.row(cells![
            "app",
            "wall(ms)",
            "observe(ms)",
            "windows(ms)",
            "solve(ms)",
            "perturb(ms)"
        ])
    );
    println!("{}", t.rule());

    let session_base = sherlock_obs::snapshot();
    let wall_start = Instant::now();
    let mut apps_json: Vec<Json> = Vec::new();
    for app in all_apps() {
        let app_base = sherlock_obs::snapshot();
        let app_start = Instant::now();
        let sl = run_inference(&app, &cfg, ROUNDS);
        let app_wall = app_start.elapsed().as_nanos() as u64;
        let delta = sherlock_obs::snapshot().delta(&app_base);

        let ms = |name: &str| {
            delta
                .spans
                .get(name)
                .map_or(0.0, |s| s.total_ns as f64 / 1e6)
        };
        println!(
            "{}",
            t.row(cells![
                app.id,
                format!("{:.1}", app_wall as f64 / 1e6),
                format!("{:.1}", ms("phase.observe")),
                format!("{:.1}", ms("phase.windows")),
                format!("{:.1}", ms("phase.solve")),
                format!("{:.1}", ms("phase.perturb")),
            ])
        );
        apps_json.push(Json::Obj(vec![
            ("id".to_string(), Json::from(app.id)),
            ("wall_ns".to_string(), Json::from(app_wall)),
            ("windows".to_string(), Json::from(sl.report().num_windows)),
            (
                "variables".to_string(),
                Json::from(sl.report().num_variables),
            ),
            ("telemetry".to_string(), delta.to_json()),
        ]));
    }
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let total = sherlock_obs::snapshot().delta(&session_base);

    let doc = Json::Obj(vec![
        ("benchmark".to_string(), Json::from("pipeline")),
        ("rounds".to_string(), Json::from(ROUNDS)),
        ("wall_ns".to_string(), Json::from(wall_ns)),
        ("telemetry".to_string(), total.to_json()),
        ("apps".to_string(), Json::Arr(apps_json)),
    ]);
    let path = sherlock_bench::results_path("BENCH_pipeline.json");
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_pipeline.json");

    // Collapsed-stack export of the whole run, ready for a flamegraph tool
    // (speedscope, inferno-flamegraph).
    let folded_path = sherlock_bench::results_path("pipeline.folded");
    std::fs::write(&folded_path, total.render_folded()).expect("write pipeline.folded");

    let count = |name: &str| total.counters.get(name).copied().unwrap_or(0);
    println!("{}", t.rule());
    println!(
        "\ntotal {:.1} ms wall; {} windows extracted, {} simplex pivots across {} solves, \
         {} delays injected",
        wall_ns as f64 / 1e6,
        count("windows.extracted"),
        count("simplex.pivots"),
        count("simplex.solves"),
        count("perturber.delays_injected"),
    );
    println!("wrote {}", path.display());
    println!("wrote {} (collapsed stacks)", folded_path.display());

    if let Some(ceiling) = gate_lp_ms {
        let lp_ms = total
            .spans
            .get("lp.simplex")
            .map_or(0.0, |s| s.total_ns as f64 / 1e6);
        if lp_ms > ceiling {
            eprintln!(
                "lp-bench gate FAILED: lp.simplex spent {lp_ms:.1} ms, \
                 ceiling is {ceiling} ms"
            );
            std::process::exit(1);
        }
        println!("lp-bench gate ok: lp.simplex {lp_ms:.1} ms <= {ceiling} ms");
    }
}
