//! Regenerates paper Tables 8–9: the inferred synchronizations per
//! application, in the artifact's "Releasing sites / Acquire sites" format,
//! with ground-truth annotations.

use sherlock_apps::{all_apps, Verdict};
use sherlock_bench::{run_inference, score};
use sherlock_core::{Role, SherLockConfig};

fn main() {
    sherlock_sim::install_sim_panic_hook();
    let cfg = SherLockConfig::default();
    println!("Tables 8-9: Inferred synchronizations per application\n");
    for app in all_apps() {
        let sl = run_inference(&app, &cfg, 3);
        let s = score(&app, sl.report());
        println!("App: {} ({})", app.id, app.name);
        for (role, title) in [(Role::Release, "Release"), (Role::Acquire, "Acquire")] {
            println!("  {title}:");
            for op in s.ops.iter().filter(|o| o.role == role) {
                let desc = app
                    .truth
                    .sync_groups
                    .iter()
                    .find(|g| g.matches(op.op, op.role))
                    .map(|g| g.description.clone())
                    .unwrap_or_else(|| match op.verdict {
                        Verdict::DataRacy => "(participates in a true data race)".into(),
                        Verdict::InstrError => "(instrumentation error)".into(),
                        _ => "(not a synchronization)".into(),
                    });
                println!("    {:60} {desc}", op.op.resolve().to_string());
            }
        }
        println!();
    }
}
