//! Evaluation harness for SherLock-rs: runs inference over the benchmark
//! suite, scores it against ground truth, and formats the paper's tables.
//!
//! Each table/figure of the paper's evaluation section has a regenerating
//! binary in `src/bin/` built on this library:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — application inventory |
//! | `table2` | Table 2 — inferred results after 3 rounds |
//! | `table3` | Table 3 — Manual_dr vs SherLock_dr race detection |
//! | `table4` | Table 4 — false-positive/negative breakdown |
//! | `table5` | Table 5 — hypothesis ablations |
//! | `table6` | Table 6 — λ sensitivity |
//! | `table7` | Table 7 — `Near` sensitivity |
//! | `table8_9` | Tables 8–9 — inferred synchronization listings |
//! | `fig4` | Figure 4 — rounds × Perturber/feedback settings |
//! | `tsvd_enhance` | §5.6 — TSVD happens-before enhancement |
//! | `overhead` | §5.6 — instrumentation/solving overhead |

use std::collections::BTreeSet;

use sherlock_apps::{App, Verdict};
use sherlock_core::{InferenceReport, Role, SherLock, SherLockConfig};
use sherlock_racer::{first_race, SyncSpec};
use sherlock_sim::SimConfig;
use sherlock_trace::OpId;

/// Runs a full SherLock session (default 3 rounds) over one app's tests.
///
/// # Panics
///
/// Panics if the LP solver fails (cannot happen with this encoding short of
/// an iteration-limit blowup).
pub fn run_inference(app: &App, cfg: &SherLockConfig, rounds: usize) -> SherLock {
    let mut sl = SherLock::new(cfg.clone());
    sl.run_rounds(&app.tests, rounds).expect("solver failed");
    sl
}

/// One inferred operation with its ground-truth verdict.
#[derive(Clone, Debug)]
pub struct ScoredOp {
    /// The operation.
    pub op: OpId,
    /// Its inferred role.
    pub role: Role,
    /// Ground-truth verdict.
    pub verdict: Verdict,
}

/// Table 2 row: counts per verdict class.
#[derive(Clone, Debug, Default)]
pub struct Score {
    /// Every inferred op with its verdict.
    pub ops: Vec<ScoredOp>,
    /// Distinct ground-truth synchronizations covered (recall numerator).
    pub groups_covered: usize,
    /// Total ground-truth synchronizations.
    pub groups_total: usize,
}

impl Score {
    /// Count of ops with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.ops.iter().filter(|o| o.verdict == v).count()
    }

    /// Total inferred operations.
    pub fn total(&self) -> usize {
        self.ops.len()
    }

    /// Inferred operations that are correct.
    pub fn correct(&self) -> usize {
        self.count(Verdict::TrueSync)
    }
}

/// Scores a report against one app's ground truth.
pub fn score(app: &App, report: &InferenceReport) -> Score {
    let ops = report
        .inferred
        .iter()
        .map(|i| ScoredOp {
            op: i.op,
            role: i.role,
            verdict: app.truth.classify(i.op, i.role),
        })
        .collect();
    Score {
        ops,
        groups_covered: app.truth.groups_covered(report),
        groups_total: app.truth.sync_groups.len(),
    }
}

/// Deduplicates inferred (op, role) pairs across apps (the paper's "unique
/// synchronizations across applications", Table 2 footnote).
pub fn unique_ops(scores: &[Score]) -> BTreeSet<(OpId, Role)> {
    scores
        .iter()
        .flat_map(|s| s.ops.iter().map(|o| (o.op, o.role)))
        .collect()
}

/// Unique *correct* inferred pairs across apps.
pub fn unique_correct(scores: &[Score]) -> BTreeSet<(OpId, Role)> {
    scores
        .iter()
        .flat_map(|s| {
            s.ops
                .iter()
                .filter(|o| o.verdict == Verdict::TrueSync)
                .map(|o| (o.op, o.role))
        })
        .collect()
}

/// Table 3 row: first-report race counts under one sync spec.
#[derive(Clone, Copy, Debug, Default)]
pub struct RaceCounts {
    /// First reports matching a seeded race location.
    pub true_races: usize,
    /// First reports on non-racy locations.
    pub false_races: usize,
}

/// Runs every test of an app once and counts first-race reports under a
/// sync spec (the paper's §5.4 counting rule).
pub fn race_eval(app: &App, spec: &SyncSpec, base_seed: u64) -> RaceCounts {
    let mut counts = RaceCounts::default();
    for (i, test) in app.tests.iter().enumerate() {
        let run = test.run(SimConfig::with_seed(base_seed.wrapping_add(i as u64)));
        if let Some(race) = first_race(&run.trace, spec) {
            if app.truth.is_true_race(&race.location) {
                counts.true_races += 1;
            } else {
                counts.false_races += 1;
            }
        }
    }
    counts
}

/// First-race reports (not just counts), for the Table 4 breakdown.
pub fn race_reports(app: &App, spec: &SyncSpec, base_seed: u64) -> Vec<sherlock_racer::Race> {
    let mut out = Vec::new();
    for (i, test) in app.tests.iter().enumerate() {
        let run = test.run(SimConfig::with_seed(base_seed.wrapping_add(i as u64)));
        if let Some(race) = first_race(&run.trace, spec) {
            out.push(race);
        }
    }
    out
}

/// The canonical output path for a bench artifact: `results/<name>`,
/// creating `results/` relative to the working directory if needed. Every
/// bench binary that writes a file writes there — nothing lands at the
/// repo root.
///
/// # Panics
///
/// Panics when `results/` cannot be created (bench bins have no error
/// channel beyond their exit status).
pub fn results_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    dir.join(name)
}

/// Fixed-width table printer.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer with the given column widths.
    pub fn new(widths: &[usize]) -> Self {
        TablePrinter {
            widths: widths.to_vec(),
        }
    }

    /// Renders one row.
    pub fn row(&self, cells: &[String]) -> String {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("  {cell:>w$}"));
            }
        }
        out
    }

    /// Renders a separator line.
    pub fn rule(&self) -> String {
        "-".repeat(self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1))
    }
}

/// Convenience: string cells from displayables.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => { &[$(format!("{}", $x)),*] };
}
