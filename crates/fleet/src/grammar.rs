//! The idiom grammar: which synchronization patterns a generated app may
//! compose, and how an app's shape (instance count, worker counts,
//! iteration counts) is drawn from a seed.

use std::fmt;

/// One synchronization idiom class the generator knows how to plant.
///
/// Every class mirrors either a pattern from the paper's benchmark suite
/// (Tables 8–9) or one of the new classes named in ROADMAP item 5:
/// phaser/barrier phase ordering and implicit-monitor signalling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Idiom {
    /// `Monitor.Enter`/`Exit` guarding shared counters (mutual exclusion).
    MonitorLock,
    /// A volatile ready-flag spin loop publishing a payload (Fig. 3.A).
    FlagSpin,
    /// `Thread.Start`/`Join` with input/output handoff through fields.
    ForkJoin,
    /// `ConcurrentDictionary.GetOrAdd` with a once-only factory delegate.
    GetOrAdd,
    /// A static-constructor lazy initializer raced by several readers.
    LazyInit,
    /// `Task.ContinueWith` staging data through a two-stage pipeline.
    Continuation,
    /// Split `Phaser.Arrive` / `Phaser.AwaitAdvance` ping-pong phases.
    PhaserPingPong,
    /// Implicit-signal monitor handoff (Ferles et al.): `EnterWhen`/`Exit`.
    ImplicitHandoff,
    /// `CountdownEvent.Signal`/`Wait` fan-in of per-worker parts.
    CountdownFanIn,
    /// A deliberately unsynchronized access pair (seeded true race).
    SeededRace,
}

impl Idiom {
    /// Every idiom class, in a stable order.
    pub const ALL: [Idiom; 10] = [
        Idiom::MonitorLock,
        Idiom::FlagSpin,
        Idiom::ForkJoin,
        Idiom::GetOrAdd,
        Idiom::LazyInit,
        Idiom::Continuation,
        Idiom::PhaserPingPong,
        Idiom::ImplicitHandoff,
        Idiom::CountdownFanIn,
        Idiom::SeededRace,
    ];

    /// Stable kebab-case name (used in reports, JSON, and app sources).
    pub fn name(self) -> &'static str {
        match self {
            Idiom::MonitorLock => "monitor-lock",
            Idiom::FlagSpin => "flag-spin",
            Idiom::ForkJoin => "fork-join",
            Idiom::GetOrAdd => "get-or-add",
            Idiom::LazyInit => "lazy-init",
            Idiom::Continuation => "continuation",
            Idiom::PhaserPingPong => "phaser-ping-pong",
            Idiom::ImplicitHandoff => "implicit-handoff",
            Idiom::CountdownFanIn => "countdown-fan-in",
            Idiom::SeededRace => "seeded-race",
        }
    }
}

impl fmt::Display for Idiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shape parameters for drawing an app from the grammar.
#[derive(Clone, Debug)]
pub struct GrammarConfig {
    /// Minimum idiom instances per app (inclusive).
    pub min_idioms: usize,
    /// Maximum idiom instances per app (inclusive).
    pub max_idioms: usize,
    /// Relative draw weight per idiom; zero-weight idioms never appear.
    pub weights: Vec<(Idiom, u32)>,
    /// Maximum worker threads per instance (inclusive; minimum is 2).
    pub max_workers: u32,
    /// Maximum loop iterations per instance (inclusive; minimum is 2).
    pub max_iters: u32,
}

impl Default for GrammarConfig {
    fn default() -> Self {
        GrammarConfig {
            min_idioms: 3,
            max_idioms: 6,
            // Synchronization idioms dominate; seeded races ride along at
            // half weight so most — not all — apps stay race-free.
            weights: Idiom::ALL
                .iter()
                .map(|&i| (i, if i == Idiom::SeededRace { 1 } else { 2 }))
                .collect(),
            max_workers: 3,
            max_iters: 3,
        }
    }
}

impl GrammarConfig {
    /// Total draw weight; panics if every weight is zero.
    pub(crate) fn total_weight(&self) -> u64 {
        let total = self.weights.iter().map(|&(_, w)| u64::from(w)).sum();
        assert!(total > 0, "grammar has no drawable idioms");
        total
    }
}
