//! `sherlock-fleet` — a seeded generator of synchronization-idiom
//! applications with machine-derived ground truth, and a precision/recall
//! scoring harness over the generated fleet.
//!
//! The paper validates SherLock against hand-audited sync inventories for
//! a handful of apps (Tables 8–9); hand audits don't scale to the hundreds
//! of scenarios a solver rewrite needs as a safety net. This crate flips
//! the direction: instead of auditing existing programs, it *constructs*
//! programs from a grammar of idioms ([`grammar::Idiom`]) — so the
//! generator knows exactly which operations it planted as synchronization
//! ([`sherlock_apps::SyncGroup`]s fall out of construction) and which
//! accesses race. [`score::score_fleet`] then runs the full
//! infer→perturb pipeline over each app and grades every inferred
//! operation Table-2 style.
//!
//! Everything is deterministic in `(GrammarConfig, seed)`: plans are drawn
//! from a SplitMix64 stream, builders consume no randomness of their own,
//! and test bodies rebuild all simulator state per run.

pub mod gen;
pub mod grammar;
pub mod score;

pub use gen::{generate, generate_fleet, materialize, plan, AppPlan, GeneratedApp, IdiomInstance};
pub use grammar::{GrammarConfig, Idiom};
pub use score::{
    evaluate, score_app, score_fleet, AppScore, FleetScore, IdiomScore, VerdictCounts,
};
